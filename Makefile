# Convenience targets; every recipe works from a clean checkout with only
# the in-tree sources (PYTHONPATH=src, no install step needed).
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-all coverage bench bench-collect bench-export smoke \
	loadtest-smoke perf-smoke fuzz-smoke update-smoke obs-smoke \
	chaos-smoke lint

test:            ## fast unit suite (tier-1)
	$(PYTHON) -m pytest -x -q

lint:            ## static-analysis gate: AST invariant rules + ruff/mypy when present
	$(PYTHON) -m repro.analysis src
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
	    $(PYTHON) -m ruff check src tests benchmarks scripts; \
	elif command -v ruff >/dev/null 2>&1; then \
	    ruff check src tests benchmarks scripts; \
	else \
	    echo "ruff is not installed; skipping the style sweep"; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
	    $(PYTHON) -m mypy; \
	elif command -v mypy >/dev/null 2>&1; then \
	    mypy; \
	else \
	    echo "mypy is not installed; skipping the strict typing gate"; \
	fi

test-all:        ## tier-1 (incl. parity/property/golden) + benchmark suite
	$(PYTHON) -m pytest -x -q
	$(PYTHON) -m pytest benchmarks -q --benchmark-disable

coverage:        ## coverage run with a floor on repro.storage/index/corpus
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
	    $(PYTHON) -m pytest -q --cov=repro.storage --cov=repro.index \
	        --cov=repro.corpus \
	        --cov-report=term-missing --cov-fail-under=85; \
	else \
	    echo "pytest-cov is not installed; skipping the coverage run"; \
	fi

bench:           ## full benchmark suite (slow, opt-in)
	$(PYTHON) -m pytest benchmarks -q

bench-collect:   ## benchmark suite collection check only
	$(PYTHON) -m pytest benchmarks --collect-only -q

smoke:           ## tier-1 + collection guard + one tiny end-to-end bench query
	bash scripts/smoke.sh

loadtest-smoke:  ## tiny serving-layer run guarding repro.service end to end
	$(PYTHON) -m repro.cli loadtest --backend memory --workers 2 \
	    --requests 50 --concurrency 4 --output BENCH_service.json

bench-export:    ## BENCH_core.json: per-algorithm/backend/representation timings
	$(PYTHON) -m repro.cli bench-export --backend memory --backend sqlite \
	    --repetitions 3 --output BENCH_core.json

perf-smoke:      ## one tiny packed-vs-object query with the parity guard (CI)
	$(PYTHON) -m repro.cli bench-export --limit 1 --repetitions 1 \
	    --output /tmp/bench_core_smoke.json

fuzz-smoke:      ## seeded differential corpus fuzz: fast tier-1 + deep sweep
	$(PYTHON) -m pytest tests/test_corpus_fuzz.py \
	    benchmarks/test_corpus_fuzz.py -q

update-smoke:    ## segmented lifecycle through the CLI: ingest/update/delete/compact
	bash scripts/update_smoke.sh

obs-smoke:       ## observability end to end: traced query, serve, metrics scrape
	bash scripts/obs_smoke.sh

chaos-smoke:     ## fault-injected serving: retrying clients, journaled mutations, verify
	bash scripts/chaos_smoke.sh
