# Convenience targets; every recipe works from a clean checkout with only
# the in-tree sources (PYTHONPATH=src, no install step needed).
PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-collect smoke

test:            ## fast unit suite (tier-1)
	$(PYTHON) -m pytest -x -q

bench:           ## full benchmark suite (slow, opt-in)
	$(PYTHON) -m pytest benchmarks -q

bench-collect:   ## benchmark suite collection check only
	$(PYTHON) -m pytest benchmarks --collect-only -q

smoke:           ## tier-1 + collection guard + one tiny end-to-end bench query
	bash scripts/smoke.sh
