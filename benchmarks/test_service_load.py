"""Service load benchmark: the latency-percentile harness end to end.

Self-hosts the serving stack (engine pool + batcher + admission + TCP
front end) over the scaled-down DBLP corpus, drives it with the closed- and
open-loop generators, sanity-checks the measurements and emits the
``BENCH_service.json`` artefact at the repository root — the serving-layer
counterpart of the Figure 5/6 CSV/JSON exports.

Run with ``pytest benchmarks -k service`` or via ``make loadtest-smoke``
(which exercises the same path through the CLI).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.service import ServiceConfig, loadtest, write_service_bench

#: The artefact lands next to the Figure exports, at the repository root.
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

REQUESTS = 120
WORKERS = 2
CONCURRENCY = 4


def test_service_loadtest_emits_bench(dataset_specs):
    spec = dataset_specs["dblp"]
    tree = spec.tree_factory()
    queries = [query.text for query in spec.workload]
    reports = []

    # Closed loop across the pooled backends.
    for backend in ("memory", "sqlite", "sharded"):
        config = ServiceConfig(backend=backend, workers=WORKERS,
                               document=spec.name)
        report = loadtest(config, queries, tree=tree, mode="closed",
                          requests=REQUESTS, concurrency=CONCURRENCY)
        assert report.completed == REQUESTS, report.errors
        assert report.error_count == 0, report.errors
        assert report.throughput_rps > 0
        latency = report.latency_summary_ms()
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"] \
            <= latency["max"]
        # The batcher must have seen every request the generator sent.
        assert report.server_stats["batcher"]["requests"] == REQUESTS
        reports.append(report)

    # Open loop (offered-load discipline) on the memory backend.
    config = ServiceConfig(backend="memory", workers=WORKERS,
                           document=spec.name)
    open_report = loadtest(config, queries, tree=tree, mode="open",
                           rate=100.0, duration=1.0,
                           concurrency=CONCURRENCY)
    assert open_report.completed > 0
    assert open_report.target_rate == 100.0
    reports.append(open_report)

    path = write_service_bench(reports, BENCH_PATH)
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    assert len(payload["service_bench"]) == len(reports)
    for entry in payload["service_bench"]:
        assert {"mode", "throughput_rps", "latency_ms",
                "errors"} <= set(entry)
        assert {"p50", "p95", "p99", "mean", "max"} <= set(entry["latency_ms"])
