"""Axiomatic-property harness (Section 4.3-(2)).

Runs the four axiomatic checks for ValidRTF on the benchmark datasets (data
and query mutations drawn from the workloads) and times one full check cycle.
"""

from __future__ import annotations

import pytest

from repro.core import ValidRTF, check_all_axioms
from repro.xmltree import SubtreeSpec

INSERTIONS = {
    "dblp": SubtreeSpec("article", None, children=[
        SubtreeSpec("title", "xml keyword retrieval with ranked data"),
        SubtreeSpec("abstract", "efficient keyword retrieval over xml data"),
    ]),
    "xmark-standard": SubtreeSpec("item", None, children=[
        SubtreeSpec("name", "engraved chronicle"),
        SubtreeSpec("description", None, children=[
            SubtreeSpec("text", "chronicle method strings order"),
        ]),
    ]),
}

SCENARIOS = {
    "dblp": {"query": "xml keyword", "parent": "0", "extra": "retrieval"},
    "xmark-standard": {"query": "chronicle method", "parent": "0.0.0",
                       "extra": "strings"},
}


def validrtf_factory(tree):
    return ValidRTF(tree).search


@pytest.mark.parametrize("dataset", sorted(SCENARIOS))
def test_validrtf_satisfies_axioms_on_benchmark_data(engines, dataset):
    scenario = SCENARIOS[dataset]
    tree = engines[dataset].tree
    report = check_all_axioms(
        validrtf_factory, tree, scenario["query"], tree.node(scenario["parent"]).dewey,
        INSERTIONS[dataset], scenario["extra"],
    )
    assert report.all_satisfied, [check.detail for check in report.failed()]
    print()
    for check in report.checks:
        print(f"  [{dataset}] {check.property_name}: "
              f"{check.before_count} -> {check.after_count} results")


def test_benchmark_axiom_cycle(benchmark, engines):
    """Time one complete four-property check on the DBLP dataset."""
    scenario = SCENARIOS["dblp"]
    tree = engines["dblp"].tree
    benchmark.group = "axioms"
    benchmark.name = "four-checks-dblp"
    benchmark(lambda: check_all_axioms(
        validrtf_factory, tree, scenario["query"],
        tree.node(scenario["parent"]).dewey, INSERTIONS["dblp"],
        scenario["extra"]))
