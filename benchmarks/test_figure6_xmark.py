"""Figure 6(b)–(d) — CFR / APR' / Max APR on the XMark scales.

The paper's qualitative shape on synthetic data: APR' > 0 on (most) queries —
even regular fragments contain uninteresting nodes that only ValidRTF prunes —
and Max APR values far larger than on the bibliographic data, because the
keyword distribution is "less meaningful".  The effect strengthens with the
document size.
"""

from __future__ import annotations

import pytest

from repro.bench import figure6_summary, render_figure6

from .conftest import representative_queries

SCALES = ("xmark-standard", "xmark-data1", "xmark-data2")


@pytest.mark.parametrize("dataset", SCALES)
def test_benchmark_compare_on_scale(benchmark, engines, dataset_specs, dataset):
    """Time a full ValidRTF-vs-MaxMatch comparison per scale (one Figure 6
    data point), showing how the cost grows with the document size."""
    query = representative_queries(dataset_specs[dataset], count=2)[1]
    engine = engines[dataset]
    benchmark.group = "figure6-xmark-compare"
    benchmark.name = dataset
    benchmark(lambda: engine.compare(query.text))


@pytest.mark.parametrize("dataset", SCALES)
def test_figure6_panel_shape(workload_runs, dataset):
    run = workload_runs[dataset]
    print()
    print(render_figure6(run))
    summary = figure6_summary(run)
    assert summary["queries"] == 18
    # ValidRTF prunes beyond MaxMatch on a substantial share of the queries.
    assert summary["queries_with_extra_pruning"] >= 6
    # Synthetic-data shape: unlike DBLP, a visible share of queries has
    # APR' > 0 (regular fragments also get extra pruning).
    assert summary["queries_with_positive_apr_prime"] >= 1


def test_extra_pruning_strengthens_with_scale(workload_runs):
    """Max APR / APR' grow (weakly) as the documents get larger."""
    means = {dataset: figure6_summary(workload_runs[dataset])["mean_max_apr"]
             for dataset in SCALES}
    assert means["xmark-data2"] >= means["xmark-standard"]
    apr_counts = {
        dataset: figure6_summary(workload_runs[dataset])[
            "queries_with_positive_apr_prime"]
        for dataset in SCALES
    }
    assert apr_counts["xmark-data2"] >= apr_counts["xmark-standard"]


def test_xmark_prunes_more_than_dblp(workload_runs):
    """Cross-dataset shape: synthetic data shows more APR' activity than the
    bibliographic data (Figure 6(b)-(d) vs Figure 6(a))."""
    dblp = figure6_summary(workload_runs["dblp"])
    data2 = figure6_summary(workload_runs["xmark-data2"])
    assert data2["queries_with_positive_apr_prime"] >= \
        dblp["queries_with_positive_apr_prime"]
