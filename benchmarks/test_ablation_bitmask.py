"""Ablation 3 (DESIGN.md) — key-number bitmask cover test vs set-based test.

Section 4.1 encodes a node's tree keyword set as an integer "key number" so
the rule-2(a) cover check becomes a couple of integer operations.  This
ablation times the bitmask check against an equivalent frozenset-based check
over the same label groups and verifies they always agree.
"""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.core import Query
from repro.core.valid_contributor import _is_covered

from .conftest import representative_queries


def _set_based_is_covered(keywords: frozenset,
                          sibling_keyword_sets: Sequence[frozenset]) -> bool:
    """Reference implementation of rule 2(a) using frozensets."""
    return any(keywords != other and keywords <= other
               for other in sibling_keyword_sets)


@pytest.fixture(scope="module")
def label_groups(engines, dataset_specs):
    """All multi-child label groups appearing in one workload's record trees."""
    engine = engines["xmark-data1"]
    pipeline = engine.algorithm("validrtf")
    groups = []
    for workload_query in representative_queries(dataset_specs["xmark-data1"], 4):
        query = Query.parse(workload_query.text)
        for fragment in pipeline.raw_fragments(query):
            records = pipeline.record_tree(query, fragment)
            for record in records.root.iter_records():
                for group in record.label_groups():
                    if group.counter > 1:
                        groups.append((query, group.children))
    assert groups, "expected at least one multi-child label group"
    return groups


def _bitmask_pass(groups) -> int:
    covered = 0
    for _query, children in groups:
        key_numbers = [child.key_number for child in children]
        for child in children:
            if _is_covered(child.key_number, key_numbers):
                covered += 1
    return covered


def _set_pass(groups) -> int:
    covered = 0
    for query, children in groups:
        keyword_sets = [frozenset(query.keywords_of(child.key_number))
                        for child in children]
        for child_set in keyword_sets:
            if _set_based_is_covered(child_set, keyword_sets):
                covered += 1
    return covered


def test_benchmark_bitmask_cover(benchmark, label_groups):
    benchmark.group = "ablation-bitmask"
    benchmark.name = "key-number-bitmask"
    benchmark(lambda: _bitmask_pass(label_groups))


def test_benchmark_set_cover(benchmark, label_groups):
    benchmark.group = "ablation-bitmask"
    benchmark.name = "frozenset"
    benchmark(lambda: _set_pass(label_groups))


def test_bitmask_and_set_checks_agree(label_groups):
    assert _bitmask_pass(label_groups) == _set_pass(label_groups)
    print(f"\nablation-bitmask: {len(label_groups)} label groups checked, "
          f"{_bitmask_pass(label_groups)} covered children found by both "
          f"implementations")
