"""Shared fixtures for the benchmark suite.

The benchmark datasets are scaled-down stand-ins for the paper's DBLP and
XMark documents (see DESIGN.md).  Engines and workload runs are built once per
session and shared between the Figure 5 and Figure 6 drivers so the whole
suite stays laptop-friendly.
"""

from __future__ import annotations

import pytest

from repro.bench import DatasetSpec, default_datasets, run_workload
from repro.core import SearchEngine

#: Sizes of the benchmark documents (publications / base items).
DBLP_PUBLICATIONS = 500
XMARK_BASE_ITEMS = 60

#: Timing repetitions per query (the first run is discarded, like the paper).
REPETITIONS = 2


def pytest_collection_modifyitems(items):
    """Mark every benchmark test ``bench`` so the suite is selectable
    (``pytest -m bench benchmarks``) and deselectable (``-m 'not bench'``)."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def _specs():
    return default_datasets(dblp_publications=DBLP_PUBLICATIONS,
                            xmark_base_items=XMARK_BASE_ITEMS)


@pytest.fixture(scope="session")
def dataset_specs():
    return _specs()


@pytest.fixture(scope="session")
def engines(dataset_specs):
    """One SearchEngine per benchmark dataset, built once."""
    return {name: SearchEngine(spec.tree_factory())
            for name, spec in dataset_specs.items()}


@pytest.fixture(scope="session")
def workload_runs(dataset_specs, engines):
    """The full Figure 5 + Figure 6 measurement campaign, computed once."""
    runs = {}
    for name, spec in dataset_specs.items():
        runs[name] = run_workload(spec, engine=engines[name],
                                  repetitions=REPETITIONS)
    return runs


def representative_queries(spec: DatasetSpec, count: int = 2):
    """A short, frequency-diverse sample of a workload for micro-benchmarks."""
    workload = list(spec.workload)
    if len(workload) <= count:
        return workload
    step = max(1, len(workload) // count)
    return workload[::step][:count]
