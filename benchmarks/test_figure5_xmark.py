"""Figure 5(b)–(d) — MaxMatch vs ValidRTF timing on the XMark scales.

Times the two algorithms on representative queries of each XMark scale and,
outside ``--benchmark-only`` runs, prints the three panels and checks the
scaling behaviour (RTF counts and elapsed times grow with the document size,
ValidRTF stays within a small factor of MaxMatch everywhere).
"""

from __future__ import annotations

import pytest

from repro.bench import figure5_summary, render_figure5

from .conftest import representative_queries

SCALES = ("xmark-standard", "xmark-data1", "xmark-data2")


@pytest.mark.parametrize("dataset", SCALES)
@pytest.mark.parametrize("algorithm", ["maxmatch", "validrtf"])
def test_benchmark_xmark_mixed_query(benchmark, engines, dataset_specs,
                                     dataset, algorithm):
    query = representative_queries(dataset_specs[dataset], count=2)[1]
    engine = engines[dataset]
    benchmark.group = f"figure5-{dataset}-{query.label}"
    benchmark.name = algorithm
    benchmark(lambda: engine.search(query.text, algorithm))


@pytest.mark.parametrize("dataset", SCALES)
def test_figure5_panel_shape(workload_runs, dataset):
    """Regenerate one XMark panel and check the qualitative claims."""
    run = workload_runs[dataset]
    print()
    print(render_figure5(run))
    summary = figure5_summary(run)
    assert summary["queries"] == 18
    assert summary["mean_time_ratio"] < 3.0
    assert all(measurement.rtf_count >= 1 for measurement in run.measurements)


def test_rtf_counts_grow_with_scale(workload_runs):
    """The same workload finds (weakly) more RTFs on larger documents."""
    totals = {
        dataset: sum(m.rtf_count for m in workload_runs[dataset].measurements)
        for dataset in SCALES
    }
    assert totals["xmark-standard"] <= totals["xmark-data1"] <= totals["xmark-data2"]


def test_elapsed_time_grows_with_scale(workload_runs):
    """Total per-workload time grows with the document size."""
    totals = {
        dataset: sum(m.validrtf_seconds for m in workload_runs[dataset].measurements)
        for dataset in SCALES
    }
    assert totals["xmark-standard"] < totals["xmark-data2"]
