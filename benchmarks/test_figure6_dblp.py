"""Figure 6(a) — CFR / APR' / Max APR of ValidRTF vs MaxMatch on DBLP.

The paper's qualitative shape on the real (bibliographic) dataset:

* APR' is zero on every query — regular publication-rooted fragments are
  "self-complete", so ValidRTF does not prune beyond MaxMatch there;
* Max APR is noticeably positive — the extreme fragment (rooted near the
  document root) still contains many uninteresting nodes that only ValidRTF
  removes;
* CFR < 1 on most queries.
"""

from __future__ import annotations

import pytest

from repro.bench import figure6_summary, render_figure6
from repro.core import effectiveness

from .conftest import representative_queries

DATASET = "dblp"


@pytest.mark.parametrize("stage", ["search-both", "effectiveness"])
def test_benchmark_effectiveness_pipeline(benchmark, engines, dataset_specs, stage):
    """Time the two halves of a Figure 6 data point: the searches themselves
    and the CFR/APR computation on their outputs."""
    query = representative_queries(dataset_specs[DATASET], count=3)[1]
    engine = engines[DATASET]
    benchmark.group = f"figure6-dblp-{query.label}"
    benchmark.name = stage
    if stage == "search-both":
        benchmark(lambda: (engine.search(query.text, "validrtf"),
                           engine.search(query.text, "maxmatch")))
    else:
        validrtf = engine.search(query.text, "validrtf")
        maxmatch = engine.search(query.text, "maxmatch")
        benchmark(lambda: effectiveness(maxmatch, validrtf))


def test_figure6a_table_and_shape(workload_runs):
    run = workload_runs[DATASET]
    print()
    print(render_figure6(run))
    summary = figure6_summary(run)
    assert summary["queries"] == 20
    # Real-data shape: APR' stays at (or very near) zero on regular fragments.
    assert summary["mean_apr_prime"] <= 0.05
    # ValidRTF prunes beyond MaxMatch on a clear majority of the queries.
    assert summary["queries_with_extra_pruning"] >= summary["queries"] * 0.5
    # The extreme fragments contain a visible share of additionally pruned
    # nodes (the paper reports Max APR above 20% on every query; at our scale
    # the mean stays clearly positive).
    assert summary["mean_max_apr"] > 0.05


def test_every_cfr_below_one_has_a_reason(workload_runs):
    """Whenever CFR < 1, the differing fragments either lost nodes (extra
    pruning) or gained nodes (false-positive fix) — never silently."""
    run = workload_runs[DATASET]
    for measurement in run.measurements:
        if measurement.report.cfr == 1.0:
            continue
        differing = [comparison for comparison in measurement.report.comparisons
                     if not comparison.identical]
        assert differing
        for comparison in differing:
            assert comparison.extra_pruned > 0 or \
                comparison.validrtf_size > comparison.maxmatch_size
