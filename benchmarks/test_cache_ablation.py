"""Ablation — the query-result cache and the ``search_many`` batch fast path.

Benchmark workloads repeat every query several times per repetition, which the
seed harness paid full pipeline cost for.  This ablation measures (a) a cold
``search`` loop, (b) the same loop on a cache-enabled engine, and (c) the
``search_many`` batch API, and checks the cache statistics counters account
for exactly the reuse observed.

Run with ``pytest benchmarks/test_cache_ablation.py --benchmark-only`` for the
timing panels, or without ``--benchmark-only`` for the semantics checks.
"""

from __future__ import annotations

import pytest

from repro.bench import time_algorithm, time_batch
from repro.core import SearchEngine

from .conftest import REPETITIONS, representative_queries


@pytest.fixture(scope="module")
def workload_texts(dataset_specs):
    return [query.text for query in dataset_specs["dblp"].workload]


@pytest.fixture(scope="module")
def cached_dblp_engine(dataset_specs):
    return SearchEngine(dataset_specs["dblp"].tree_factory(), cache_size=256)


def test_benchmark_search_uncached(benchmark, engines, dataset_specs):
    query = representative_queries(dataset_specs["dblp"], count=2)[1]
    engine = engines["dblp"]
    benchmark.group = "ablation-cache"
    benchmark.name = "search-uncached"
    benchmark(lambda: engine.search(query.text, "validrtf"))


def test_benchmark_search_cached(benchmark, cached_dblp_engine, dataset_specs):
    query = representative_queries(dataset_specs["dblp"], count=2)[1]
    benchmark.group = "ablation-cache"
    benchmark.name = "search-cached"
    benchmark(lambda: cached_dblp_engine.search(query.text, "validrtf"))


def test_benchmark_batch_uncached(benchmark, engines, workload_texts):
    engine = engines["dblp"]
    benchmark.group = "ablation-cache-workload"
    benchmark.name = "search_many-uncached"
    benchmark(lambda: engine.search_many(workload_texts, "validrtf"))


def test_benchmark_batch_cached(benchmark, cached_dblp_engine, workload_texts):
    benchmark.group = "ablation-cache-workload"
    benchmark.name = "search_many-cached"
    benchmark(lambda: cached_dblp_engine.search_many(workload_texts, "validrtf"))


def test_cache_speedup_and_accounting(dataset_specs, workload_texts):
    """The cached workload pass beats the cold loop, answers identically, and
    the hit/miss counters account for every query of every pass."""
    tree = dataset_specs["dblp"].tree_factory()
    uncached = SearchEngine(tree)
    cached = SearchEngine(tree, cache_size=256)

    cold = sum(time_algorithm(uncached, text, "validrtf", REPETITIONS)
               for text in workload_texts)
    hot = time_batch(cached, workload_texts, "validrtf", REPETITIONS)

    for text in workload_texts:
        assert cached.search(text).fragments == uncached.search(text).fragments

    stats = cached.cache_stats()
    assert stats.misses == len(workload_texts)   # first pass only
    assert stats.hits >= REPETITIONS * len(workload_texts)
    print(f"\nablation-cache: cold loop {cold * 1000:.1f} ms vs cached batch "
          f"{hot * 1000:.1f} ms per pass over {len(workload_texts)} queries "
          f"({stats})")
    assert hot < cold, (hot, cold)
