"""Benchmark suite package.

This ``__init__.py`` makes ``benchmarks/`` a proper package so the test
modules' ``from .conftest import ...`` relative imports resolve — without it,
``python -m pytest`` from the repo root failed at collection with
``ImportError: attempted relative import with no known parent package``.
Benchmarks are excluded from the default test run (``testpaths = tests`` in
``pyproject.toml``); run them explicitly with ``pytest benchmarks`` or
``pytest -m bench benchmarks``.
"""
