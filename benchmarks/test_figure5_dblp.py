"""Figure 5(a) — per-query elapsed time of MaxMatch vs ValidRTF on DBLP.

``pytest benchmarks/test_figure5_dblp.py --benchmark-only`` times the two
algorithms on representative workload queries; running the file without
``--benchmark-only`` additionally prints the full Figure 5(a) table and checks
the paper's qualitative claim that ValidRTF has "competent performance" (the
two algorithms stay within a small constant factor of each other).
"""

from __future__ import annotations

import pytest

from repro.bench import figure5_summary, render_figure5

from .conftest import representative_queries

DATASET = "dblp"


def _bench_cases(dataset_specs):
    return representative_queries(dataset_specs[DATASET], count=3)


@pytest.mark.parametrize("algorithm", ["maxmatch", "validrtf"])
def test_benchmark_dblp_query_low_frequency(benchmark, engines, dataset_specs,
                                            algorithm):
    query = _bench_cases(dataset_specs)[0]
    engine = engines[DATASET]
    benchmark.group = f"figure5-dblp-{query.label}"
    benchmark.name = algorithm
    benchmark(lambda: engine.search(query.text, algorithm))


@pytest.mark.parametrize("algorithm", ["maxmatch", "validrtf"])
def test_benchmark_dblp_query_mixed_frequency(benchmark, engines, dataset_specs,
                                              algorithm):
    query = _bench_cases(dataset_specs)[1]
    engine = engines[DATASET]
    benchmark.group = f"figure5-dblp-{query.label}"
    benchmark.name = algorithm
    benchmark(lambda: engine.search(query.text, algorithm))


@pytest.mark.parametrize("algorithm", ["maxmatch", "validrtf"])
def test_benchmark_dblp_query_high_frequency(benchmark, engines, dataset_specs,
                                             algorithm):
    query = _bench_cases(dataset_specs)[2]
    engine = engines[DATASET]
    benchmark.group = f"figure5-dblp-{query.label}"
    benchmark.name = algorithm
    benchmark(lambda: engine.search(query.text, algorithm))


def test_figure5a_table_and_shape(workload_runs):
    """Regenerate the Figure 5(a) panel and check its qualitative shape."""
    run = workload_runs[DATASET]
    print()
    print(render_figure5(run))
    summary = figure5_summary(run)
    assert summary["queries"] == 20
    # "Competent performance": ValidRTF stays within a small factor of the
    # revised MaxMatch on average (the paper shows near-identical bars).
    assert summary["mean_time_ratio"] < 3.0
    # Every query produced at least one RTF.
    assert all(measurement.rtf_count >= 1 for measurement in run.measurements)
