"""Ablation 2 (DESIGN.md) — the getLCA stage.

Compares the SLCA algorithms (Indexed Lookup Eager, Scan Eager, stack-based)
and the ELCA (Indexed Stack) computation on the benchmark posting lists, both
for speed and for result-set size (how many extra interesting roots the
all-LCA semantics adds over SLCA-only).
"""

from __future__ import annotations

import pytest

from repro.lca import (
    indexed_lookup_eager_slca,
    indexed_stack_elca,
    naive_slca,
    scan_eager_slca,
    stack_slca,
)

from .conftest import representative_queries

SLCA_ALGORITHMS = {
    "indexed-lookup-eager": indexed_lookup_eager_slca,
    "scan-eager": scan_eager_slca,
    "stack": stack_slca,
}


@pytest.fixture(scope="module")
def posting_lists(engines, dataset_specs):
    """Posting lists of a mixed-frequency query on the largest XMark scale."""
    query = representative_queries(dataset_specs["xmark-data2"], count=2)[1]
    engine = engines["xmark-data2"]
    return engine.keyword_nodes(query.text)


@pytest.mark.parametrize("name", sorted(SLCA_ALGORITHMS))
def test_benchmark_slca_algorithms(benchmark, posting_lists, name):
    benchmark.group = "ablation-lca-slca"
    benchmark.name = name
    benchmark(lambda: SLCA_ALGORITHMS[name](posting_lists))


def test_benchmark_elca_indexed_stack(benchmark, posting_lists):
    benchmark.group = "ablation-lca-elca"
    benchmark.name = "indexed-stack"
    benchmark(lambda: indexed_stack_elca(posting_lists))


def test_slca_algorithms_agree(posting_lists):
    reference = naive_slca(posting_lists)
    for name, algorithm in SLCA_ALGORITHMS.items():
        assert algorithm(posting_lists) == reference, name


def test_elca_extends_slca(engines, dataset_specs):
    """All-LCA roots are a superset of the SLCA roots on every workload query,
    and strictly larger on at least one (the paper's motivation for going
    beyond SLCA)."""
    engine = engines["dblp"]
    extra_roots = 0
    for query in dataset_specs["dblp"].workload:
        lists = engine.keyword_nodes(query.text)
        if any(not deweys for deweys in lists.values()):
            continue
        slcas = set(indexed_lookup_eager_slca(lists))
        elcas = set(indexed_stack_elca(lists))
        assert slcas <= elcas
        extra_roots += len(elcas - slcas)
    print(f"\nablation-lca: the all-LCA semantics adds {extra_roots} interesting "
          f"roots over SLCA-only across the DBLP workload")
    assert extra_roots > 0
