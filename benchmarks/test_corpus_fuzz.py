"""Deep differential corpus fuzz (opt-in, ``bench`` marker).

The unbounded sibling of ``tests/test_corpus_fuzz.py``: more seeds, larger
random documents, the per-document *sharded* backend and higher shard
counts.  Seeded and deterministic — a failure reproduces from its parametrized
seed.  Runs with the benchmark suite (``pytest benchmarks``) and with
``make fuzz-smoke``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from fuzz_util import (  # noqa: E402 - needs the tests dir on sys.path
    assert_corpus_equals_union,
    build_corpus_engine,
    random_corpus,
    random_queries,
    reference_engines,
)
from repro.core import ALGORITHM_NAMES  # noqa: E402

DEEP_SEEDS = tuple(range(10, 18))
BACKENDS = ("memory", "sqlite", "sharded")


@pytest.mark.parametrize("backend", BACKENDS)
def test_deep_corpus_union_sweep(backend):
    for seed in DEEP_SEEDS:
        trees = random_corpus(seed, max_nodes=80)
        references = reference_engines(trees)
        for representation in ("packed", "object"):
            corpus = build_corpus_engine(trees, backend, representation,
                                         shard_count=3)
            for query in random_queries(seed, count=4):
                for algorithm in ALGORITHM_NAMES:
                    assert_corpus_equals_union(
                        corpus.search(query, algorithm), references, query,
                        algorithm,
                        context=("deep", seed, backend, representation))
