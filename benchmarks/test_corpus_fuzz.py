"""Deep differential corpus fuzz (opt-in, ``bench`` marker).

The unbounded sibling of ``tests/test_corpus_fuzz.py``: more seeds, larger
random documents, the per-document *sharded* backend and higher shard
counts.  Seeded and deterministic — a failure reproduces from its parametrized
seed.  Runs with the benchmark suite (``pytest benchmarks``) and with
``make fuzz-smoke``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from fuzz_util import (  # noqa: E402 - needs the tests dir on sys.path
    assert_corpus_equals_union,
    assert_segmented_matches_fresh,
    build_corpus_engine,
    random_corpus,
    random_queries,
    reference_engines,
    run_mutation_sequence,
)
from repro.core import ALGORITHM_NAMES  # noqa: E402
from repro.storage import SegmentedStore  # noqa: E402

DEEP_SEEDS = tuple(range(10, 18))
BACKENDS = ("memory", "sqlite", "sharded")
MUTATION_DEEP_SEEDS = tuple(range(20, 26))


@pytest.mark.parametrize("backend", BACKENDS)
def test_deep_corpus_union_sweep(backend):
    for seed in DEEP_SEEDS:
        trees = random_corpus(seed, max_nodes=80)
        references = reference_engines(trees)
        for representation in ("packed", "object"):
            corpus = build_corpus_engine(trees, backend, representation,
                                         shard_count=3)
            for query in random_queries(seed, count=4):
                for algorithm in ALGORITHM_NAMES:
                    assert_corpus_equals_union(
                        corpus.search(query, algorithm), references, query,
                        algorithm,
                        context=("deep", seed, backend, representation))


@pytest.mark.parametrize("representation", ("packed", "object"))
def test_deep_mutation_sequence_sweep(representation):
    """Long seeded mutation sequences on larger documents: every
    intermediate segmented state must equal the fresh-rebuild oracle
    byte-for-byte (canonical search / compare / rank payloads)."""
    for seed in MUTATION_DEEP_SEEDS:
        state = random_corpus(seed, min_docs=2, max_docs=5, max_nodes=60)
        store = SegmentedStore()
        for name in sorted(state):
            store.store_tree(state[name], name)
        queries = random_queries(seed, count=4)

        def check(label, state=state, store=store, queries=queries,
                  seed=seed):
            assert_segmented_matches_fresh(
                store, state, queries, representation,
                context=("deep", seed, representation, label))

        check("initial")
        run_mutation_sequence(store, state, seed, steps=12, check=check,
                              max_nodes=60)
        store.compact()
        check("final compact")
        store.close()
