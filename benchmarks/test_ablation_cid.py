"""Ablation 1 (DESIGN.md) — the (min, max) cID feature vs exact content sets.

The paper approximates tree-content equality with the ``(min, max)`` word pair
(Section 4.1); this ablation quantifies (a) the speed difference and (b) how
often the approximation changes the pruning outcome compared to exact content
comparison.
"""

from __future__ import annotations

import pytest

from repro.core import SearchEngine, fragments_equal

from .conftest import representative_queries


@pytest.fixture(scope="module")
def cid_engines(dataset_specs):
    """minmax- and exact-mode engines over the same XMark document."""
    tree = dataset_specs["xmark-data1"].tree_factory()
    return {
        "minmax": SearchEngine(tree, cid_mode="minmax"),
        "exact": SearchEngine(tree, cid_mode="exact"),
    }


@pytest.mark.parametrize("mode", ["minmax", "exact"])
def test_benchmark_cid_mode(benchmark, cid_engines, dataset_specs, mode):
    query = representative_queries(dataset_specs["xmark-data1"], count=2)[1]
    engine = cid_engines[mode]
    benchmark.group = f"ablation-cid-{query.label}"
    benchmark.name = mode
    benchmark(lambda: engine.search(query.text, "validrtf"))


def test_cid_approximation_effect(cid_engines, dataset_specs):
    """Measure how often the approximation changes the meaningful RTFs."""
    workload = dataset_specs["xmark-data1"].workload
    differing_queries = 0
    over_pruned_nodes = 0
    for query in workload:
        approx = cid_engines["minmax"].search(query.text, "validrtf")
        exact = cid_engines["exact"].search(query.text, "validrtf")
        assert approx.roots() == exact.roots()
        if not fragments_equal(list(approx), list(exact)):
            differing_queries += 1
        # The (min, max) pair can only merge *more* contents into the same
        # feature, so it never keeps nodes the exact mode would prune.
        over_pruned_nodes += exact.total_kept_nodes() - approx.total_kept_nodes()
        assert approx.total_kept_nodes() <= exact.total_kept_nodes()
    print(f"\nablation-cid: {differing_queries}/{len(workload)} queries change "
          f"with exact content sets; {over_pruned_nodes} nodes over-pruned by "
          f"the (min,max) approximation in total")
    # The approximation is usually harmless but not always — which is exactly
    # why it is an ablation-worthy design choice.
    assert differing_queries <= len(workload)
