"""Section 5.1 keyword-frequency table.

Regenerates the per-dataset keyword frequency listing the paper uses to build
its query workloads, and checks that the synthetic datasets preserve the
paper's *relative* frequency structure (rare vs frequent keywords, growth
across the XMark scales).
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import (
    DBLP_PAPER_FREQUENCIES,
    XMARK_PAPER_FREQUENCIES,
)
from repro.index import frequency_table


@pytest.fixture(scope="module")
def dataset_indexes(engines):
    return {name: engine.index for name, engine in engines.items()}


def test_benchmark_frequency_lookup(benchmark, engines):
    """Time the keyword-frequency lookups that drive workload construction."""
    index = engines["dblp"].index
    keywords = list(DBLP_PAPER_FREQUENCIES)
    benchmark.group = "section5.1-frequencies"
    benchmark.name = "dblp-20-keywords"
    benchmark(lambda: [index.frequency(keyword) for keyword in keywords])


def test_dblp_frequency_table(dataset_indexes):
    rows = frequency_table({"dblp": dataset_indexes["dblp"]},
                           list(DBLP_PAPER_FREQUENCIES))
    print()
    print(format_table(rows, ("keyword", "dblp"),
                       title="Section 5.1 — DBLP keyword frequencies (scaled)"))
    by_keyword = {row["keyword"]: row["dblp"] for row in rows}
    # Every workload keyword occurs.
    assert all(count >= 1 for count in by_keyword.values())
    # Relative structure: "data" is the most frequent keyword, "keyword" is
    # among the rarest (matching the published absolute numbers).
    assert by_keyword["data"] == max(by_keyword.values())
    assert by_keyword["keyword"] <= min(
        count for keyword, count in by_keyword.items() if keyword != "keyword") * 2


def test_xmark_frequency_table(dataset_indexes):
    names = ("xmark-standard", "xmark-data1", "xmark-data2")
    rows = frequency_table({name: dataset_indexes[name] for name in names},
                           list(XMARK_PAPER_FREQUENCIES))
    print()
    print(format_table(rows, ("keyword",) + names,
                       title="Section 5.1 — XMark keyword frequencies (scaled)"))
    for row in rows:
        # Frequencies grow (weakly) with the scale, as in the paper's table.
        assert row["xmark-standard"] <= row["xmark-data1"] <= row["xmark-data2"]
        assert row["xmark-standard"] >= 1
    # The high-frequency keywords ("preventions", "description", "order")
    # dominate the table at every scale, as in the paper; "description" also
    # appears as an element label here (like in real XMark), so it can exceed
    # the planted "preventions" count.
    frequent = {"preventions", "description", "order"}
    for name in names:
        ranked = sorted(rows, key=lambda row: row[name], reverse=True)
        assert {row["keyword"] for row in ranked[:3]} == frequent
