"""Storage-substrate benchmarks: shredding throughput and SQL keyword lookup.

Section 5.2 measures nothing about the shredding store itself, but the paper's
pipeline depends on it (keyword nodes come back from SQL).  These benchmarks
document the cost of the substitution (sqlite3 instead of PostgreSQL) and
check that the store-backed stage-1 lookups agree with the in-memory index.
"""

from __future__ import annotations

import pytest

from repro.index import InvertedIndex
from repro.storage import MemoryStore, SQLiteStore, shred_tree


@pytest.fixture(scope="module")
def dblp_tree(engines):
    return engines["dblp"].tree


@pytest.fixture(scope="module")
def sqlite_store(dblp_tree):
    store = SQLiteStore()
    store.store_tree(dblp_tree, "dblp")
    return store


@pytest.fixture(scope="module")
def memory_store(dblp_tree):
    store = MemoryStore()
    store.store_tree(dblp_tree, "dblp")
    return store


def test_benchmark_shredding(benchmark, dblp_tree):
    benchmark.group = "storage-shred"
    benchmark.name = "shred_tree-dblp"
    shredded = benchmark(lambda: shred_tree(dblp_tree, "dblp"))
    assert shredded.node_count == dblp_tree.size()


def test_benchmark_sqlite_bulk_load(benchmark, dblp_tree):
    benchmark.group = "storage-load"
    benchmark.name = "sqlite-store_tree"
    shredded = shred_tree(dblp_tree, "dblp")

    def load():
        with SQLiteStore() as store:
            store.store_shredded(shredded)
            return store.document_stats("dblp")["nodes"]

    assert benchmark(load) == dblp_tree.size()


@pytest.mark.parametrize("backend", ["sqlite", "memory", "inverted-index"])
def test_benchmark_keyword_lookup(benchmark, backend, sqlite_store, memory_store,
                                  engines):
    """Stage 1 (getKeywordNodes) served by each backend."""
    keywords = ["xml", "keyword", "data", "retrieval", "algorithm"]
    benchmark.group = "storage-keyword-lookup"
    benchmark.name = backend
    if backend == "sqlite":
        benchmark(lambda: sqlite_store.keyword_nodes("dblp", keywords))
    elif backend == "memory":
        benchmark(lambda: memory_store.keyword_nodes("dblp", keywords))
    else:
        index = engines["dblp"].index
        benchmark(lambda: index.keyword_nodes(keywords))


def test_backends_agree_with_index(sqlite_store, memory_store, engines):
    index: InvertedIndex = engines["dblp"].index
    for keyword in ("xml", "keyword", "data", "vldb", "henry"):
        expected = list(index.postings(keyword).deweys)
        assert sqlite_store.keyword_deweys("dblp", keyword) == expected
        assert memory_store.keyword_deweys("dblp", keyword) == expected
