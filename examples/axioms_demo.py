#!/usr/bin/env python3
"""Demonstrate the four axiomatic XKS properties on live data mutations.

The paper argues (Section 4.3-(2)) that ValidRTF satisfies the axiomatic
properties deduced by Liu & Chen: data/query monotonicity and data/query
consistency.  This example inserts a new article into the Figure 1(a)
document and extends a query by one keyword, showing how the result set
reacts and checking each property.

Run with::

    python examples/axioms_demo.py
"""

from __future__ import annotations

from repro.core import ValidRTF, check_all_axioms
from repro.datasets import publications_tree
from repro.xmltree import DeweyCode, SubtreeSpec


def validrtf_factory(tree):
    return ValidRTF(tree).search


def main() -> None:
    tree = publications_tree()
    query = "xml keyword"
    extra_keyword = "search"
    insertion = SubtreeSpec("article", None, children=[
        SubtreeSpec("title", "Adaptive XML Keyword Search with Ranked Fragments"),
        SubtreeSpec("abstract",
                    "ranking keyword search fragments over xml collections"),
    ])
    parent = DeweyCode.parse("0.2")

    search = validrtf_factory(tree)
    before = search(query)
    print(f"query {query!r} on the original document: {before.count} RTF(s) "
          f"rooted at {[str(code) for code in before.roots()]}")

    mutated = tree.with_inserted_subtree(parent, insertion)
    after_data = validrtf_factory(mutated)(query)
    print(f"after inserting a new <article> under {parent}: "
          f"{after_data.count} RTF(s) rooted at "
          f"{[str(code) for code in after_data.roots()]}")

    extended = f"{query} {extra_keyword}"
    after_query = search(extended)
    print(f"after adding the keyword {extra_keyword!r}: {after_query.count} RTF(s)")
    print()

    report = check_all_axioms(validrtf_factory, tree, query, parent, insertion,
                              extra_keyword)
    print("axiomatic property checks for ValidRTF:")
    for check in report.checks:
        status = "satisfied" if check.satisfied else f"VIOLATED ({check.detail})"
        print(f"  {check.property_name:<20} {check.before_count} -> "
              f"{check.after_count} results   {status}")
    print()
    print("all four properties satisfied:", report.all_satisfied)


if __name__ == "__main__":
    main()
