#!/usr/bin/env python3
"""Replay the paper's worked examples (Examples 1–7, Figures 2–4).

Walks through the queries Q1–Q5 on the Figure 1 instances and shows, for each,
what MaxMatch and ValidRTF return and where the false-positive / redundancy
problems appear and get fixed.

Run with::

    python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro import SearchEngine
from repro.datasets import PAPER_QUERIES, publications_tree, team_tree


def show(engine: SearchEngine, query_name: str, note: str) -> None:
    query = PAPER_QUERIES[query_name]
    print("=" * 72)
    print(f"{query_name}: {query!r}")
    print(note)
    print("-" * 72)

    lca_roots = engine.lca_nodes(query)
    print(f"interesting LCA nodes (getLCA): {[str(code) for code in lca_roots]}")

    maxmatch = engine.search(query, "maxmatch")
    validrtf = engine.search(query, "validrtf")
    for name, result in (("MaxMatch", maxmatch), ("ValidRTF", validrtf)):
        print(f"\n{name} ({result.count} fragment(s)):")
        print(engine.render_result(result))

    report = engine.compare(query).report
    print(f"\nCFR={report.cfr:.2f}  APR'={report.apr_prime:.2f}  "
          f"Max APR={report.max_apr:.2f}")
    print()


def main() -> None:
    publications_engine = SearchEngine(publications_tree())
    team_engine = SearchEngine(team_tree())

    show(publications_engine, "Q2",
         "Example 1/3/4 — SLCA vs LCA: besides the self-contained <ref> node, "
         "the enclosing <article> is also an interesting root, so ValidRTF "
         "returns two RTFs (Figures 2(a) and 2(b)).")

    show(publications_engine, "Q3",
         "Example 1/6/7 — papers published in VLDB 2008 on XML keyword "
         "search: the raw RTF is rooted at the document root (Figure 2(c)); "
         "pruning keeps only the relevant article (Figure 2(d)).  Note how "
         "MaxMatch additionally drops the abstract and references (a false "
         "positive).")

    show(publications_engine, "Q1",
         "Example 2/5 — the false-positive problem: MaxMatch discards the "
         "<title> node because its keywords are subsumed by the <abstract>; "
         "ValidRTF keeps it because it is the only child with that label "
         "(Figures 3(b) vs 3(c)).")

    show(team_engine, "Q4",
         "Example 2/5 — the redundancy problem: MaxMatch keeps both 'forward' "
         "players (Figure 3(d)); ValidRTF keeps one 'forward' and one 'guard'.")

    show(team_engine, "Q5",
         "Example 2/5 — the positive case both filters agree on: only the "
         "Gassol player survives (Figure 3(a)).")


if __name__ == "__main__":
    main()
