#!/usr/bin/env python3
"""Serve XML keyword search concurrently and load-test it, in one process.

The demo walks the whole serving stack of :mod:`repro.service`:

1. builds an :class:`~repro.service.engine_pool.EnginePool` — four worker
   threads, each with its own :class:`~repro.core.engine.SearchEngine`, all
   sharing one immutable in-memory posting snapshot of the Figure 1(a)
   document;
2. hosts the newline-delimited-JSON TCP front end on a background thread
   (:class:`~repro.service.server.ServerThread`), with request batching
   (2 ms window) and admission control (bounded in-flight depth);
3. talks to it like any remote caller would, through
   :class:`~repro.service.client.ServiceClient` — search with a per-request
   algorithm and ``cid_mode``, a ValidRTF-vs-MaxMatch comparison, and the
   server's own pool/batcher/admission/server statistics;
4. scrapes the live metrics registry (the same merged snapshot the
   ``stats`` wire op and ``python -m repro.cli metrics`` expose) and prints
   a few headline series;
5. finishes with a tiny closed-loop load test and prints throughput plus
   p50/p95/p99 latency.

Run with::

    PYTHONPATH=src python examples/serve_demo.py

The equivalent command-line entry points are::

    python -m repro.cli serve --dataset figure-1a --workers 4
    python -m repro.cli loadtest --backend memory --workers 4
"""

from __future__ import annotations

from repro.datasets import PAPER_QUERIES, publications_tree
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceConfig,
    loadtest,
)


def main() -> None:
    tree = publications_tree()
    config = ServiceConfig(backend="memory", workers=4,
                           max_batch_size=16, batch_window_seconds=0.002,
                           max_inflight=64)

    print("== starting the serving stack (pool + batcher + admission) ==")
    with ServerThread(config, tree=tree) as server:
        host, port = server.address
        print(f"listening on {host}:{port}\n")

        with ServiceClient(host, port) as client:
            print("== one served query, two algorithms ==")
            query = PAPER_QUERIES["Q2"]
            for algorithm in ("validrtf", "maxmatch"):
                payload = client.search(query, algorithm)
                roots = [fragment["root"]
                         for fragment in payload["fragments"]]
                print(f"{algorithm:>9}: {payload['count']} fragment(s), "
                      f"roots {roots}")

            print("\n== per-request cid_mode override ==")
            payload = client.search(query, cid_mode="exact")
            print(f"exact-mode answer: {payload['count']} fragment(s)")

            print("\n== served ValidRTF-vs-MaxMatch comparison ==")
            comparison = client.compare(query)
            report = comparison["report"]
            print(f"RTFs: {report['lca_count']}  CFR: {report['cfr']:.3f}  "
                  f"APR': {report['apr_prime']:.3f}  "
                  f"Max APR: {report['max_apr']:.3f}")

            print("\n== server statistics ==")
            stats = client.stats()
            pool = stats["pool"]
            print(f"workers: {pool['workers']}  engines built: "
                  f"{pool['engines']}  backend: {pool['backend']}")
            print(f"batcher: {stats['batcher']['requests']} request(s) in "
                  f"{stats['batcher']['batches']} batch(es), mean queue "
                  f"wait {stats['batcher']['mean_queue_wait_ms']:.3f} ms")
            print(f"admission: peak in-flight "
                  f"{stats['admission']['peak_inflight']}, "
                  f"rejected {stats['admission']['rejected']}")
            print(f"server: requests by op {stats['server']['requests']}, "
                  f"slow queries {stats['server']['slow_queries']}")

            print("\n== live metrics snapshot (counters) ==")
            snapshot = client.metrics()
            for key, value in sorted(snapshot["counters"].items()):
                if key.startswith(("query.count", "server.requests",
                                   "batcher.", "admission.")):
                    print(f"  {key} = {value}")

        print("\n== closed-loop load test against the same server ==")
        report = loadtest(config, list(PAPER_QUERIES.values()),
                          address=(host, port), mode="closed",
                          requests=100, concurrency=4)
        print(report.summary())


if __name__ == "__main__":
    main()
