#!/usr/bin/env python3
"""Quickstart: index an XML document and run an XML keyword search.

Builds a small bibliography, runs one keyword query with ValidRTF (the
paper's algorithm) and with the MaxMatch baseline, and prints the resulting
meaningful fragments side by side.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SearchEngine, parse_string

DOCUMENT = """
<bibliography>
  <conference>
    <name>EDBT 2009</name>
    <paper>
      <title>Retrieving Meaningful Relaxed Tightest Fragments for XML Keyword Search</title>
      <authors>
        <author>Lingbo Kong</author>
        <author>Remi Gilleron</author>
        <author>Aurelien Lemay</author>
      </authors>
      <abstract>valid contributors prune relaxed tightest fragments for xml keyword search</abstract>
    </paper>
    <paper>
      <title>Efficient Keyword Search for Smallest LCAs in XML Databases</title>
      <authors>
        <author>Yu Xu</author>
        <author>Yannis Papakonstantinou</author>
      </authors>
      <abstract>indexed lookup eager computes smallest lowest common ancestors</abstract>
    </paper>
  </conference>
  <journal>
    <name>TKDE</name>
    <paper>
      <title>Keyword Proximity Search in XML Trees</title>
      <authors><author>Vagelis Hristidis</author></authors>
    </paper>
  </journal>
</bibliography>
"""


def main() -> None:
    # 1. Parse the document and build a search engine (the engine indexes the
    #    document once; every query after that reuses the index).
    tree = parse_string(DOCUMENT, name="quickstart")
    engine = SearchEngine(tree)

    query = "xml keyword search"
    print(f"document: {tree.name} ({tree.size()} nodes)")
    print(f"query   : {query!r}\n")

    # 2. Run the paper's ValidRTF algorithm.
    validrtf_result = engine.search(query, algorithm="validrtf")
    print(f"ValidRTF returns {validrtf_result.count} meaningful RTF(s):")
    print(engine.render_result(validrtf_result))
    print()

    # 3. Run the MaxMatch baseline on the same RTFs and compare.
    outcome = engine.compare(query)
    report = outcome.report
    print("ValidRTF vs MaxMatch on the same query:")
    print(f"  interesting LCA roots : {report.lca_count}")
    print(f"  identical fragments   : {report.common_fragments} (CFR = {report.cfr:.2f})")
    print(f"  Max APR               : {report.max_apr:.2f}")
    for comparison in report.comparisons:
        marker = "same" if comparison.identical else "differs"
        print(f"    root {comparison.root}: MaxMatch keeps {comparison.maxmatch_size} "
              f"nodes, ValidRTF keeps {comparison.validrtf_size} ({marker})")

    # 4. Rank the meaningful RTFs (the paper's future-work extension).
    print("\nRanked fragments (most specific / compact first):")
    for position, ranked in enumerate(engine.rank(validrtf_result), start=1):
        print(f"  {position}. root {ranked.fragment.root} score={ranked.score:.3f}")


if __name__ == "__main__":
    main()
