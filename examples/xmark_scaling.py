#!/usr/bin/env python3
"""Scaling behaviour on the synthetic XMark-like auction documents.

Generates the three XMark scales (standard / data1 / data2), runs the same
keyword queries on each, and reports how document size, RTF counts, elapsed
time and the ValidRTF-vs-MaxMatch pruning ratios evolve — the qualitative
content of Figures 5(b)–(d) and 6(b)–(d).

Run with::

    python examples/xmark_scaling.py [base_items]
"""

from __future__ import annotations

import sys
import time

from repro.core import SearchEngine, effectiveness
from repro.datasets import xmark_suite

QUERIES = (
    "preventions description order",
    "chronicle method strings",
    "invention egypt leon",
    "particle dominator chronicle method",
)


def main() -> None:
    base_items = int(sys.argv[1]) if len(sys.argv) > 1 else 50

    print(f"generating the three XMark scales (base_items={base_items}) ...")
    suite = xmark_suite(base_items=base_items)
    engines = {}
    for scale, tree in suite.items():
        started = time.perf_counter()
        engines[scale] = SearchEngine(tree)
        built = time.perf_counter() - started
        print(f"  {scale:<9} {tree.size():>7} nodes  (indexed in {built * 1000:.0f} ms)")
    print()

    header = f"{'query':<38} {'scale':<9} {'RTFs':>5} {'VRTF ms':>8} " \
             f"{'MM ms':>8} {'CFR':>5} {'MaxAPR':>7}"
    print(header)
    print("-" * len(header))
    for query in QUERIES:
        for scale, engine in engines.items():
            started = time.perf_counter()
            validrtf = engine.search(query, "validrtf")
            validrtf_ms = (time.perf_counter() - started) * 1000
            started = time.perf_counter()
            maxmatch = engine.search(query, "maxmatch")
            maxmatch_ms = (time.perf_counter() - started) * 1000
            report = effectiveness(maxmatch, validrtf)
            print(f"{query:<38} {scale:<9} {validrtf.count:>5} "
                  f"{validrtf_ms:>8.1f} {maxmatch_ms:>8.1f} "
                  f"{report.cfr:>5.2f} {report.max_apr:>7.2f}")
        print()

    print("Reading the table:")
    print("  * RTF counts and times grow with the document scale (Figure 5(b)-(d));")
    print("  * CFR < 1 and Max APR > 0 show where ValidRTF prunes nodes the")
    print("    contributor-based MaxMatch keeps (Figure 6(b)-(d)).")


if __name__ == "__main__":
    main()
