#!/usr/bin/env python3
"""Bibliographic search over the synthetic DBLP-like dataset, disk-backed.

Generates the DBLP stand-in corpus, shreds it into the relational (sqlite3)
store the way the paper's system does (Section 5.2), and answers a handful of
bibliographic keyword queries **through the disk-backed posting source** — the
search engine runs without the XML tree resident in memory, exactly like the
CLI workflow::

    repro-xks index doc.xml --db doc.db
    repro-xks search --db doc.db --backend sqlite "xml keyword retrieval"

A memory-backend engine runs alongside to show the two backends agree
fragment for fragment (the invariant `tests/test_backend_parity.py` enforces
for every backend).

Run with::

    python examples/dblp_search.py [publications]
"""

from __future__ import annotations

import sys

from repro.core import SearchEngine
from repro.datasets import DBLPConfig, DBLP_PAPER_FREQUENCIES, generate_dblp
from repro.index import document_profile
from repro.storage import SQLitePostingSource, SQLiteStore

QUERIES = (
    "xml keyword retrieval",
    "probabilistic similarity",
    "dynamic algorithm efficient",
    "tree pattern query",
)


def main() -> None:
    publications = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    # 1. Generate the corpus and profile it (reusing the engine's index).
    tree = generate_dblp(DBLPConfig(publications=publications))
    memory_engine = SearchEngine(tree)
    profile = document_profile(tree, memory_engine.index, name="dblp-synthetic")
    print(f"corpus: {profile.node_count} nodes, {profile.distinct_labels} labels, "
          f"{profile.vocabulary_size} distinct words")

    # 2. Shred it into the relational store (label / element / value tables).
    store = SQLiteStore()
    store.store_tree(tree, "dblp")
    stats = store.document_stats("dblp")
    print(f"shredded into sqlite: {stats['nodes']} element rows, "
          f"{stats['values']} value rows, {stats['labels']} labels\n")

    # 3. The disk-backed counterpart never touches `tree` again.
    disk_engine = SearchEngine(source=SQLitePostingSource(store, "dblp"))
    print(f"backends: {memory_engine.backend_id!r} vs {disk_engine.backend_id!r}\n")

    # 4. Keyword frequencies of the workload keywords (Section 5.1 table).
    print("workload keyword frequencies (scaled-down corpus):")
    for keyword in ("data", "algorithm", "xml", "keyword", "vldb"):
        paper = DBLP_PAPER_FREQUENCIES[keyword]
        here = disk_engine.source.frequency(keyword)
        print(f"  {keyword:<10} paper={paper:<6} here={here}")
    print()

    # 5. Run queries disk-backed, compare algorithms, and check parity.
    for query in QUERIES:
        validrtf = disk_engine.search(query, "validrtf")
        maxmatch = disk_engine.search(query, "maxmatch")
        reference = memory_engine.search(query, "validrtf")
        agrees = [f.kept_set() for f in validrtf] == \
            [f.kept_set() for f in reference]
        print(f"query {query!r}")
        print(f"  RTFs: {validrtf.count}   kept nodes: "
              f"ValidRTF={validrtf.total_kept_nodes()} "
              f"MaxMatch={maxmatch.total_kept_nodes()}   "
              f"parity with memory backend: {'ok' if agrees else 'MISMATCH'}")
        if validrtf.fragments:
            top = validrtf.fragments[0]
            title_nodes = [code for code in top.kept_nodes
                           if disk_engine.source.node_label(code) == "title"]
            if title_nodes:
                print(f"  first fragment root {top.root}: title node "
                      f"{title_nodes[0]} "
                      f"\"{tree.node(title_nodes[0]).text}\"")
        print()


if __name__ == "__main__":
    main()
