#!/usr/bin/env python3
"""Bibliographic search over the synthetic DBLP-like dataset.

Generates the DBLP stand-in corpus, stores it in the relational (sqlite3)
shredding store the way the paper's system does (Section 5.2), and answers a
handful of bibliographic keyword queries through the store-backed pipeline,
reporting keyword frequencies and result statistics along the way.

Run with::

    python examples/dblp_search.py [publications]
"""

from __future__ import annotations

import sys

from repro.core import SearchEngine
from repro.datasets import DBLPConfig, DBLP_PAPER_FREQUENCIES, generate_dblp
from repro.index import document_profile
from repro.storage import SQLiteStore, StoredDocumentSearch

QUERIES = (
    "xml keyword retrieval",
    "probabilistic similarity",
    "dynamic algorithm efficient",
    "tree pattern query",
)


def main() -> None:
    publications = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    # 1. Generate the corpus and profile it.
    tree = generate_dblp(DBLPConfig(publications=publications))
    engine = SearchEngine(tree)
    profile = document_profile(tree, engine.index, name="dblp-synthetic")
    print(f"corpus: {profile.node_count} nodes, {profile.distinct_labels} labels, "
          f"{profile.vocabulary_size} distinct words")

    # 2. Shred it into the relational store (label / element / value tables).
    store = SQLiteStore()
    search = StoredDocumentSearch(tree, store, "dblp")
    stats = store.document_stats("dblp")
    print(f"shredded into sqlite: {stats['nodes']} element rows, "
          f"{stats['values']} value rows, {stats['labels']} labels\n")

    # 3. Keyword frequencies of the workload keywords (Section 5.1 table).
    print("workload keyword frequencies (scaled-down corpus):")
    for keyword in ("data", "algorithm", "xml", "keyword", "vldb"):
        paper = DBLP_PAPER_FREQUENCIES[keyword]
        here = store.keyword_frequency("dblp", keyword)
        print(f"  {keyword:<10} paper={paper:<6} here={here}")
    print()

    # 4. Run queries through the store-backed pipeline and compare algorithms.
    for query in QUERIES:
        validrtf = search.search(query, "validrtf")
        maxmatch = search.search(query, "maxmatch")
        kept_v = validrtf.total_kept_nodes()
        kept_m = maxmatch.total_kept_nodes()
        print(f"query {query!r}")
        print(f"  RTFs: {validrtf.count}   kept nodes: ValidRTF={kept_v} "
              f"MaxMatch={kept_m}")
        if validrtf.fragments:
            top = validrtf.fragments[0]
            title_nodes = [code for code in top.kept_nodes
                           if tree.node(code).label == "title"]
            if title_nodes:
                print(f"  first fragment root {top.root}: "
                      f"\"{tree.node(title_nodes[0]).text}\"")
        print()


if __name__ == "__main__":
    main()
