#!/usr/bin/env python3
"""Regenerate the paper's Figure 5 and Figure 6 panels from the command line.

This is a thin front end over :mod:`repro.bench`: it builds the benchmark
datasets (scaled-down stand-ins for the paper's DBLP and XMark documents),
runs the full query workloads and prints the per-query tables plus the
qualitative-shape summaries recorded in EXPERIMENTS.md.

Run with::

    python examples/reproduce_figures.py                   # every panel
    python examples/reproduce_figures.py --figure 5a       # one panel
    python examples/reproduce_figures.py --quick           # smaller documents
"""

from __future__ import annotations

import argparse

from repro.bench import (
    default_datasets,
    export_run,
    figure5_summary,
    figure6_summary,
    format_summary,
    render_figure5,
    render_figure6,
    run_workload,
)

#: Panel id -> (dataset, figure number).
PANELS = {
    "5a": ("dblp", 5),
    "5b": ("xmark-standard", 5),
    "5c": ("xmark-data1", 5),
    "5d": ("xmark-data2", 5),
    "6a": ("dblp", 6),
    "6b": ("xmark-standard", 6),
    "6c": ("xmark-data1", 6),
    "6d": ("xmark-data2", 6),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(PANELS) + ["all"], default="all",
                        help="panel to regenerate (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="use smaller documents for a fast smoke run")
    parser.add_argument("--repetitions", type=int, default=2,
                        help="timed repetitions per query (first is discarded)")
    parser.add_argument("--export", metavar="DIR", default=None,
                        help="also write CSV/JSON artefacts for each dataset "
                             "into this directory")
    arguments = parser.parse_args()

    if arguments.quick:
        specs = default_datasets(dblp_publications=200, xmark_base_items=30)
    else:
        specs = default_datasets()

    wanted = sorted(PANELS) if arguments.figure == "all" else [arguments.figure]
    needed_datasets = {PANELS[panel][0] for panel in wanted}

    runs = {}
    for dataset in sorted(needed_datasets):
        print(f"running the {dataset} workload ...")
        runs[dataset] = run_workload(specs[dataset],
                                     repetitions=arguments.repetitions)
        if arguments.export:
            artefacts = export_run(runs[dataset], arguments.export)
            for name, path in sorted(artefacts.items()):
                print(f"  wrote {name}: {path}")
    print()

    for panel in wanted:
        dataset, figure = PANELS[panel]
        run = runs[dataset]
        print("#" * 72)
        print(f"# Figure {figure}({panel[-1]}) — {dataset}")
        print("#" * 72)
        if figure == 5:
            print(render_figure5(run))
            print()
            print(format_summary(figure5_summary(run), title="panel summary"))
        else:
            print(render_figure6(run))
            print()
            print(format_summary(figure6_summary(run), title="panel summary"))
        print()


if __name__ == "__main__":
    main()
