"""Deterministic fault injection for the storage seam.

A :class:`FaultPlan` is a seeded schedule of storage-level misbehaviour —
transient ``sqlite3.OperationalError``\\ s, latency spikes, and torn writes
at the journaled fault points of a segmented mutation.  The plan is
deterministic: the same seed and the same statement sequence produce the
same faults, which keeps chaos runs reproducible and lets the crash-point
fuzzer enumerate every kill site.

The plan plugs in at two seams:

* :meth:`FaultPlan.wrap` wraps a ``sqlite3.Connection`` so every
  ``execute``/``executemany`` consults the plan first (errors + latency).
  ``SQLiteStore`` wraps each per-thread connection when a plan is set.
* :meth:`FaultPlan.fault_point` is installed as the ``SegmentedStore``
  fault hook; at a mid-apply point a torn fault commits the partial
  transaction and then raises :class:`InjectedCrash`, simulating a torn
  page followed by process death.  The mutation journal makes the state
  recoverable either way.

Injected errors subclass ``sqlite3.OperationalError`` so the serving
stack's degraded-mode handling treats real and injected storage trouble
identically.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from random import Random
from typing import Any, Dict, Optional, Tuple

from ..obs import MetricsRegistry
from ..obs import names as metric_names

__all__ = [
    "FaultPlan",
    "FaultingConnection",
    "InjectedCrash",
    "InjectedFault",
]


class InjectedFault(sqlite3.OperationalError):
    """A transient storage error produced by a :class:`FaultPlan`."""


class InjectedCrash(sqlite3.OperationalError):
    """A simulated process death at a journaled mutation fault point.

    Mutation code must *not* clean up after this exception — the whole
    point is to leave the database exactly as a crash would, so that the
    journal recovery path (not a live ``except`` block) restores
    integrity.
    """


class FaultPlan:
    """A seeded, bounded schedule of storage faults.

    Parameters
    ----------
    seed:
        Seeds the internal RNG; two plans with the same seed fault the
        same statements in the same order.
    error_rate / torn_rate / latency_rate:
        Per-decision probabilities in ``[0, 1]``.  ``error_rate`` governs
        statement execution, ``torn_rate`` governs journaled mutation
        fault points, ``latency_rate`` adds a synchronous sleep before a
        statement.
    latency_seconds:
        Duration of one injected latency spike.
    delay:
        Number of leading statements left untouched — lets a server
        finish startup (schema DDL, catalog validation) before the chaos
        begins.
    max_faults:
        Total fault budget (errors + tears + spikes); once spent the plan
        goes quiet, so a bounded retry policy is guaranteed to win
        eventually.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        torn_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.002,
        delay: int = 0,
        max_faults: Optional[int] = None,
    ) -> None:
        for name, rate in (
            ("error", error_rate), ("torn", torn_rate), ("latency", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate!r}")
        if latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if max_faults is not None and max_faults < 0:
            raise ValueError("max_faults must be non-negative")
        self.seed = seed
        self.error_rate = error_rate
        self.torn_rate = torn_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self.delay = delay
        self.max_faults = max_faults
        self._rng = Random(seed * 6367 + 11)
        self._lock = threading.Lock()
        self._statements = 0
        self._metrics: Optional[MetricsRegistry] = None
        self.injected: Dict[str, int] = {"error": 0, "torn": 0, "latency": 0}

    # ----------------------------------------------------------------- #
    # Construction helpers
    # ----------------------------------------------------------------- #
    _SPEC_KEYS = {
        "seed": ("seed", int),
        "error": ("error_rate", float),
        "torn": ("torn_rate", float),
        "latency": ("latency_rate", float),
        "latency-ms": ("latency_seconds", lambda raw: float(raw) / 1000.0),
        "delay": ("delay", int),
        "max-faults": ("max_faults", int),
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value,key=value`` CLI spec string.

        Keys: ``seed``, ``error``, ``torn``, ``latency`` (rates in
        ``[0,1]``), ``latency-ms``, ``delay``, ``max-faults``.
        """
        settings: Dict[str, Any] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, raw = part.partition("=")
            key = key.strip()
            if not separator or key not in cls._SPEC_KEYS:
                known = ", ".join(sorted(cls._SPEC_KEYS))
                raise ValueError(
                    f"bad fault-plan entry {part!r}; expected key=value with "
                    f"one of: {known}"
                )
            field, convert = cls._SPEC_KEYS[key]
            try:
                settings[field] = convert(raw.strip())
            except ValueError as error:
                raise ValueError(
                    f"bad fault-plan value for {key!r}: {raw.strip()!r}"
                ) from error
        return cls(**settings)

    def describe(self) -> str:
        budget = "unbounded" if self.max_faults is None else str(self.max_faults)
        return (
            f"FaultPlan(seed={self.seed}, error={self.error_rate}, "
            f"torn={self.torn_rate}, latency={self.latency_rate}, "
            f"delay={self.delay}, budget={budget})"
        )

    def bind(self, metrics: MetricsRegistry) -> None:
        """Route injected-fault counts into a metrics registry."""
        self._metrics = metrics

    # ----------------------------------------------------------------- #
    # Decision core
    # ----------------------------------------------------------------- #
    def _spend(self, kind: str, rate: float) -> bool:
        """Deterministically decide whether to inject ``kind`` now."""
        if rate <= 0.0:
            return False
        with self._lock:
            budget = self.max_faults
            if budget is not None and sum(self.injected.values()) >= budget:
                return False
            if self._rng.random() >= rate:
                return False
            self.injected[kind] += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(metric_names.FAULTS_INJECTED, {"kind": kind}).inc()
        return True

    def before_statement(self, sql: str) -> None:
        """Consulted ahead of every statement on a wrapped connection."""
        with self._lock:
            self._statements += 1
            if self._statements <= self.delay:
                return
        if self._spend("latency", self.latency_rate):
            time.sleep(self.latency_seconds)
        if self._spend("error", self.error_rate):
            raise InjectedFault(
                f"injected storage fault (statement #{self._statements}): "
                f"{sql.split(None, 1)[0] if sql.split() else sql!r} failed"
            )

    def fault_point(self, name: str, connection: "sqlite3.Connection") -> None:
        """SegmentedStore fault hook: maybe tear the write and crash.

        At a mid-apply point (``*.apply``) a torn fault commits whatever
        the mutation has written so far — simulating a torn page — and
        then raises :class:`InjectedCrash`.  At intent/applied points the
        crash is clean (uncommitted work rolls back on close).
        """
        if not self._spend("torn", self.torn_rate):
            return
        if name.endswith(".apply"):
            connection.commit()
        raise InjectedCrash(f"injected crash at fault point {name!r}")

    def wrap(self, connection: sqlite3.Connection) -> "FaultingConnection":
        return FaultingConnection(connection, self)


class FaultingCursor:
    """Cursor proxy consulting the plan before each statement."""

    def __init__(self, cursor: sqlite3.Cursor, plan: FaultPlan) -> None:
        self._cursor = cursor
        self._plan = plan

    def execute(self, sql: str, parameters: Any = ()) -> "FaultingCursor":
        self._plan.before_statement(sql)
        self._cursor.execute(sql, parameters)
        return self

    def executemany(self, sql: str, seq_of_parameters: Any) -> "FaultingCursor":
        self._plan.before_statement(sql)
        self._cursor.executemany(sql, seq_of_parameters)
        return self

    def __iter__(self) -> Any:
        return iter(self._cursor)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._cursor, name)


class FaultingConnection:
    """Connection proxy that injects plan faults on statement execution.

    Only ``execute``/``executemany``/``cursor`` are intercepted; commit,
    rollback and close pass straight through, so transaction semantics
    are exactly sqlite's — a plan makes statements *fail*, never lie.
    """

    def __init__(self, connection: sqlite3.Connection, plan: FaultPlan) -> None:
        self._connection = connection
        self._plan = plan

    def execute(self, sql: str, parameters: Any = ()) -> sqlite3.Cursor:
        self._plan.before_statement(sql)
        return self._connection.execute(sql, parameters)

    def executemany(self, sql: str, seq_of_parameters: Any) -> sqlite3.Cursor:
        self._plan.before_statement(sql)
        return self._connection.executemany(sql, seq_of_parameters)

    def cursor(self) -> FaultingCursor:
        return FaultingCursor(self._connection.cursor(), self._plan)

    def commit(self) -> None:
        self._connection.commit()

    def rollback(self) -> None:
        self._connection.rollback()

    def close(self) -> None:
        self._connection.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._connection, name)
