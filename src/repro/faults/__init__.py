"""Deterministic fault injection and crash simulation (``repro.faults``).

The package owns the chaos-testing vocabulary: a seeded
:class:`~repro.faults.plan.FaultPlan` injects transient sqlite errors,
latency spikes and torn writes at the storage seam, and
:class:`~repro.faults.plan.InjectedCrash` marks a simulated process death
at a journaled mutation fault point.  See ``storage/segments.py`` for the
journal that makes those crashes recoverable.
"""

from .plan import FaultingConnection, FaultPlan, InjectedCrash, InjectedFault

__all__ = [
    "FaultPlan",
    "FaultingConnection",
    "InjectedCrash",
    "InjectedFault",
]
