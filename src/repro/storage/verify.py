"""Database integrity verification (``repro.cli verify --db``).

Treats integrity checking as a first-class database operation: open the
store (which runs journal recovery), then sweep the catalog, liveness and
posting-blob invariants that the segmented mutation model guarantees.
Returns a typed :class:`IntegrityReport` instead of printing, so the CLI,
the chaos smoke and the crash-point fuzzer all assert on the same object.

Checked invariants:

* **journal** — no ``pending`` intent survives recovery.
* **catalog** — every ``doc`` segment event owns label *and* element rows;
  tombstone events own no payload rows; no payload row is orphaned from
  the ``segment`` catalog.
* **liveness** — every document named by any base table has element rows
  (the base row sets are complete), and live documents resolve to exactly
  one location.
* **posting blobs** — each packed posting blob (base and segment) decodes,
  its recorded cardinality matches the decoded length, and the decoded
  Dewey list equals the distinct value-row deweys for that
  (document, keyword) — the blob is a faithful derived artefact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from ..index.packed import PackedDeweyList
from .schema import decode_dewey
from .segments import SEGMENT_KIND_DOC, SEGMENT_KIND_TOMBSTONE, SegmentedStore

__all__ = ["IntegrityFinding", "IntegrityReport", "verify_database"]


@dataclass(frozen=True)
class IntegrityFinding:
    """One violated (or noteworthy) invariant."""

    code: str
    severity: str  # "error" | "info"
    message: str

    def payload(self) -> Dict[str, str]:
        return {"code": self.code, "severity": self.severity,
                "message": self.message}


@dataclass
class IntegrityReport:
    """The typed result of one verification sweep."""

    path: str
    documents: int = 0
    segments: int = 0
    recovered: Dict[str, int] = field(default_factory=dict)
    findings: List[IntegrityFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not any(finding.severity == "error"
                       for finding in self.findings)

    def error(self, code: str, message: str) -> None:
        self.findings.append(IntegrityFinding(code, "error", message))

    def info(self, code: str, message: str) -> None:
        self.findings.append(IntegrityFinding(code, "info", message))

    def payload(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "clean": self.clean,
            "documents": self.documents,
            "segments": self.segments,
            "recovered": dict(self.recovered),
            "findings": [finding.payload() for finding in self.findings],
        }

    def render(self) -> str:
        lines = [f"verify {self.path}: "
                 f"{self.documents} live document(s), "
                 f"{self.segments} delta segment(s)"]
        recovered = sum(self.recovered.values())
        if recovered:
            lines.append(
                f"  recovered {recovered} interrupted mutation(s) at open "
                f"(back={self.recovered.get('rolled_back', 0)}, "
                f"forward={self.recovered.get('rolled_forward', 0)})")
        for finding in self.findings:
            lines.append(f"  [{finding.severity}] {finding.code}: "
                         f"{finding.message}")
        lines.append("OK: all integrity checks passed" if self.clean
                     else "FAIL: integrity violations found")
        return "\n".join(lines)


def verify_database(path: Union[str, Path]) -> IntegrityReport:
    """Open ``path`` (running journal recovery) and sweep every invariant."""
    store = SegmentedStore(path)
    try:
        report = IntegrityReport(path=str(path))
        report.recovered = dict(store.last_recovery)
        if sum(report.recovered.values()):
            report.info(
                "journal-recovered",
                f"resolved {sum(report.recovered.values())} interrupted "
                f"mutation(s) left by a crash")
        report.documents = len(store.documents())
        report.segments = store.segment_count()
        connection = store._connection
        _check_journal(connection, report)
        _check_catalog(connection, report)
        _check_liveness(connection, report)
        _check_posting_blobs(connection, report)
        return report
    finally:
        store.close()


def _check_journal(connection: Any, report: IntegrityReport) -> None:
    pending = connection.execute(
        "SELECT COUNT(*) FROM mutation_journal "
        "WHERE state = 'pending'").fetchone()[0]
    if pending:
        report.error("journal-pending",
                     f"{pending} pending journal intent(s) survived "
                     f"recovery")


def _check_catalog(connection: Any, report: IntegrityReport) -> None:
    events: Dict[Tuple[int, str], str] = {
        (int(segment), document): kind
        for segment, document, kind in connection.execute(
            "SELECT segment_id, document, kind FROM segment")}
    for (segment, document), kind in sorted(events.items()):
        if kind not in (SEGMENT_KIND_DOC, SEGMENT_KIND_TOMBSTONE):
            report.error(
                "catalog-unknown-kind",
                f"segment {segment} of {document!r} has unknown kind "
                f"{kind!r}")
    payload_tables = ("segment_label", "segment_element", "segment_value",
                      "segment_posting")
    owned: Dict[Tuple[int, str], Dict[str, int]] = {}
    for table in payload_tables:
        for segment, document, count in connection.execute(
                f"SELECT segment_id, document, COUNT(*) FROM {table} "
                f"GROUP BY segment_id, document"):
            owner = owned.setdefault((int(segment), document), {})
            owner[table] = int(count)
    for key, counts in sorted(owned.items()):
        segment, document = key
        kind = events.get(key)
        if kind is None:
            report.error(
                "catalog-orphan-rows",
                f"{sum(counts.values())} payload row(s) for segment "
                f"{segment} of {document!r} have no catalog entry")
        elif kind == SEGMENT_KIND_TOMBSTONE:
            report.error(
                "tombstone-with-rows",
                f"tombstone segment {segment} of {document!r} owns "
                f"{sum(counts.values())} payload row(s)")
    for key, kind in sorted(events.items()):
        if kind != SEGMENT_KIND_DOC:
            continue
        segment, document = key
        counts = owned.get(key, {})
        for table in ("segment_label", "segment_element"):
            if not counts.get(table):
                report.error(
                    "catalog-missing-rows",
                    f"doc segment {segment} of {document!r} has no "
                    f"{table} rows — torn write")


def _check_liveness(connection: Any, report: IntegrityReport) -> None:
    elements = {document for (document,) in connection.execute(
        "SELECT DISTINCT document FROM element")}
    for table in ("label", "value", "posting"):
        for (document,) in connection.execute(
                f"SELECT DISTINCT document FROM {table}"):
            if document not in elements:
                report.error(
                    "base-orphan-rows",
                    f"base {table} rows for {document!r} have no element "
                    f"rows")
    for (document,) in connection.execute(
            "SELECT DISTINCT document FROM value WHERE (document, dewey) "
            "NOT IN (SELECT document, dewey FROM element)"):
        report.error(
            "value-dangling-node",
            f"base value rows of {document!r} name deweys missing from "
            f"element")


def _check_posting_blobs(connection: Any, report: IntegrityReport) -> None:
    checks = (
        ("posting", "value",
         "SELECT document, keyword, cardinality, blob FROM posting",
         "SELECT DISTINCT dewey FROM value "
         "WHERE document = ? AND keyword = ? ORDER BY dewey", ()),
        ("segment_posting", "segment_value",
         "SELECT segment_id, document, keyword, cardinality, blob "
         "FROM segment_posting",
         "SELECT DISTINCT dewey FROM segment_value WHERE segment_id = ? "
         "AND document = ? AND keyword = ? ORDER BY dewey", ("segment_id",)),
    )
    for blob_table, truth_table, blob_sql, truth_sql, extra in checks:
        for row in connection.execute(blob_sql).fetchall():
            if extra:
                segment, document, keyword, cardinality, blob = row
                truth_key: Tuple[Any, ...] = (segment, document, keyword)
                where = f"segment {segment} of {document!r}"
            else:
                document, keyword, cardinality, blob = row
                truth_key = (document, keyword)
                where = f"base document {document!r}"
            try:
                decoded = PackedDeweyList.from_blob(blob)
            except (ValueError, TypeError) as error:
                report.error(
                    "posting-blob-corrupt",
                    f"{where}: blob for keyword {keyword!r} does not "
                    f"decode ({error})")
                continue
            if len(decoded) != int(cardinality):
                report.error(
                    "posting-cardinality-mismatch",
                    f"{where}: keyword {keyword!r} records cardinality "
                    f"{cardinality} but the blob holds {len(decoded)} "
                    f"posting(s)")
                continue
            truth = [decode_dewey(text) for (text,) in
                     connection.execute(truth_sql, truth_key)]
            blob_deweys = [tuple(dewey.components) for dewey in decoded]
            if blob_deweys != truth:
                report.error(
                    "posting-blob-mismatch",
                    f"{where}: blob deweys for keyword {keyword!r} do not "
                    f"match the {truth_table} ground truth")
