"""Disk-backed and sharded :class:`~repro.index.source.PostingSource`\\ s.

These adapters put the shredded relational store behind the same posting-list
interface the in-memory :class:`~repro.index.inverted.InvertedIndex` serves,
so one :class:`~repro.core.engine.SearchEngine` can run over either — the
EMBANKS-style disk-based retrieval setup of the paper's Section 5, without the
full document resident in RAM.

* :class:`StorePostingSource` — generic adapter over any store backend
  (memory or sqlite).  Lazy: nothing is fetched at construction; decoded
  posting lists are kept in a per-keyword LRU so hot keywords pay the
  SQL + Dewey-decode cost once.
* :class:`SQLitePostingSource` — specialization for :class:`SQLiteStore` that
  fetches all of a query's uncached posting lists in **one** batched
  ``IN (...)`` statement, which is what the engine's ``search_many`` batch
  path funnels a whole workload's keyword union through.
* :class:`ShardedPostingSource` — fans one logical document out over N
  stores and merge-sorts the per-shard posting lists back together.

All three satisfy the parity contract: posting lists strictly sorted in
document order, duplicate-free, and identical to the memory backend's
(``tests/test_backend_parity.py`` / ``tests/test_posting_properties.py``).
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from heapq import merge as _heap_merge
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..index import PostingList
from ..index.source import EMPTY_IMPACT, KeywordImpact, impact_from_postings
from ..index.packed import (
    EMPTY_PACKED,
    PackedDeweyList,
    REPRESENTATIONS,
    all_packed,
    merge_packed,
    pack_component_tuples,
    pack_deweys,
)
from ..xmltree import DeweyCode, XMLTree
from .errors import DocumentNotFound
from .schema import decode_dewey, encode_dewey
from .shredder import ShreddedDocument, shred_tree
from .sqlite_backend import SQLiteStore

#: Default capacity of the per-keyword decoded-posting-list LRU.
DEFAULT_POSTING_LRU_SIZE = 256

#: Default capacity of the per-node label/word-set LRUs.
DEFAULT_NODE_LRU_SIZE = 8192

#: Batched ``IN (...)`` statements stay under sqlite's default host-variable
#: limit (999 in older builds) by chunking at this size.
_IN_CHUNK = 400

_MISSING = object()


class StorePostingSource:
    """Posting source over one document of a shredded store backend.

    Parameters
    ----------
    store:
        A :class:`MemoryStore` or :class:`SQLiteStore` (anything serving the
        shared store query interface).
    document:
        Name of the stored document to serve.
    lru_size:
        Capacity of the per-keyword LRU of decoded Dewey lists; ``0``
        disables caching (every lookup goes back to the store).
    representation:
        ``"packed"`` (the default) serves posting lists as flat
        :class:`~repro.index.packed.PackedDeweyList` columns; ``"object"``
        keeps the classic tuples of :class:`DeweyCode`.  Both answer
        identically — the packed form just skips per-posting object
        materialization (and, on the sqlite specialization, per-row decoding).
    """

    def __init__(self, store, document: str,
                 lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                 node_lru_size: int = DEFAULT_NODE_LRU_SIZE,
                 representation: str = "packed"):
        if representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}; "
                             f"expected one of {REPRESENTATIONS}")
        self.store = store
        self.document = document
        self.tokenizer = store.tokenizer
        self.lru_size = lru_size
        self.node_lru_size = node_lru_size
        self.representation = representation
        self._lru: "OrderedDict[str, Sequence[DeweyCode]]" = OrderedDict()
        self._labels: "OrderedDict[DeweyCode, Optional[str]]" = OrderedDict()
        self._words: "OrderedDict[DeweyCode, FrozenSet[str]]" = OrderedDict()
        self.lru_hits = 0
        self.lru_misses = 0
        # Read accounting (pre-aggregated per fetch, harvested per query by
        # the instrumented pipeline through :meth:`read_stats`).
        self.bytes_read = 0
        self.packed_fetches = 0
        self.fallback_fetches = 0

    # ------------------------------------------------------------------ #
    # PostingSource protocol
    # ------------------------------------------------------------------ #
    @property
    def source_id(self) -> str:
        """Backend identity used in query-cache keys."""
        return f"{self._backend_name()}:{self.document}"

    def postings(self, keyword: str) -> PostingList:
        """The posting list of one (raw, un-normalized) keyword."""
        normalized = self.tokenizer.normalize_keyword(keyword)
        return PostingList(normalized, self._deweys(normalized))

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, Sequence[DeweyCode]]:
        """The ``D_i`` lists for every keyword of a query.

        Packed representation: the immutable cached columns themselves are
        returned; object representation: per-call list copies, as before.
        """
        result: Dict[str, Sequence[DeweyCode]] = {}
        for keyword in self.tokenizer.normalize_query(query):
            deweys = self._deweys(keyword)
            result[keyword] = (deweys if isinstance(deweys, PackedDeweyList)
                               else list(deweys))
        return result

    def frequency(self, keyword: str) -> int:
        """Number of keyword nodes containing ``keyword``."""
        normalized = self.tokenizer.normalize_keyword(keyword)
        cached = self._lru_get(normalized)
        if cached is not None:
            return len(cached)
        return self.store.keyword_frequency(self.document, normalized)

    def impact(self, keyword: str) -> KeywordImpact:
        """Posting count + deepest node level of one keyword.

        An LRU-resident posting list answers locally; otherwise the store's
        metadata path (shred-time ``max_depth`` column on sqlite, lazy scan
        elsewhere) answers without decoding a posting list.
        """
        normalized = self.tokenizer.normalize_keyword(keyword)
        cached = self._lru_get(normalized)
        if cached is not None:
            return impact_from_postings(cached)
        store_impact = getattr(self.store, "keyword_impact", None)
        if store_impact is not None:
            return store_impact(self.document, normalized)
        return impact_from_postings(self._deweys(normalized))

    def vocabulary(self) -> List[str]:
        """Every indexed word of the document, sorted."""
        return self.store.vocabulary(self.document)

    def node_label(self, dewey: DeweyCode) -> Optional[str]:
        """The label of one node, LRU-cached (absence is cached too)."""
        cached = self._labels.get(dewey, _MISSING)
        if cached is not _MISSING:
            self._labels.move_to_end(dewey)
            return cached
        label = self.store.label_of(self.document, dewey)
        self._cache_node(self._labels, dewey, label)
        return label

    def node_words(self, dewey: DeweyCode) -> FrozenSet[str]:
        """The content word set of one node, LRU-cached."""
        cached = self._words.get(dewey, _MISSING)
        if cached is not _MISSING:
            self._words.move_to_end(dewey)
            return cached
        words = self.store.node_words(self.document, dewey)
        self._cache_node(self._words, dewey, words)
        return words

    def prefetch_nodes(self, nodes: Iterable[DeweyCode],
                       keyword_nodes: Iterable[DeweyCode]) -> None:
        """Warm the node caches ahead of record-tree construction.

        The generic store adapter has no batch primitive, so this is a no-op;
        the sqlite specialization fetches all missing labels and word sets in
        chunked ``IN (...)`` statements.
        """

    # ------------------------------------------------------------------ #
    # LRU plumbing (shared with the sqlite batch path)
    # ------------------------------------------------------------------ #
    def _deweys(self, normalized: str) -> Sequence[DeweyCode]:
        cached = self._lru_get(normalized)
        if cached is not None:
            return cached
        if self.representation == "packed":
            decoded: Sequence[DeweyCode] = self._fetch_packed(normalized)
        else:
            decoded = tuple(self.store.keyword_deweys(self.document, normalized))
            self.fallback_fetches += 1
        self._lru_put(normalized, decoded)
        return decoded

    def _fetch_packed(self, normalized: str) -> PackedDeweyList:
        """One keyword's packed columns from the store.

        The generic store interface only exposes decoded codes, so this packs
        them; the sqlite specialization overrides it with the direct
        blob-per-keyword load.
        """
        self.fallback_fetches += 1
        return pack_deweys(self.store.keyword_deweys(self.document, normalized),
                           presorted=True)

    def read_stats(self) -> Dict[str, int]:
        """Cumulative read counters (cache traffic, decode paths, bytes)."""
        return {
            "lru_hits": self.lru_hits,
            "lru_misses": self.lru_misses,
            "bytes": self.bytes_read,
            "packed_fetches": self.packed_fetches,
            "fallback_fetches": self.fallback_fetches,
        }

    def _lru_get(self, normalized: str) -> Optional[Sequence[DeweyCode]]:
        cached = self._lru.get(normalized)
        if cached is None:
            self.lru_misses += 1
            return None
        self._lru.move_to_end(normalized)
        self.lru_hits += 1
        return cached

    def _lru_put(self, normalized: str, deweys: Sequence[DeweyCode]) -> None:
        if self.lru_size <= 0:
            return
        self._lru[normalized] = deweys
        self._lru.move_to_end(normalized)
        while len(self._lru) > self.lru_size:
            self._lru.popitem(last=False)

    def _cache_node(self, cache: "OrderedDict", dewey: DeweyCode, value) -> None:
        if self.node_lru_size <= 0:
            return
        cache[dewey] = value
        cache.move_to_end(dewey)
        while len(cache) > self.node_lru_size:
            cache.popitem(last=False)

    def _backend_name(self) -> str:
        return type(self.store).__name__.replace("Store", "").lower() or "store"

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.source_id!r}, "
                f"lru={len(self._lru)}/{self.lru_size})")


class SQLitePostingSource(StorePostingSource):
    """Disk-backed posting source over a :class:`SQLiteStore` document.

    Identical semantics to :class:`StorePostingSource`, with two additions: a
    multi-keyword :meth:`keyword_nodes` call fetches every LRU-missed posting
    list in a single batched ``SELECT ... WHERE keyword IN (...)`` statement
    instead of one round-trip per keyword, and under the packed representation
    each list is loaded as **one prefix-truncated blob** from the ``posting``
    table — one row per keyword, rebuilt into flat columns at C speed, with no
    per-posting string decode and no per-posting object.  Database files
    written before packed ingestion existed (no ``posting`` rows) fall back to
    the per-row decode transparently.
    """

    def __init__(self, store: SQLiteStore, document: str,
                 lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                 node_lru_size: int = DEFAULT_NODE_LRU_SIZE,
                 representation: str = "packed"):
        if not isinstance(store, SQLiteStore):
            raise TypeError(
                f"SQLitePostingSource needs a SQLiteStore, got {type(store).__name__}")
        super().__init__(store, document, lru_size, node_lru_size, representation)
        self._document_checked = False
        self._blobs_on_disk: Optional[bool] = None

    def _has_blobs(self) -> bool:
        """Whether this document carries packed blobs (checked once)."""
        if self._blobs_on_disk is None:
            self._blobs_on_disk = self.store.has_packed_postings(self.document)
        return self._blobs_on_disk

    def _fetch_packed(self, normalized: str) -> PackedDeweyList:
        """Blob-per-keyword load, falling back to row decode on legacy files.

        The (cached) blob-presence check runs first: a legacy document would
        otherwise pay one doomed ``SELECT ... FROM posting`` per keyword on
        top of every row-decode fallback.
        """
        if not self._has_blobs():
            return super()._fetch_packed(normalized)
        packed = self.store.keyword_packed(self.document, normalized)
        self.packed_fetches += 1
        return packed if packed is not None else EMPTY_PACKED

    def _check_document(self) -> None:
        """Raise :class:`DocumentNotFound` (once) for a misnamed document.

        The raw-SQL batch paths bypass the store's per-call ``_require``
        guard for speed; this keeps their error behaviour consistent with
        ``postings()`` / ``frequency()`` instead of silently answering a
        typo'd document name with empty lists.
        """
        if not self._document_checked:
            self.store._require(self.document)
            self._document_checked = True

    @property
    def source_id(self) -> str:
        """Backend identity including the database path."""
        return f"sqlite:{self.store.path}#{self.document}"

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, Sequence[DeweyCode]]:
        """Batched ``getKeywordNodes``: one ``IN (...)`` fetch for all misses.

        Packed representation: the batch statement reads whole blobs from the
        ``posting`` table (one row per keyword); object representation: the
        classic per-row decode, unchanged.
        """
        self._check_document()
        normalized = self.tokenizer.normalize_query(query)
        if self.representation == "packed":
            return self._keyword_nodes_packed(normalized)
        result, missing = self._split_cached(normalized, materialize=True)
        if missing:
            rows = self._fetch_value_rows(missing)
            for keyword in missing:
                deweys = [DeweyCode(parts) for parts in rows.get(keyword, [])]
                self._lru_put(keyword, tuple(deweys))
                result[keyword] = deweys
        return {keyword: result[keyword] for keyword in normalized}

    def _keyword_nodes_packed(self, normalized: List[str]
                              ) -> Dict[str, Sequence[DeweyCode]]:
        """The packed batch path: one blob row per LRU-missed keyword."""
        result, missing = self._split_cached(normalized, materialize=False)
        if missing:
            if self._has_blobs():
                fetched: Dict[str, PackedDeweyList] = \
                    self._fetch_blob_rows(missing)
            else:
                # Legacy file without blobs: batched row decode, packed once.
                fetched = {keyword: pack_component_tuples(components,
                                                          presorted=True)
                           for keyword, components
                           in self._fetch_value_rows(missing).items()}
            for keyword in missing:
                packed = fetched.get(keyword, EMPTY_PACKED)
                self._lru_put(keyword, packed)
                result[keyword] = packed
        return {keyword: result[keyword] for keyword in normalized}

    def _split_cached(self, normalized: List[str], materialize: bool
                      ) -> Tuple[Dict[str, Sequence[DeweyCode]], List[str]]:
        """Partition a query into LRU-answered results and missed keywords."""
        result: Dict[str, Sequence[DeweyCode]] = {}
        missing: List[str] = []
        for keyword in normalized:
            cached = self._lru_get(keyword)
            if cached is not None:
                result[keyword] = list(cached) if materialize else cached
            elif keyword not in missing:
                missing.append(keyword)
        return result, missing

    def _fetch_blob_rows(self, missing: Sequence[str]
                         ) -> Dict[str, PackedDeweyList]:
        """Rebuilt packed columns per keyword, one chunked ``IN`` batch."""
        fetched: Dict[str, PackedDeweyList] = {}
        blob_bytes = 0
        for chunk in _chunked(missing):
            placeholders = ",".join("?" for _ in chunk)
            cursor = self.store._connection.execute(
                f"SELECT keyword, blob FROM posting "
                f"WHERE document = ? AND keyword IN ({placeholders})",
                (self.document, *chunk),
            )
            for keyword, blob in cursor:
                fetched[keyword] = PackedDeweyList.from_blob(blob)
                blob_bytes += len(blob)
        self.bytes_read += blob_bytes
        self.packed_fetches += len(fetched)
        return fetched

    def _fetch_value_rows(self, missing: Sequence[str]
                          ) -> Dict[str, List[Tuple[int, ...]]]:
        """Decoded component tuples per keyword, one chunked ``IN`` batch."""
        rows: Dict[str, List[Tuple[int, ...]]] = {}
        for chunk in _chunked(missing):
            placeholders = ",".join("?" for _ in chunk)
            cursor = self.store._connection.execute(
                f"SELECT DISTINCT keyword, dewey FROM value "
                f"WHERE document = ? AND keyword IN ({placeholders}) "
                f"ORDER BY keyword, dewey",
                (self.document, *chunk),
            )
            for keyword, dewey_text in cursor:
                rows.setdefault(keyword, []).append(decode_dewey(dewey_text))
        self.fallback_fetches += len(rows)
        return rows

    def prefetch_nodes(self, nodes: Iterable[DeweyCode],
                       keyword_nodes: Iterable[DeweyCode]) -> None:
        """Batch-fetch missing node labels and keyword-node word sets.

        One chunked ``IN (...)`` statement per cache instead of one statement
        per node; absent codes are cached negatively so shards that do not
        own a node answer later lookups without touching sqlite.
        """
        self._check_document()
        missing_labels = [dewey for dewey in nodes if dewey not in self._labels]
        for chunk in _chunked(missing_labels):
            encoded = {encode_dewey(dewey.components): dewey for dewey in chunk}
            placeholders = ",".join("?" for _ in encoded)
            cursor = self.store._connection.execute(
                f"SELECT dewey, label FROM element "
                f"WHERE document = ? AND dewey IN ({placeholders})",
                (self.document, *encoded),
            )
            found = {}
            for dewey_text, label in cursor:
                found[dewey_text] = label
            for dewey_text, dewey in encoded.items():
                self._cache_node(self._labels, dewey, found.get(dewey_text))
        missing_words = [dewey for dewey in keyword_nodes
                         if dewey not in self._words]
        for chunk in _chunked(missing_words):
            encoded = {encode_dewey(dewey.components): dewey for dewey in chunk}
            placeholders = ",".join("?" for _ in encoded)
            cursor = self.store._connection.execute(
                f"SELECT DISTINCT dewey, keyword FROM value "
                f"WHERE document = ? AND dewey IN ({placeholders})",
                (self.document, *encoded),
            )
            words: Dict[str, set] = {}
            for dewey_text, keyword in cursor:
                words.setdefault(dewey_text, set()).add(keyword)
            for dewey_text, dewey in encoded.items():
                self._cache_node(self._words, dewey,
                                 frozenset(words.get(dewey_text, ())))


class ShardedPostingSource:
    """One logical document fanned out over N posting sources.

    Every shard holds a disjoint subset of the document's nodes (partitioned
    by Dewey code), so a keyword's full posting list is the merge-sort of the
    per-shard lists.  Node lookups are routed by asking each shard in turn —
    exactly one owns any given node.
    """

    def __init__(self, shards: Sequence, routed: bool = False):
        if not shards:
            raise ValueError("ShardedPostingSource needs at least one shard")
        self.shards = tuple(shards)
        self.tokenizer = self.shards[0].tokenizer
        # When the shard order matches the shard_of() partition (true for
        # from_tree / shard_stores ingestion), node lookups go straight to
        # the owning shard instead of probing all of them.
        self.routed = routed
        # Packed only when every shard serves packed columns: the per-shard
        # cursors are then merge-sorted flat (merge_packed) with no decoding.
        self.representation = (
            "packed" if all(getattr(shard, "representation", "object") == "packed"
                            for shard in self.shards) else "object")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tree(cls, tree: XMLTree, shard_count: int = 2, name: str = "",
                  store_factory=SQLiteStore,
                  lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                  representation: str = "packed") -> "ShardedPostingSource":
        """Shred ``tree`` once and distribute it over ``shard_count`` stores."""
        if shard_count < 1:
            raise ValueError(f"shard_count must be positive, got {shard_count}")
        document = name or tree.name or "document"
        stores = [store_factory() for _ in range(shard_count)]
        shard_stores(tree, stores, document)
        sources = [source_for_store(store, document, lru_size, representation)
                   for store in stores]
        return cls(sources, routed=True)

    # ------------------------------------------------------------------ #
    # PostingSource protocol
    # ------------------------------------------------------------------ #
    @property
    def source_id(self) -> str:
        """Composite identity of all shards."""
        inner = ",".join(shard.source_id for shard in self.shards)
        return f"sharded[{inner}]"

    def _missing_everywhere(self) -> DocumentNotFound:
        """The error for a document no shard knows.

        A shard whose partition came out empty legitimately lacks the
        document, so per-shard :class:`DocumentNotFound` is tolerated — but
        when *every* shard lacks it the name is wrong (or the document was
        dropped), and answering with silent empties would mask that.
        """
        document = getattr(self.shards[0], "document", "document")
        return DocumentNotFound(
            f"no shard holds a document named {document!r}")

    def _merge_shard_lists(self, lists: Sequence[Sequence[DeweyCode]]
                           ) -> Sequence[DeweyCode]:
        """Merge per-shard posting lists, staying packed when they all are."""
        packed = all_packed(lists)
        if packed is not None:
            return merge_packed(packed)
        return _merge_sorted(lists)

    def postings(self, keyword: str) -> PostingList:
        """Merge-sorted posting list of one keyword across all shards."""
        normalized = self.tokenizer.normalize_keyword(keyword)
        lists: List[Sequence[DeweyCode]] = []
        found = False
        for shard in self.shards:
            try:
                lists.append(shard.postings(normalized).deweys)
                found = True
            except DocumentNotFound:
                continue  # a shard whose partition was empty holds no rows
        if not found:
            raise self._missing_everywhere()
        merged = self._merge_shard_lists(lists)
        if not isinstance(merged, PackedDeweyList):
            merged = tuple(merged)
        return PostingList(normalized, merged)

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, Sequence[DeweyCode]]:
        """Per-shard (batched) fetches, merge-sorted keyword by keyword."""
        normalized = self.tokenizer.normalize_query(query)
        per_shard: List[Dict[str, Sequence[DeweyCode]]] = []
        for shard in self.shards:
            try:
                per_shard.append(shard.keyword_nodes(normalized))
            except DocumentNotFound:
                continue
        if not per_shard:
            raise self._missing_everywhere()
        empty: Sequence[DeweyCode] = (
            EMPTY_PACKED if self.representation == "packed" else [])
        return {
            keyword: self._merge_shard_lists(
                [lists.get(keyword, empty) for lists in per_shard])
            for keyword in normalized
        }

    def read_stats(self) -> Dict[str, int]:
        """Summed read counters of every shard that exposes them."""
        totals: Dict[str, int] = {}
        for shard in self.shards:
            stats_fn = getattr(shard, "read_stats", None)
            if stats_fn is None:
                continue
            for key, value in stats_fn().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def frequency(self, keyword: str) -> int:
        """Number of keyword nodes containing ``keyword`` across all shards.

        Shards partition the node set, so the per-shard counts simply add up
        — no posting list is decoded or merged for a count.
        """
        total = 0
        found = False
        for shard in self.shards:
            try:
                total += shard.frequency(keyword)
                found = True
            except DocumentNotFound:
                continue
        if not found:
            raise self._missing_everywhere()
        return total

    def impact(self, keyword: str) -> KeywordImpact:
        """Combined impact across shards.

        Shards partition the node set, so counts add and the deepest level
        is the per-shard maximum.
        """
        from ..index.source import keyword_impact as _impact_of
        count = 0
        max_depth = 0
        found = False
        for shard in self.shards:
            try:
                impact = _impact_of(shard, keyword)
                found = True
            except DocumentNotFound:
                continue
            count += impact.count
            if impact.count:
                max_depth = max(max_depth, impact.max_depth)
        if not found:
            raise self._missing_everywhere()
        if not count:
            return EMPTY_IMPACT
        return KeywordImpact(count=count, max_depth=max_depth)

    def vocabulary(self) -> List[str]:
        """Sorted union of the shards' vocabularies."""
        words = set()
        found = False
        for shard in self.shards:
            try:
                words.update(shard.vocabulary())
                found = True
            except DocumentNotFound:
                continue
        if not found:
            raise self._missing_everywhere()
        return sorted(words)

    def _owner(self, dewey: DeweyCode):
        """The shard that owns ``dewey`` under routed ingestion, else None."""
        if not self.routed:
            return None
        return self.shards[shard_of(encode_dewey(dewey.components),
                                    len(self.shards))]

    def node_label(self, dewey: DeweyCode) -> Optional[str]:
        """The label of one node, from the shard that owns it."""
        owner = self._owner(dewey)
        candidates = (owner,) if owner is not None else self.shards
        for shard in candidates:
            try:
                label = shard.node_label(dewey)
            except DocumentNotFound:
                continue
            if label is not None:
                return label
        return None

    def node_words(self, dewey: DeweyCode) -> FrozenSet[str]:
        """The content word set of one node, from the shard that owns it."""
        owner = self._owner(dewey)
        candidates = (owner,) if owner is not None else self.shards
        for shard in candidates:
            try:
                words = shard.node_words(dewey)
            except DocumentNotFound:
                continue
            if words:
                return words
        return frozenset()

    def prefetch_nodes(self, nodes: Iterable[DeweyCode],
                       keyword_nodes: Iterable[DeweyCode]) -> None:
        """Let every shard batch-fetch the subset of nodes it owns."""
        nodes = list(nodes)
        keyword_nodes = list(keyword_nodes)
        if self.routed:
            # Bucket each node by its owner once (one encode+crc32 per node)
            # rather than re-testing every node against every shard.
            count = len(self.shards)
            node_buckets: List[List[DeweyCode]] = [[] for _ in self.shards]
            keyword_buckets: List[List[DeweyCode]] = [[] for _ in self.shards]
            for dewey in nodes:
                node_buckets[shard_of(encode_dewey(dewey.components),
                                      count)].append(dewey)
            for dewey in keyword_nodes:
                keyword_buckets[shard_of(encode_dewey(dewey.components),
                                         count)].append(dewey)
        for index, shard in enumerate(self.shards):
            prefetch = getattr(shard, "prefetch_nodes", None)
            if prefetch is None:
                continue
            if self.routed:
                owned_nodes = node_buckets[index]
                owned_keyword_nodes = keyword_buckets[index]
                if not owned_nodes and not owned_keyword_nodes:
                    continue
            else:
                owned_nodes, owned_keyword_nodes = nodes, keyword_nodes
            try:
                prefetch(owned_nodes, owned_keyword_nodes)
            except DocumentNotFound:
                continue

    def __repr__(self) -> str:
        return f"ShardedPostingSource(shards={len(self.shards)})"


# ---------------------------------------------------------------------- #
# Sharding / adapter helpers
# ---------------------------------------------------------------------- #
def _chunked(items: Sequence[DeweyCode],
             size: int = _IN_CHUNK) -> Iterable[Sequence[DeweyCode]]:
    """Split a sequence into ``IN (...)``-sized chunks."""
    for start in range(0, len(items), size):
        yield items[start:start + size]


def _merge_sorted(lists: Sequence[Sequence[DeweyCode]]) -> List[DeweyCode]:
    """K-way merge of sorted, internally-duplicate-free Dewey lists."""
    merged: List[DeweyCode] = []
    previous: Optional[DeweyCode] = None
    for code in _heap_merge(*lists):
        if code != previous:
            merged.append(code)
            previous = code
    return merged


def source_for_store(store, document: str,
                     lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                     representation: str = "packed") -> StorePostingSource:
    """The most specific posting source for a store backend."""
    # Local import: segments.py builds on this module's classes.
    from .segments import SegmentedPostingSource, SegmentedStore
    if isinstance(store, SegmentedStore):
        return SegmentedPostingSource(store, document, lru_size,
                                      representation=representation)
    if isinstance(store, SQLiteStore):
        return SQLitePostingSource(store, document, lru_size,
                                   representation=representation)
    return StorePostingSource(store, document, lru_size,
                              representation=representation)


def shard_of(dewey_text: str, shard_count: int) -> int:
    """Deterministic shard routing of one encoded Dewey code."""
    return zlib.crc32(dewey_text.encode("ascii")) % shard_count


def shard_shredded(shredded: ShreddedDocument,
                   shard_count: int) -> List[ShreddedDocument]:
    """Partition one shredded document into per-shard row subsets.

    Element and value rows are routed by their (shared) encoded Dewey code so
    every node's rows land on exactly one shard; the label table is small and
    replicated to every shard.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    elements: List[List] = [[] for _ in range(shard_count)]
    values: List[List] = [[] for _ in range(shard_count)]
    for row in shredded.elements:
        elements[shard_of(row.dewey, shard_count)].append(row)
    for row in shredded.values:
        values[shard_of(row.dewey, shard_count)].append(row)
    return [
        ShreddedDocument(name=shredded.name, labels=shredded.labels,
                         elements=tuple(elements[index]),
                         values=tuple(values[index]))
        for index in range(shard_count)
    ]


def shard_stores(tree: XMLTree, stores: Sequence, name: str = "") -> str:
    """Shred ``tree`` once and store one partition per backend in ``stores``.

    Returns the stored document name.  A shard whose partition came out empty
    may not register the document at all (the sqlite backend has no rows to
    remember it by); :class:`ShardedPostingSource` treats such shards as
    holding zero postings.
    """
    if not stores:
        raise ValueError("shard_stores needs at least one store")
    document = name or tree.name or "document"
    shredded = shred_tree(tree, document, stores[0].tokenizer)
    for store, partition in zip(stores, shard_shredded(shredded, len(stores))):
        store.store_shredded(partition)
    return document
