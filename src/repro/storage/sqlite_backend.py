"""sqlite3 backend for the shredded relational store.

Plays the role of the PostgreSQL 8.2 instance of Section 5.2 (substitution
documented in DESIGN.md): documents are shredded into the ``label`` /
``element`` / ``value`` tables and keyword-node retrieval is a SQL query
against the ``value`` table.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..index.packed import PackedDeweyList
from ..index.source import EMPTY_IMPACT, KeywordImpact, impact_from_postings
from ..text import DEFAULT_TOKENIZER, Tokenizer
from ..xmltree import DeweyCode, XMLTree
from .errors import DocumentAlreadyStored, DocumentNotFound
from .schema import (
    CREATE_TABLES_SQL,
    UNKNOWN_MAX_DEPTH,
    decode_dewey,
    encode_dewey,
    ensure_impact_columns,
)
from .shredder import ShreddedDocument, packed_posting_rows, shred_tree


#: Distinguishes the shared-cache URIs of concurrently-alive ``:memory:``
#: stores, so two stores never alias one in-process database.
_MEMORY_DB_COUNTER = itertools.count()


class SQLiteStore:
    """sqlite3-backed implementation of the shredded document store.

    Parameters
    ----------
    path:
        Database file path, or ``":memory:"`` (default) for an in-process
        database.
    tokenizer:
        Tokenizer shared with the query side.

    Thread use
    ----------
    The store is safe to share across threads: every thread lazily opens its
    **own** connection to the database (``:memory:`` stores become unique
    shared-cache URIs so all threads still see one database).  This is what
    lets the concurrent serving layer (:mod:`repro.service`) run one worker
    pool over a single store — disk reads genuinely parallelize, with no
    cross-thread cursor sharing.  Ingestion (:meth:`store_tree` /
    :meth:`drop_document`) is not synchronized against concurrent readers;
    the serving layer treats a stored document as an immutable snapshot.
    """

    def __init__(self, path: Union[str, Path] = ":memory:",
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        self.path = str(path)
        self.tokenizer = tokenizer
        if self.path == ":memory:":
            self._uri = (f"file:repro-mem-{next(_MEMORY_DB_COUNTER)}"
                         f"?mode=memory&cache=shared")
        else:
            self._uri = None
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self._closed = False
        self._fault_plan = None  # set via set_fault_plan (chaos testing)
        # The constructing thread's connection doubles as the anchor that
        # keeps a shared in-memory database alive until close().
        self._connection.commit()

    def set_fault_plan(self, plan) -> None:
        """Install a :class:`repro.faults.FaultPlan` on the storage seam.

        Every connection opened after this call is wrapped so each
        statement consults the plan (injected ``OperationalError``\\ s and
        latency spikes).  The calling thread's cached connection is
        dropped so it too reopens wrapped; install the plan before
        serving traffic — connections already opened by *other* threads
        stay unwrapped.
        """
        self._fault_plan = plan
        self._local = threading.local()

    @property
    def _connection(self) -> sqlite3.Connection:
        """This thread's connection, opened (with the schema) on first use."""
        if self._closed:
            raise sqlite3.ProgrammingError(
                "Cannot operate on a closed SQLiteStore")
        connection = getattr(self._local, "connection", None)
        if connection is None:
            if self._uri is not None:
                connection = sqlite3.connect(self._uri, uri=True,
                                             check_same_thread=False)
            else:
                connection = sqlite3.connect(self.path,
                                             check_same_thread=False)
            connection.execute("PRAGMA journal_mode = MEMORY")
            for statement in CREATE_TABLES_SQL:
                connection.execute(statement)
            # Legacy files predate the impact column; grow it in place.
            ensure_impact_columns(connection)
            connection.commit()
            with self._connections_lock:
                self._connections.append(connection)
            if self._fault_plan is not None:
                connection = self._fault_plan.wrap(connection)
            self._local.connection = connection
        return connection

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every thread's connection; further use raises (loudly)."""
        self._closed = True
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()
        self._local = threading.local()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def store_tree(self, tree: XMLTree, name: str = "") -> ShreddedDocument:
        """Shred and store one document; returns the shredded rows."""
        shredded = shred_tree(tree, name, self.tokenizer)
        return self.store_shredded(shredded)

    def store_shredded(self, shredded: ShreddedDocument) -> ShreddedDocument:
        """Insert already-shredded rows."""
        if shredded.name in self.documents():
            raise DocumentAlreadyStored(f"document {shredded.name!r} already stored")
        cursor = self._connection.cursor()
        cursor.executemany(
            "INSERT INTO label (document, label, id) VALUES (?, ?, ?)",
            [(shredded.name, row.label, row.label_id) for row in shredded.labels],
        )
        cursor.executemany(
            "INSERT INTO element (document, label, dewey, level, "
            "label_number_sequence, content_feature_min, content_feature_max) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            [(shredded.name, row.label, row.dewey, row.level,
              row.label_number_sequence, row.content_feature_min,
              row.content_feature_max) for row in shredded.elements],
        )
        cursor.executemany(
            "INSERT INTO value (document, label, dewey, attribute, keyword) "
            "VALUES (?, ?, ?, ?, ?)",
            [(shredded.name, row.label, row.dewey, row.attribute, row.keyword)
             for row in shredded.values],
        )
        cursor.executemany(
            "INSERT INTO posting (document, keyword, cardinality, blob, "
            "max_depth) VALUES (?, ?, ?, ?, ?)",
            [(shredded.name, keyword, cardinality, blob, max_depth)
             for keyword, cardinality, blob, max_depth
             in packed_posting_rows(shredded)],
        )
        self._connection.commit()
        return shredded

    def drop_document(self, name: str) -> None:
        """Delete all rows of one document."""
        self._require(name)
        cursor = self._connection.cursor()
        for table in ("label", "element", "value", "posting"):
            cursor.execute(f"DELETE FROM {table} WHERE document = ?", (name,))
        self._connection.commit()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def documents(self) -> List[str]:
        """Names of the stored documents."""
        rows = self._connection.execute(
            "SELECT DISTINCT document FROM element ORDER BY document"
        ).fetchall()
        return [row[0] for row in rows]

    def document_stats(self, name: str) -> Dict[str, int]:
        """Node / value / label counts of one document."""
        self._require(name)
        nodes = self._scalar("SELECT COUNT(*) FROM element WHERE document = ?", name)
        values = self._scalar("SELECT COUNT(*) FROM value WHERE document = ?", name)
        labels = self._scalar("SELECT COUNT(*) FROM label WHERE document = ?", name)
        return {"nodes": nodes, "values": values, "labels": labels}

    def keyword_deweys(self, name: str, keyword: str) -> List[DeweyCode]:
        """Sorted Dewey codes of the nodes containing ``keyword``.

        Rows are decoded while streaming off the cursor, so a frequent
        keyword's posting list never exists as both an undecoded row list and
        a decoded Dewey list at the same time.
        """
        self._require(name)
        normalized = self.tokenizer.normalize_keyword(keyword)
        cursor = self._connection.execute(
            "SELECT DISTINCT dewey FROM value WHERE document = ? AND keyword = ? "
            "ORDER BY dewey",
            (name, normalized),
        )
        return [DeweyCode(decode_dewey(text)) for (text,) in cursor]

    def has_packed_postings(self, name: str) -> bool:
        """Whether the document was ingested with packed posting blobs.

        Database files written before the ``posting`` table existed answer
        ``False``; the posting sources then fall back to per-row decoding.
        """
        return bool(self._scalar(
            "SELECT COUNT(*) FROM posting WHERE document = ?", name))

    def keyword_packed(self, name: str,
                       keyword: str) -> Optional[PackedDeweyList]:
        """The packed posting columns of one keyword, or ``None``.

        ``None`` means "no blob stored" — either the keyword is absent or the
        document predates packed ingestion; callers disambiguate with
        :meth:`has_packed_postings`.
        """
        self._require(name)
        normalized = self.tokenizer.normalize_keyword(keyword)
        row = self._connection.execute(
            "SELECT blob FROM posting WHERE document = ? AND keyword = ?",
            (name, normalized),
        ).fetchone()
        return PackedDeweyList.from_blob(row[0]) if row else None

    def keyword_impact(self, name: str, keyword: str) -> KeywordImpact:
        """Posting count + deepest node level of one keyword.

        Served straight from the shred-time ``posting`` row when the impact
        column carries a real value; rows predating the column (``max_depth
        == -1``) and documents predating packed ingestion fall back to a
        value-table scan, so legacy files stay rankable without a rewrite.
        """
        self._require(name)
        normalized = self.tokenizer.normalize_keyword(keyword)
        row = self._connection.execute(
            "SELECT cardinality, max_depth FROM posting "
            "WHERE document = ? AND keyword = ?",
            (name, normalized),
        ).fetchone()
        if row is not None and int(row[1]) != UNKNOWN_MAX_DEPTH:
            return KeywordImpact(count=int(row[0]), max_depth=int(row[1]))
        if row is None and self.has_packed_postings(name):
            # Packed-era document, keyword simply absent.
            return EMPTY_IMPACT
        return impact_from_postings(self.keyword_deweys(name, normalized))

    def keyword_nodes(self, name: str, keywords: Iterable[str]
                      ) -> Dict[str, List[DeweyCode]]:
        """The ``D_i`` posting lists for a whole query."""
        result: Dict[str, List[DeweyCode]] = {}
        for keyword in self.tokenizer.normalize_query(keywords):
            result[keyword] = self.keyword_deweys(name, keyword)
        return result

    def keyword_frequency(self, name: str, keyword: str) -> int:
        """Number of nodes containing ``keyword``."""
        self._require(name)
        normalized = self.tokenizer.normalize_keyword(keyword)
        return self._scalar(
            "SELECT COUNT(DISTINCT dewey) FROM value "
            "WHERE document = ? AND keyword = ?",
            name, normalized,
        )

    def vocabulary(self, name: str) -> List[str]:
        """Every distinct keyword of one document, sorted."""
        self._require(name)
        cursor = self._connection.execute(
            "SELECT DISTINCT keyword FROM value WHERE document = ? "
            "ORDER BY keyword",
            (name,),
        )
        return [keyword for (keyword,) in cursor]

    def node_words(self, name: str, dewey: DeweyCode) -> frozenset:
        """The content word set of one node (empty when the code is absent)."""
        self._require(name)
        cursor = self._connection.execute(
            "SELECT DISTINCT keyword FROM value WHERE document = ? AND dewey = ?",
            (name, encode_dewey(dewey.components)),
        )
        return frozenset(keyword for (keyword,) in cursor)

    def label_of(self, name: str, dewey: DeweyCode) -> Optional[str]:
        """The label of one node, or ``None`` if absent."""
        self._require(name)
        row = self._connection.execute(
            "SELECT label FROM element WHERE document = ? AND dewey = ?",
            (name, encode_dewey(dewey.components)),
        ).fetchone()
        return row[0] if row else None

    def labels(self, name: str) -> List[str]:
        """The distinct labels of one document."""
        self._require(name)
        rows = self._connection.execute(
            "SELECT label FROM label WHERE document = ? ORDER BY label", (name,)
        ).fetchall()
        return [row[0] for row in rows]

    def label_number_sequence(self, name: str, dewey: DeweyCode) -> Optional[str]:
        """The stored ancestor-label-number path of one node."""
        self._require(name)
        row = self._connection.execute(
            "SELECT label_number_sequence FROM element "
            "WHERE document = ? AND dewey = ?",
            (name, encode_dewey(dewey.components)),
        ).fetchone()
        return row[0] if row else None

    # ------------------------------------------------------------------ #
    def _scalar(self, sql: str, *params) -> int:
        row = self._connection.execute(sql, params).fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    def _require(self, name: str) -> None:
        exists = self._scalar(
            "SELECT COUNT(*) FROM element WHERE document = ?", name
        )
        if not exists:
            raise DocumentNotFound(f"no stored document named {name!r}")
