"""Exception types raised by the relational storage substrate."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for errors raised by :mod:`repro.storage`."""


class DocumentNotFound(StorageError):
    """Raised when a document name is not present in the store."""


class DocumentAlreadyStored(StorageError):
    """Raised when shredding a document under an already-used name."""
