"""Relational shredding store: the Section 5.2 schema on sqlite3 / in-memory."""

from .errors import DocumentAlreadyStored, DocumentNotFound, StorageError
from .schema import (
    CREATE_TABLES_SQL,
    ElementRow,
    LabelRow,
    ValueRow,
    decode_dewey,
    encode_dewey,
)
from .shredder import ShreddedDocument, packed_posting_rows, shred_tree
from .memory_backend import MemoryStore
from .sqlite_backend import SQLiteStore
from .segments import (
    BASE_GENERATION,
    SEGMENT_KIND_DOC,
    SEGMENT_KIND_TOMBSTONE,
    SegmentedPostingSource,
    SegmentedStore,
)
from .posting_source import (
    DEFAULT_POSTING_LRU_SIZE,
    ShardedPostingSource,
    SQLitePostingSource,
    StorePostingSource,
    shard_of,
    shard_shredded,
    shard_stores,
    source_for_store,
)
from .query import StoredDocumentSearch, StoreQuerySession, agreement_with_index
from .verify import IntegrityFinding, IntegrityReport, verify_database

__all__ = [
    "StorageError",
    "DocumentNotFound",
    "DocumentAlreadyStored",
    "LabelRow",
    "ElementRow",
    "ValueRow",
    "CREATE_TABLES_SQL",
    "encode_dewey",
    "decode_dewey",
    "ShreddedDocument",
    "packed_posting_rows",
    "shred_tree",
    "MemoryStore",
    "SQLiteStore",
    "SegmentedStore",
    "SegmentedPostingSource",
    "BASE_GENERATION",
    "SEGMENT_KIND_DOC",
    "SEGMENT_KIND_TOMBSTONE",
    "StorePostingSource",
    "SQLitePostingSource",
    "ShardedPostingSource",
    "DEFAULT_POSTING_LRU_SIZE",
    "source_for_store",
    "shard_of",
    "shard_shredded",
    "shard_stores",
    "StoredDocumentSearch",
    "StoreQuerySession",
    "agreement_with_index",
    "IntegrityFinding",
    "IntegrityReport",
    "verify_database",
]
