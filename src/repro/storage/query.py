"""Deprecated store-backed search entry point.

The store-backed retrieval flow of the paper's Section 5 used to live here as
a parallel, one-off copy of pipeline stages 2–4.  That duplicate path is gone:
:class:`~repro.core.engine.SearchEngine` now accepts any
:class:`~repro.index.source.PostingSource`, and the store adapters in
:mod:`repro.storage.posting_source` put both store backends behind that seam.

:class:`StoredDocumentSearch` (historically also referred to as the "store
query session") remains importable as a thin deprecation shim over the new
engine path: construct a :class:`SearchEngine` with
``source=source_for_store(store, name)`` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Dict, List, Optional, Union

from ..core import ALGORITHM_NAMES, Query, QueryLike, SearchEngine, SearchResult
from ..index import InvertedIndex
from ..text import ContentAnalyzer
from ..xmltree import DeweyCode, XMLTree
from .memory_backend import MemoryStore
from .posting_source import source_for_store
from .sqlite_backend import SQLiteStore

StoreBackend = Union[MemoryStore, SQLiteStore]

_DEPRECATION_EMITTED = False


def _warn_once() -> None:
    global _DEPRECATION_EMITTED
    if not _DEPRECATION_EMITTED:
        _DEPRECATION_EMITTED = True
        warnings.warn(
            "StoredDocumentSearch is deprecated; build a SearchEngine with "
            "source=repro.storage.source_for_store(store, name) instead",
            DeprecationWarning,
            stacklevel=3,
        )


class StoredDocumentSearch:
    """Deprecated shim: XKS over a store backend, via the unified engine.

    Stage 1 (``getKeywordNodes``) is served by the store's posting source and
    stages 2–4 by the shared :class:`SearchEngine` pipeline — the previous
    hand-rolled copy of those stages is gone.  Results keep the historical
    ``<algorithm>@store`` tag.
    """

    def __init__(self, tree: XMLTree, store: Optional[StoreBackend] = None,
                 name: str = "", cid_mode: str = "minmax"):
        _warn_once()
        self.tree = tree
        self.name = name or tree.name or "document"
        self.store: StoreBackend = store if store is not None else MemoryStore()
        if self.name not in self.store.documents():
            self.store.store_tree(tree, self.name)
        self.analyzer = ContentAnalyzer(tree)
        self.cid_mode = cid_mode
        self._engine = SearchEngine(
            tree, cid_mode=cid_mode,
            source=source_for_store(self.store, self.name))

    # ------------------------------------------------------------------ #
    def keyword_nodes(self, query: QueryLike) -> Dict[str, List[DeweyCode]]:
        """Stage 1 served by the relational store (SQL on the value table)."""
        return self._engine.keyword_nodes(Query.parse(query))

    def search(self, query: QueryLike, algorithm: str = "validrtf") -> SearchResult:
        """Stages 2–4 on the store-provided posting lists."""
        if algorithm not in ALGORITHM_NAMES:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        result = self._engine.search(query, algorithm)
        return replace(result, algorithm=f"{algorithm}@store")

    def frequency_report(self, keywords) -> Dict[str, int]:
        """Keyword frequencies as seen by the store (Section 5.1 table)."""
        return {keyword: self.store.keyword_frequency(self.name, keyword)
                for keyword in keywords}


#: Alias kept for callers that knew the shim under its session name.
StoreQuerySession = StoredDocumentSearch


def agreement_with_index(tree: XMLTree, store: StoreBackend, name: str,
                         keywords) -> Dict[str, bool]:
    """Check that store-backed posting lists equal the inverted-index ones.

    The backend-parity suite exposes this as the ``store_agreement`` fixture;
    the function form stays for scripts and older tests.
    """
    index = InvertedIndex(tree)
    agreement: Dict[str, bool] = {}
    for keyword in keywords:
        from_store = store.keyword_deweys(name, keyword)
        from_index = list(index.postings(keyword).deweys)
        agreement[keyword] = from_store == from_index
    return agreement
