"""Running the XKS pipeline on top of the relational store.

The paper retrieves keyword nodes with SQL against the shredded ``value``
table and only then runs MaxMatch / ValidRTF on the returned Dewey codes.
:class:`StoredDocumentSearch` reproduces that flow: stage 1
(``getKeywordNodes``) is served by a store backend, stages 2–4 run on the
in-memory tree.  It also lets the test suite check that the store-backed
posting lists agree with the in-memory inverted index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..core import (
    MaxMatch,
    PrunedFragment,
    Query,
    QueryLike,
    SearchResult,
    ValidRTF,
    build_record_tree,
    build_rtfs,
    prune_with_contributor,
    prune_with_valid_contributor,
)
from ..core.pipeline import elca_roots
from ..index import InvertedIndex
from ..lca import elca_is_slca
from ..text import ContentAnalyzer
from ..xmltree import DeweyCode, XMLTree
from .memory_backend import MemoryStore
from .sqlite_backend import SQLiteStore

StoreBackend = Union[MemoryStore, SQLiteStore]


class StoredDocumentSearch:
    """XKS over a document whose keyword lookups run against a store backend."""

    def __init__(self, tree: XMLTree, store: Optional[StoreBackend] = None,
                 name: str = "", cid_mode: str = "minmax"):
        self.tree = tree
        self.name = name or tree.name or "document"
        self.store: StoreBackend = store if store is not None else MemoryStore()
        if self.name not in self.store.documents():
            self.store.store_tree(tree, self.name)
        self.analyzer = ContentAnalyzer(tree)
        self.cid_mode = cid_mode

    # ------------------------------------------------------------------ #
    def keyword_nodes(self, query: QueryLike) -> Dict[str, List[DeweyCode]]:
        """Stage 1 served by the relational store (SQL on the value table)."""
        parsed = Query.parse(query)
        return self.store.keyword_nodes(self.name, parsed.keywords)

    def search(self, query: QueryLike, algorithm: str = "validrtf") -> SearchResult:
        """Stages 2–4 on the store-provided posting lists."""
        parsed = Query.parse(query)
        lists = self.keyword_nodes(parsed)
        roots = elca_roots(lists)
        fragments: List[PrunedFragment] = []
        if roots:
            flags = elca_is_slca(roots)
            for fragment in build_rtfs(self.tree, parsed, roots, lists, flags):
                records = build_record_tree(self.tree, self.analyzer, parsed,
                                            fragment, cid_mode=self.cid_mode)
                if algorithm == "validrtf":
                    fragments.append(prune_with_valid_contributor(records))
                elif algorithm == "maxmatch":
                    fragments.append(prune_with_contributor(records))
                else:
                    raise ValueError(f"unknown algorithm {algorithm!r}")
        return SearchResult(query=parsed, algorithm=f"{algorithm}@store",
                            fragments=tuple(fragments), lca_nodes=tuple(roots))

    def frequency_report(self, keywords) -> Dict[str, int]:
        """Keyword frequencies as seen by the store (Section 5.1 table)."""
        return {keyword: self.store.keyword_frequency(self.name, keyword)
                for keyword in keywords}


def agreement_with_index(tree: XMLTree, store: StoreBackend, name: str,
                         keywords) -> Dict[str, bool]:
    """Check that store-backed posting lists equal the inverted-index ones."""
    index = InvertedIndex(tree)
    agreement: Dict[str, bool] = {}
    for keyword in keywords:
        from_store = store.keyword_deweys(name, keyword)
        from_index = list(index.postings(keyword).deweys)
        agreement[keyword] = from_store == from_index
    return agreement
