"""Pure-Python in-memory backend for the shredded relational store.

The in-memory backend keeps the three tables as dictionaries and serves the
same query interface as the sqlite backend; it is the default for tests and
small documents, and its behaviour is property-checked against the sqlite
backend in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..index.source import KeywordImpact, impact_from_postings
from ..text import DEFAULT_TOKENIZER, Tokenizer
from ..xmltree import DeweyCode, XMLTree
from .errors import DocumentAlreadyStored, DocumentNotFound
from .schema import decode_dewey, encode_dewey
from .shredder import ShreddedDocument, shred_tree


class MemoryStore:
    """In-memory implementation of the shredded document store."""

    def __init__(self, tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        self.tokenizer = tokenizer
        self._documents: Dict[str, ShreddedDocument] = {}
        self._keyword_index: Dict[Tuple[str, str], List[str]] = {}
        self._node_words: Dict[str, Dict[str, set]] = {}
        self._labels: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def store_tree(self, tree: XMLTree, name: str = "") -> ShreddedDocument:
        """Shred and store one document; returns the shredded rows."""
        shredded = shred_tree(tree, name, self.tokenizer)
        return self.store_shredded(shredded)

    def store_shredded(self, shredded: ShreddedDocument) -> ShreddedDocument:
        """Store already-shredded rows."""
        if shredded.name in self._documents:
            raise DocumentAlreadyStored(f"document {shredded.name!r} already stored")
        self._documents[shredded.name] = shredded
        for row in shredded.values:
            key = (shredded.name, row.keyword)
            self._keyword_index.setdefault(key, []).append(row.dewey)
        for postings in self._keyword_index.values():
            postings.sort()
        return shredded

    def drop_document(self, name: str) -> None:
        """Remove one document and its index entries."""
        self._require(name)
        del self._documents[name]
        self._node_words.pop(name, None)
        self._labels.pop(name, None)
        for key in [key for key in self._keyword_index if key[0] == name]:
            del self._keyword_index[key]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def documents(self) -> List[str]:
        """Names of the stored documents."""
        return sorted(self._documents)

    def document_stats(self, name: str) -> Dict[str, int]:
        """Node / value / label counts of one document."""
        shredded = self._require(name)
        return {
            "nodes": shredded.node_count,
            "values": shredded.value_count,
            "labels": len(shredded.labels),
        }

    def keyword_deweys(self, name: str, keyword: str) -> List[DeweyCode]:
        """Sorted Dewey codes of the nodes containing ``keyword``."""
        self._require(name)
        normalized = self.tokenizer.normalize_keyword(keyword)
        encoded = self._keyword_index.get((name, normalized), [])
        unique = sorted(set(encoded))
        return [DeweyCode(decode_dewey(text)) for text in unique]

    def keyword_nodes(self, name: str, keywords: Iterable[str]
                      ) -> Dict[str, List[DeweyCode]]:
        """The ``D_i`` posting lists for a whole query."""
        result: Dict[str, List[DeweyCode]] = {}
        for keyword in self.tokenizer.normalize_query(keywords):
            result[keyword] = self.keyword_deweys(name, keyword)
        return result

    def keyword_frequency(self, name: str, keyword: str) -> int:
        """Number of nodes containing ``keyword``."""
        return len(self.keyword_deweys(name, keyword))

    def keyword_impact(self, name: str, keyword: str) -> KeywordImpact:
        """Posting count + deepest node level of one keyword (lazy).

        The in-memory store keeps no derived metadata, so this is always
        the posting-list fallback — the definition the shred-time sqlite
        column must agree with (enforced by the backend-parity suite).
        """
        return impact_from_postings(self.keyword_deweys(name, keyword))

    def vocabulary(self, name: str) -> List[str]:
        """Every distinct keyword of one document, sorted."""
        shredded = self._require(name)
        return sorted({row.keyword for row in shredded.values})

    def node_words(self, name: str, dewey: DeweyCode) -> frozenset:
        """The content word set of one node (empty when the code is absent)."""
        self._require(name)
        by_dewey = self._node_words.get(name)
        if by_dewey is None:
            by_dewey = {}
            for row in self._documents[name].values:
                by_dewey.setdefault(row.dewey, set()).add(row.keyword)
            self._node_words[name] = by_dewey
        return frozenset(by_dewey.get(encode_dewey(dewey.components), ()))

    def label_of(self, name: str, dewey: DeweyCode) -> Optional[str]:
        """The label of one node, or ``None`` if absent."""
        shredded = self._require(name)
        by_dewey = self._labels.get(name)
        if by_dewey is None:
            by_dewey = {row.dewey: row.label for row in shredded.elements}
            self._labels[name] = by_dewey
        return by_dewey.get(encode_dewey(dewey.components))

    def labels(self, name: str) -> List[str]:
        """The distinct labels of one document."""
        shredded = self._require(name)
        return sorted(row.label for row in shredded.labels)

    def _require(self, name: str) -> ShreddedDocument:
        try:
            return self._documents[name]
        except KeyError:
            raise DocumentNotFound(f"no stored document named {name!r}") from None
