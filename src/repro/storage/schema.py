"""The relational schema the documents are shredded into.

Section 5.2 stores the shredded records in PostgreSQL using three tables:

* ``label (label, id)`` — every distinct element label and its number;
* ``element (label, dewey, level, label_number_sequence, content_feature)`` —
  one row per node, where ``label_number_sequence`` encodes the labels of the
  node's ancestors from the root (used to rebuild ancestor information) and
  ``content_feature`` is the node's cID;
* ``value (label, dewey, attribute, keyword)`` — one row per (node, word)
  pair over the node's label, text and attributes; this is the table keyword
  lookups run against.

This module defines the row dataclasses and the SQL DDL shared by the sqlite
and in-memory backends (the PostgreSQL → sqlite substitution is documented in
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class LabelRow:
    """One row of the ``label`` table."""

    label: str
    label_id: int


@dataclass(frozen=True)
class ElementRow:
    """One row of the ``element`` table."""

    document: str
    label: str
    dewey: str
    level: int
    label_number_sequence: str
    content_feature_min: str
    content_feature_max: str


@dataclass(frozen=True)
class ValueRow:
    """One row of the ``value`` table."""

    document: str
    label: str
    dewey: str
    attribute: str
    keyword: str


#: SQL DDL for the sqlite backend.  The ``document`` column lets one store
#: hold several shredded documents (the paper uses one database per dataset).
CREATE_TABLES_SQL: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS label (
        document TEXT NOT NULL,
        label    TEXT NOT NULL,
        id       INTEGER NOT NULL,
        PRIMARY KEY (document, label)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS element (
        document              TEXT NOT NULL,
        label                 TEXT NOT NULL,
        dewey                 TEXT NOT NULL,
        level                 INTEGER NOT NULL,
        label_number_sequence TEXT NOT NULL,
        content_feature_min   TEXT NOT NULL,
        content_feature_max   TEXT NOT NULL,
        PRIMARY KEY (document, dewey)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS value (
        document  TEXT NOT NULL,
        label     TEXT NOT NULL,
        dewey     TEXT NOT NULL,
        attribute TEXT NOT NULL,
        keyword   TEXT NOT NULL
    )
    """,
    # One packed columnar posting blob per (document, keyword): the
    # prefix-truncated serialization of the keyword's sorted Dewey list
    # (see repro.index.packed).  Loading a posting list becomes one row
    # fetch + one C-speed column rebuild instead of one string decode per
    # posting row.  The value table remains the row-per-(node, word) ground
    # truth; the blob is a derived, ingestion-time artefact.  ``max_depth``
    # is the keyword's impact metadata (deepest Dewey level of its nodes,
    # root = 0) written at shred time; together with ``cardinality`` it lets
    # the corpus ranking derive score upper bounds without reading a single
    # blob.  ``-1`` marks rows written before the column existed — readers
    # recompute lazily from the value table.
    """
    CREATE TABLE IF NOT EXISTS posting (
        document    TEXT NOT NULL,
        keyword     TEXT NOT NULL,
        cardinality INTEGER NOT NULL,
        blob        BLOB NOT NULL,
        max_depth   INTEGER NOT NULL DEFAULT -1,
        PRIMARY KEY (document, keyword)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_value_keyword ON value (document, keyword)",
    "CREATE INDEX IF NOT EXISTS idx_value_dewey ON value (document, dewey)",
    "CREATE INDEX IF NOT EXISTS idx_element_label ON element (document, label)",
    # ------------------------------------------------------------------ #
    # Segmented incremental updates (repro.storage.segments).  The four
    # tables above are the **base generation**; every update/delete lands in
    # an immutable delta segment instead of rewriting base rows.  ``segment``
    # is the catalog: one row per (segment, document) event — kind ``doc``
    # carries a full replacement row set in the ``segment_*`` tables below,
    # kind ``tombstone`` marks the document deleted as of that segment.  A
    # document's live version is decided by its highest-numbered event;
    # ``compact()`` folds live versions into the base tables and clears all
    # five segment tables.  The DDL is idempotent, so any database opened by
    # a segment-aware store is upgraded in place (legacy files simply start
    # with empty segment tables).
    """
    CREATE TABLE IF NOT EXISTS segment (
        segment_id INTEGER NOT NULL,
        document   TEXT NOT NULL,
        kind       TEXT NOT NULL,
        PRIMARY KEY (segment_id, document)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS segment_label (
        segment_id INTEGER NOT NULL,
        document   TEXT NOT NULL,
        label      TEXT NOT NULL,
        id         INTEGER NOT NULL,
        PRIMARY KEY (segment_id, document, label)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS segment_element (
        segment_id            INTEGER NOT NULL,
        document              TEXT NOT NULL,
        label                 TEXT NOT NULL,
        dewey                 TEXT NOT NULL,
        level                 INTEGER NOT NULL,
        label_number_sequence TEXT NOT NULL,
        content_feature_min   TEXT NOT NULL,
        content_feature_max   TEXT NOT NULL,
        PRIMARY KEY (segment_id, document, dewey)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS segment_value (
        segment_id INTEGER NOT NULL,
        document   TEXT NOT NULL,
        label      TEXT NOT NULL,
        dewey      TEXT NOT NULL,
        attribute  TEXT NOT NULL,
        keyword    TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS segment_posting (
        segment_id  INTEGER NOT NULL,
        document    TEXT NOT NULL,
        keyword     TEXT NOT NULL,
        cardinality INTEGER NOT NULL,
        blob        BLOB NOT NULL,
        max_depth   INTEGER NOT NULL DEFAULT -1,
        PRIMARY KEY (segment_id, document, keyword)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_segment_document "
    "ON segment (document, segment_id)",
    "CREATE INDEX IF NOT EXISTS idx_segment_value_keyword "
    "ON segment_value (segment_id, document, keyword)",
    "CREATE INDEX IF NOT EXISTS idx_segment_value_dewey "
    "ON segment_value (segment_id, document, dewey)",
    # ------------------------------------------------------------------ #
    # Crash-safe mutations (repro.storage.segments).  Every journaled
    # mutation (update/delete/compact) writes a ``pending`` intent row in
    # its own transaction *before* touching any data table, and clears it
    # only after the apply transaction commits.  A crash in between leaves
    # the intent behind; startup recovery compares the data tables against
    # the recorded ``expected`` row counts and rolls the mutation back
    # (partial/absent apply) or forward (apply committed, clear lost).
    # Rows carrying an ``idempotency_key`` flip to ``done`` instead of
    # being deleted — they are the replay ledger that makes a retried
    # mutation a no-op.  The DDL is idempotent, so legacy databases grow
    # the journal on first open.
    """
    CREATE TABLE IF NOT EXISTS mutation_journal (
        journal_id      INTEGER PRIMARY KEY AUTOINCREMENT,
        kind            TEXT NOT NULL,
        document        TEXT NOT NULL,
        segment_id      INTEGER NOT NULL,
        expected        TEXT NOT NULL,
        idempotency_key TEXT,
        state           TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_mutation_journal_key "
    "ON mutation_journal (idempotency_key)",
)

#: ``max_depth`` value marking a posting row written before the impact
#: column existed; readers treat it as "unknown" and recompute lazily.
UNKNOWN_MAX_DEPTH = -1

#: Tables carrying the per-keyword impact column (added after the packed
#: posting tables shipped, hence the in-place upgrade below).
IMPACT_COLUMN_TABLES: Tuple[str, ...] = ("posting", "segment_posting")


def ensure_impact_columns(connection) -> None:
    """Grow the ``max_depth`` impact column on legacy database files.

    ``CREATE TABLE IF NOT EXISTS`` never alters an existing table, so files
    written before the impact metadata existed would keep the four-column
    layout forever; this adds the column (defaulted to
    :data:`UNKNOWN_MAX_DEPTH`, i.e. "recompute lazily") the first time such
    a file is opened.  Idempotent and cheap — one ``PRAGMA table_info`` per
    table on every open, ``ALTER TABLE`` only on the first.
    """
    for table in IMPACT_COLUMN_TABLES:
        columns = {row[1] for row in
                   connection.execute(f"PRAGMA table_info({table})")}
        if columns and "max_depth" not in columns:
            connection.execute(
                f"ALTER TABLE {table} ADD COLUMN max_depth INTEGER "
                f"NOT NULL DEFAULT {UNKNOWN_MAX_DEPTH}")


#: Dewey codes are stored as dotted strings; padding each component keeps the
#: lexicographic string order identical to document order for components below
#: this width.
DEWEY_COMPONENT_WIDTH = 6


def encode_dewey(components: Tuple[int, ...]) -> str:
    """Encode Dewey components as a sortable dotted string."""
    return ".".join(f"{component:0{DEWEY_COMPONENT_WIDTH}d}"
                    for component in components)


def decode_dewey(text: str) -> Tuple[int, ...]:
    """Decode the sortable dotted string back into integer components."""
    return tuple(int(piece) for piece in text.split("."))
