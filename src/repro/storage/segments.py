"""Segmented incremental updates: add/update/delete documents without re-shredding.

A :class:`SegmentedStore` is a :class:`~repro.storage.sqlite_backend.SQLiteStore`
whose four classic tables form the **base generation**, plus a Lucene-style
sequence of immutable **delta segments**:

* :meth:`SegmentedStore.update_document` shreds the new document version once
  and writes its complete row set — including the per-keyword packed posting
  blobs of :func:`~repro.storage.shredder.packed_posting_rows` — into the
  ``segment_*`` tables under a fresh, monotonically increasing segment id.
  No base row is rewritten; the previous version is merely *shadowed*.
* :meth:`SegmentedStore.delete_document` appends a **tombstone** event: a
  ``segment`` catalog row with no row payload.  Tombstones are consulted at
  read time; nothing is physically removed until compaction.
* Reads resolve a document to its **live location**: the highest-numbered
  segment event wins, and a document with no events lives in the base
  generation.  Because the corpus layer is doc-partitioned (the unit of
  update is a whole document), LCA semantics never mix generations — a
  keyword read merges the packed cursors of the document's live generation(s)
  with :func:`~repro.index.packed.merge_packed`; with whole-document
  replacement exactly one cursor is live, and the merge keeps the read path
  correct should finer-grained deltas ever land.
* :meth:`SegmentedStore.compact` folds every document's live version into the
  base tables and clears the segment tables, leaving the database
  byte-for-byte equivalent (as observed through every query method) to one
  re-shredded from scratch at the same logical state.
* Every mutation (update/delete/compact) is **crash-safe**: a ``pending``
  intent row in the ``mutation_journal`` table commits before the apply
  transaction and is cleared after it, so startup recovery can roll an
  interrupted mutation back (partial/absent apply) or forward (apply
  committed, clear lost) — the store always reopens to exactly the pre- or
  post-mutation state.  Mutations carrying an idempotency key keep their
  journal row as a ``done`` replay ledger entry, making a retried mutation
  a no-op that answers the original segment id.

:class:`SegmentedPostingSource` puts a segmented document behind the standard
:class:`~repro.index.source.PostingSource` seam, so it slots into
:class:`~repro.corpus.source.CorpusPostingSource` /
:func:`~repro.corpus.source.corpus_from_store` unchanged.  It inherits the
batched ``IN (...)`` machinery of
:class:`~repro.storage.posting_source.SQLitePostingSource` and reroutes the
raw-SQL paths to the segment tables when the document lives in a delta
segment.  Base-resident documents keep the full legacy story: a database file
written before the ``posting`` table existed still answers through the
per-row decode fallback — absorbing an update must never turn the untouched
documents of a legacy file into silent empty posting lists.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import (Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
                    Union)

from ..faults.plan import InjectedCrash
from ..index.packed import PackedDeweyList, merge_packed
from ..index.source import EMPTY_IMPACT, KeywordImpact, impact_from_postings
from ..obs import MetricsRegistry
from ..obs import names as metric_names
from ..text import DEFAULT_TOKENIZER, Tokenizer
from ..xmltree import DeweyCode, XMLTree
from .errors import DocumentAlreadyStored, DocumentNotFound
from .posting_source import (
    DEFAULT_NODE_LRU_SIZE,
    DEFAULT_POSTING_LRU_SIZE,
    SQLitePostingSource,
    _chunked,
)
from .schema import UNKNOWN_MAX_DEPTH, decode_dewey, encode_dewey
from .shredder import ShreddedDocument, packed_posting_rows, shred_tree
from .sqlite_backend import SQLiteStore

#: Segment event kinds recorded in the ``segment`` catalog table.
SEGMENT_KIND_DOC = "doc"
SEGMENT_KIND_TOMBSTONE = "tombstone"

#: The pseudo-location of documents served from the classic base tables.
BASE_GENERATION = 0

#: The base tables and their matching delta-segment tables.
_BASE_TABLES = ("label", "element", "value", "posting")
_SEGMENT_TABLES = ("segment", "segment_label", "segment_element",
                   "segment_value", "segment_posting")


class SegmentedStore(SQLiteStore):
    """A sqlite store that absorbs document updates as immutable segments.

    All :class:`SQLiteStore` query methods keep their exact semantics; they
    are rerouted per document to the live generation (base tables or the
    newest ``doc`` segment), with tombstoned documents answering
    :class:`~repro.storage.errors.DocumentNotFound` everywhere.  Writes
    (base ingestion, updates, deletes, compaction) serialize on one
    store-level lock; readers see each committed mutation atomically.
    """

    def __init__(self, path: Union[str, Path] = ":memory:",
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        super().__init__(path, tokenizer)
        self._write_lock = threading.Lock()
        # Segment-resolution accounting (harvested into the metrics registry
        # by the instrumented pipeline via the posting source's read_stats).
        self.tombstone_hits = 0
        self.merged_cursors = 0
        #: Crash-simulation hook: called at every journaled fault point with
        #: ``(point_name, connection)``.  A :class:`repro.faults.FaultPlan`
        #: (or the crash-point fuzzer) may tear the write and raise
        #: :class:`~repro.faults.InjectedCrash`; mutation code deliberately
        #: does not clean up after that exception.
        self.fault_hook: Optional[
            Callable[[str, sqlite3.Connection], None]] = None
        self._metrics: Optional[MetricsRegistry] = None
        #: Interrupted mutations resolved by journal recovery so far.
        self.last_recovery: Dict[str, int] = {"rolled_back": 0,
                                              "rolled_forward": 0}
        self._note_recovery(self._recover())

    # ------------------------------------------------------------------ #
    # Mutation journal: crash safety and idempotent replay
    # ------------------------------------------------------------------ #
    def set_metrics(self, metrics: MetricsRegistry) -> None:
        """Route journal events (and past recoveries) into a registry."""
        self._metrics = metrics
        for action, count in self.last_recovery.items():
            if count:
                metrics.counter(metric_names.JOURNAL_RECOVERIES,
                                {"action": action}).inc(count)

    def replay_of(self, idempotency_key: Optional[str]) -> Optional[int]:
        """The recorded segment id of an already-applied keyed mutation.

        ``None`` means the key is unknown and the mutation must run; a
        value means the mutation already committed once and a retry must
        be a no-op answering the original result.
        """
        if idempotency_key is None:
            return None
        row = self._connection.execute(
            "SELECT segment_id FROM mutation_journal "
            "WHERE idempotency_key = ? AND state = 'done' "
            "ORDER BY journal_id DESC LIMIT 1", (idempotency_key,)).fetchone()
        if row is None:
            return None
        if self._metrics is not None:
            self._metrics.counter(metric_names.JOURNAL_REPLAYS).inc()
        return int(row[0])

    def _fault_point(self, name: str) -> None:
        hook = self.fault_hook
        if hook is not None:
            hook(name, self._connection)

    def _journal_begin(self, kind: str, document: str, segment_id: int,
                       expected: Dict[str, int],
                       idempotency_key: Optional[str] = None) -> int:
        """Commit a ``pending`` intent row in its own transaction."""
        connection = self._connection
        try:
            cursor = connection.cursor()
            cursor.execute(
                "INSERT INTO mutation_journal (kind, document, segment_id, "
                "expected, idempotency_key, state) "
                "VALUES (?, ?, ?, ?, ?, 'pending')",
                (kind, document, segment_id,
                 json.dumps(expected, sort_keys=True), idempotency_key))
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        return int(cursor.lastrowid)

    def _journal_finish(self, journal_id: int, kind: str,
                        idempotency_key: Optional[str]) -> None:
        """Clear the intent after the apply committed.

        Keyed rows flip to ``done`` (the replay ledger); anonymous rows
        are deleted.  If this step fails or is lost to a crash, recovery
        rolls the mutation *forward* — the apply already committed.
        """
        connection = self._connection
        try:
            if idempotency_key is None:
                connection.execute(
                    "DELETE FROM mutation_journal WHERE journal_id = ?",
                    (journal_id,))
            else:
                connection.execute(
                    "UPDATE mutation_journal SET state = 'done' "
                    "WHERE journal_id = ?", (journal_id,))
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        if self._metrics is not None:
            self._metrics.counter(metric_names.JOURNAL_MUTATIONS,
                                  {"kind": kind}).inc()

    def _journal_abort(self, journal_id: int) -> None:
        """Best-effort intent removal after an in-process apply rollback."""
        connection = self._connection
        try:
            connection.execute(
                "DELETE FROM mutation_journal WHERE journal_id = ?",
                (journal_id,))
            connection.commit()
        except sqlite3.Error:
            # The pending intent stays behind; startup or next-mutation
            # recovery resolves it.  Never mask the original error.
            connection.rollback()

    def _recover_if_pending(self) -> None:
        """Heal interrupted mutations before starting a new one."""
        pending = self._scalar(
            "SELECT COUNT(*) FROM mutation_journal WHERE state = 'pending'")
        if pending:
            self._note_recovery(self._recover())

    def _note_recovery(self, report: Dict[str, int]) -> None:
        for action, count in report.items():
            self.last_recovery[action] = (
                self.last_recovery.get(action, 0) + count)
            if count and self._metrics is not None:
                self._metrics.counter(metric_names.JOURNAL_RECOVERIES,
                                      {"action": action}).inc(count)

    def _recover(self) -> Dict[str, int]:
        """Resolve every pending journal intent, atomically.

        An intent whose apply committed in full (the data tables match the
        recorded expected row counts) is rolled **forward** — only the
        journal clear was lost.  Anything else (absent or torn apply) is
        rolled **back** by deleting every row under the intent's segment
        id.  The whole sweep commits once, so recovery itself is
        crash-safe.
        """
        connection = self._connection
        pending = connection.execute(
            "SELECT journal_id, kind, document, segment_id, expected, "
            "idempotency_key FROM mutation_journal WHERE state = 'pending' "
            "ORDER BY journal_id").fetchall()
        report = {"rolled_back": 0, "rolled_forward": 0}
        if not pending:
            return report
        try:
            cursor = connection.cursor()
            for journal_id, kind, document, segment_id, raw, key in pending:
                expected = json.loads(raw)
                if self._mutation_applied(kind, document, int(segment_id),
                                          expected):
                    if key is None:
                        cursor.execute(
                            "DELETE FROM mutation_journal "
                            "WHERE journal_id = ?", (journal_id,))
                    else:
                        cursor.execute(
                            "UPDATE mutation_journal SET state = 'done' "
                            "WHERE journal_id = ?", (journal_id,))
                    report["rolled_forward"] += 1
                else:
                    if kind in ("update", "delete"):
                        for table in _SEGMENT_TABLES:
                            cursor.execute(
                                f"DELETE FROM {table} WHERE segment_id = ?",
                                (int(segment_id),))
                    cursor.execute(
                        "DELETE FROM mutation_journal WHERE journal_id = ?",
                        (journal_id,))
                    report["rolled_back"] += 1
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        return report

    def _mutation_applied(self, kind: str, document: str, segment_id: int,
                          expected: Dict[str, int]) -> bool:
        """Did the intent's apply transaction commit in full?"""
        if kind == "compact":
            # Compaction's apply is one atomic transaction that ends with
            # every segment table empty; if segments survive, it never
            # committed.  (A no-op compact over zero segments leaves pre
            # and post states identical, so either answer is correct.)
            if int(expected.get("segments", 0)) == 0:
                return True
            return self.segment_count() == 0
        if kind == "delete":
            row = self._connection.execute(
                "SELECT kind FROM segment "
                "WHERE segment_id = ? AND document = ?",
                (segment_id, document)).fetchone()
            return row is not None and row[0] == SEGMENT_KIND_TOMBSTONE
        counts = {
            table: self._scalar(
                f"SELECT COUNT(*) FROM {table} "
                f"WHERE segment_id = ? AND document = ?", segment_id, document)
            for table in _SEGMENT_TABLES
        }
        return counts == {table: int(count)
                          for table, count in expected.items()}

    # ------------------------------------------------------------------ #
    # Location resolution
    # ------------------------------------------------------------------ #
    def location_of(self, name: str) -> Optional[int]:
        """Where ``name`` currently lives.

        ``None`` — absent (never stored, or tombstoned);
        :data:`BASE_GENERATION` — the classic base tables; a positive
        integer — that delta segment.  The highest-numbered event decides.
        """
        row = self._connection.execute(
            "SELECT segment_id, kind FROM segment WHERE document = ? "
            "ORDER BY segment_id DESC LIMIT 1", (name,)).fetchone()
        if row is not None:
            segment_id, kind = row
            if kind == SEGMENT_KIND_TOMBSTONE:
                self.tombstone_hits += 1
                return None
            return int(segment_id)
        in_base = self._scalar(
            "SELECT COUNT(*) FROM element WHERE document = ?", name)
        return BASE_GENERATION if in_base else None

    def _live_location(self, name: str) -> int:
        location = self.location_of(name)
        if location is None:
            raise DocumentNotFound(f"no stored document named {name!r}")
        return location

    def _require(self, name: str) -> None:
        if self.location_of(name) is None:
            raise DocumentNotFound(f"no stored document named {name!r}")

    # ------------------------------------------------------------------ #
    # Segment introspection
    # ------------------------------------------------------------------ #
    def segment_events(self) -> List[Tuple[int, str, str]]:
        """Every ``(segment_id, document, kind)`` catalog row, in order."""
        rows = self._connection.execute(
            "SELECT segment_id, document, kind FROM segment "
            "ORDER BY segment_id, document").fetchall()
        return [(int(seg), doc, kind) for seg, doc, kind in rows]

    def segment_count(self) -> int:
        """Number of delta segments currently on disk (0 after compact)."""
        return self._scalar("SELECT COUNT(DISTINCT segment_id) FROM segment")

    def tombstoned_documents(self) -> List[str]:
        """Documents whose latest event is a tombstone (dead until re-added)."""
        return sorted(doc for doc, (_, kind) in self._latest_events().items()
                      if kind == SEGMENT_KIND_TOMBSTONE)

    def _latest_events(self) -> Dict[str, Tuple[int, str]]:
        latest: Dict[str, Tuple[int, str]] = {}
        for seg, doc, kind in self.segment_events():
            if doc not in latest or seg > latest[doc][0]:
                latest[doc] = (seg, kind)
        return latest

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def update_document(self, tree: XMLTree, name: str = "",
                        idempotency_key: Optional[str] = None) -> int:
        """Absorb a new version of one document as a fresh delta segment.

        Works for brand-new documents too (an add is an update with no
        shadowed predecessor).  Returns the new segment id.  A repeated
        ``idempotency_key`` makes the call a journal-backed no-op that
        answers the original segment id.
        """
        document = name or tree.name or "document"
        shredded = shred_tree(tree, document, self.tokenizer)
        return self.update_shredded(shredded, idempotency_key)

    def update_shredded(self, shredded: ShreddedDocument,
                        idempotency_key: Optional[str] = None) -> int:
        """Write one already-shredded document version as a delta segment.

        The write is a journaled two-step: a ``pending`` intent row
        commits first (recording the expected row counts), then the
        segment rows commit in one apply transaction, then the intent is
        cleared.  A crash at any point leaves a state that
        :meth:`_recover` resolves to exactly the pre- or post-mutation
        store.
        """
        with self._write_lock:
            self._recover_if_pending()
            replayed = self.replay_of(idempotency_key)
            if replayed is not None:
                return replayed
            connection = self._connection
            postings = list(packed_posting_rows(shredded))
            expected = {"segment": 1,
                        "segment_label": len(shredded.labels),
                        "segment_element": len(shredded.elements),
                        "segment_value": len(shredded.values),
                        "segment_posting": len(postings)}
            segment_id = self._next_segment_id()
            journal_id = self._journal_begin("update", shredded.name,
                                             segment_id, expected,
                                             idempotency_key)
            self._fault_point("update.intent")
            try:
                cursor = connection.cursor()
                cursor.execute(
                    "INSERT INTO segment (segment_id, document, kind) "
                    "VALUES (?, ?, ?)",
                    (segment_id, shredded.name, SEGMENT_KIND_DOC))
                cursor.executemany(
                    "INSERT INTO segment_label (segment_id, document, label, "
                    "id) VALUES (?, ?, ?, ?)",
                    [(segment_id, shredded.name, row.label, row.label_id)
                     for row in shredded.labels])
                self._fault_point("update.apply")
                cursor.executemany(
                    "INSERT INTO segment_element (segment_id, document, "
                    "label, dewey, level, label_number_sequence, "
                    "content_feature_min, content_feature_max) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    [(segment_id, shredded.name, row.label, row.dewey,
                      row.level, row.label_number_sequence,
                      row.content_feature_min, row.content_feature_max)
                     for row in shredded.elements])
                cursor.executemany(
                    "INSERT INTO segment_value (segment_id, document, label, "
                    "dewey, attribute, keyword) VALUES (?, ?, ?, ?, ?, ?)",
                    [(segment_id, shredded.name, row.label, row.dewey,
                      row.attribute, row.keyword)
                     for row in shredded.values])
                cursor.executemany(
                    "INSERT INTO segment_posting (segment_id, document, "
                    "keyword, cardinality, blob, max_depth) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    [(segment_id, shredded.name, keyword, cardinality, blob,
                      max_depth)
                     for keyword, cardinality, blob, max_depth in postings])
                connection.commit()
            except InjectedCrash:
                # Simulated process death: leave the database exactly as
                # the crash left it; journal recovery restores integrity.
                raise
            except BaseException:
                connection.rollback()
                self._journal_abort(journal_id)
                raise
            self._fault_point("update.applied")
            self._journal_finish(journal_id, "update", idempotency_key)
            return segment_id

    def delete_document(self, name: str,
                        idempotency_key: Optional[str] = None) -> int:
        """Tombstone one live document; returns the tombstone's segment id.

        Journaled like :meth:`update_shredded`; a repeated
        ``idempotency_key`` is a no-op answering the original segment id.
        """
        with self._write_lock:
            self._recover_if_pending()
            replayed = self.replay_of(idempotency_key)
            if replayed is not None:
                return replayed
            self._require(name)
            connection = self._connection
            segment_id = self._next_segment_id()
            journal_id = self._journal_begin("delete", name, segment_id,
                                             {"segment": 1}, idempotency_key)
            self._fault_point("delete.intent")
            try:
                connection.execute(
                    "INSERT INTO segment (segment_id, document, kind) "
                    "VALUES (?, ?, ?)",
                    (segment_id, name, SEGMENT_KIND_TOMBSTONE))
                connection.commit()
            except InjectedCrash:
                raise
            except BaseException:
                connection.rollback()
                self._journal_abort(journal_id)
                raise
            self._fault_point("delete.applied")
            self._journal_finish(journal_id, "delete", idempotency_key)
            return segment_id

    def compact(self) -> Dict[str, int]:
        """Fold every live delta version into the base generation.

        Shadowed base rows and tombstoned documents are physically removed,
        the surviving segment row sets are copied into the base tables, and
        all segment tables are cleared.  Afterwards the store answers every
        query exactly as a freshly re-shredded one would.  Returns counters:
        ``folded`` documents materialized from segments, ``dropped``
        tombstoned documents removed, ``segments`` delta segments absorbed.
        """
        with self._write_lock:
            self._recover_if_pending()
            connection = self._connection
            segments = self.segment_count()
            journal_id = self._journal_begin("compact", "", 0,
                                             {"segments": segments})
            self._fault_point("compact.intent")
            try:
                latest = self._latest_events()
                folded = dropped = 0
                cursor = connection.cursor()
                for document in sorted(latest):
                    segment_id, kind = latest[document]
                    for table in _BASE_TABLES:
                        cursor.execute(
                            f"DELETE FROM {table} WHERE document = ?",
                            (document,))
                    if kind == SEGMENT_KIND_DOC:
                        cursor.execute(
                            "INSERT INTO label (document, label, id) "
                            "SELECT document, label, id FROM segment_label "
                            "WHERE segment_id = ? AND document = ?",
                            (segment_id, document))
                        cursor.execute(
                            "INSERT INTO element (document, label, dewey, "
                            "level, label_number_sequence, "
                            "content_feature_min, content_feature_max) "
                            "SELECT document, label, dewey, level, "
                            "label_number_sequence, content_feature_min, "
                            "content_feature_max FROM segment_element "
                            "WHERE segment_id = ? AND document = ?",
                            (segment_id, document))
                        cursor.execute(
                            "INSERT INTO value (document, label, dewey, "
                            "attribute, keyword) "
                            "SELECT document, label, dewey, attribute, "
                            "keyword FROM segment_value "
                            "WHERE segment_id = ? AND document = ?",
                            (segment_id, document))
                        cursor.execute(
                            "INSERT INTO posting (document, keyword, "
                            "cardinality, blob, max_depth) "
                            "SELECT document, keyword, cardinality, blob, "
                            "max_depth FROM segment_posting "
                            "WHERE segment_id = ? AND document = ?",
                            (segment_id, document))
                        folded += 1
                    else:
                        dropped += 1
                for table in _SEGMENT_TABLES:
                    cursor.execute(f"DELETE FROM {table}")
                connection.commit()
            except InjectedCrash:
                raise
            except BaseException:
                connection.rollback()
                self._journal_abort(journal_id)
                raise
            self._fault_point("compact.applied")
            self._journal_finish(journal_id, "compact", None)
            return {"folded": folded, "dropped": dropped,
                    "segments": segments}

    def store_shredded(self, shredded: ShreddedDocument) -> ShreddedDocument:
        """Base-generation ingestion, aware of shadowed/tombstoned leftovers.

        A dead document name (deleted, or replaced by a newer segment that
        was itself deleted) may still own stale base or segment rows; they
        are purged first so re-adding a deleted document behaves exactly like
        storing it into a fresh database.
        """
        with self._write_lock:
            self._recover_if_pending()
            if self.location_of(shredded.name) is not None:
                raise DocumentAlreadyStored(
                    f"document {shredded.name!r} already stored")
            connection = self._connection
            try:
                self._purge(shredded.name)
            except BaseException:
                connection.rollback()
                raise
            return super().store_shredded(shredded)

    def drop_document(self, name: str) -> None:
        """Physically remove every trace of one live document (all tables)."""
        with self._write_lock:
            self._recover_if_pending()
            self._require(name)
            connection = self._connection
            try:
                self._purge(name)
                connection.commit()
            except BaseException:
                connection.rollback()
                raise

    def _purge(self, name: str) -> None:
        cursor = self._connection.cursor()
        for table in _BASE_TABLES + _SEGMENT_TABLES:
            cursor.execute(f"DELETE FROM {table} WHERE document = ?", (name,))

    def _next_segment_id(self) -> int:
        return self._scalar(
            "SELECT COALESCE(MAX(segment_id), 0) FROM segment") + 1

    # ------------------------------------------------------------------ #
    # Queries (rerouted to the live generation)
    # ------------------------------------------------------------------ #
    def documents(self) -> List[str]:
        """Names of the **live** documents (tombstoned ones are gone)."""
        live = set(super().documents())
        for document, (_, kind) in self._latest_events().items():
            if kind == SEGMENT_KIND_DOC:
                live.add(document)
            else:
                live.discard(document)
        return sorted(live)

    def document_stats(self, name: str) -> Dict[str, int]:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().document_stats(name)
        nodes = self._scalar(
            "SELECT COUNT(*) FROM segment_element "
            "WHERE segment_id = ? AND document = ?", location, name)
        values = self._scalar(
            "SELECT COUNT(*) FROM segment_value "
            "WHERE segment_id = ? AND document = ?", location, name)
        labels = self._scalar(
            "SELECT COUNT(*) FROM segment_label "
            "WHERE segment_id = ? AND document = ?", location, name)
        return {"nodes": nodes, "values": values, "labels": labels}

    def keyword_deweys(self, name: str, keyword: str) -> List[DeweyCode]:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().keyword_deweys(name, keyword)
        normalized = self.tokenizer.normalize_keyword(keyword)
        cursor = self._connection.execute(
            "SELECT DISTINCT dewey FROM segment_value "
            "WHERE segment_id = ? AND document = ? AND keyword = ? "
            "ORDER BY dewey",
            (location, name, normalized))
        return [DeweyCode(decode_dewey(text)) for (text,) in cursor]

    def has_packed_postings(self, name: str) -> bool:
        location = self.location_of(name)
        if location is None or location == BASE_GENERATION:
            # Base documents keep the legacy answer: files written before
            # the ``posting`` table existed say False here and fall back to
            # per-row decoding — segments never mask that.
            return super().has_packed_postings(name)
        return bool(self._scalar(
            "SELECT COUNT(*) FROM segment_posting "
            "WHERE segment_id = ? AND document = ?", location, name))

    def keyword_packed(self, name: str,
                       keyword: str) -> Optional[PackedDeweyList]:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().keyword_packed(name, keyword)
        normalized = self.tokenizer.normalize_keyword(keyword)
        cursors = [PackedDeweyList.from_blob(blob) for (blob,) in
                   self._connection.execute(
                       "SELECT blob FROM segment_posting WHERE segment_id = ? "
                       "AND document = ? AND keyword = ?",
                       (location, name, normalized))]
        if not cursors:
            return None
        # Whole-document replacement means one live cursor per keyword; the
        # general merge keeps the read correct if a document's postings ever
        # span several live segments.
        if len(cursors) == 1:
            return cursors[0]
        self.merged_cursors += len(cursors)
        return merge_packed(cursors)

    def keyword_frequency(self, name: str, keyword: str) -> int:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().keyword_frequency(name, keyword)
        normalized = self.tokenizer.normalize_keyword(keyword)
        return self._scalar(
            "SELECT COUNT(DISTINCT dewey) FROM segment_value "
            "WHERE segment_id = ? AND document = ? AND keyword = ?",
            location, name, normalized)

    def keyword_impact(self, name: str, keyword: str) -> KeywordImpact:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().keyword_impact(name, keyword)
        normalized = self.tokenizer.normalize_keyword(keyword)
        rows = self._connection.execute(
            "SELECT cardinality, max_depth FROM segment_posting "
            "WHERE segment_id = ? AND document = ? AND keyword = ?",
            (location, name, normalized)).fetchall()
        if not rows:
            # Segments always carry packed rows, so absence means the
            # keyword does not occur in this document version.
            return EMPTY_IMPACT
        if len(rows) == 1 and int(rows[0][1]) != UNKNOWN_MAX_DEPTH:
            return KeywordImpact(count=int(rows[0][0]),
                                 max_depth=int(rows[0][1]))
        # Several live cursors (or a sentinel row): derive from the merged
        # posting list — counts cannot simply add across cursors because
        # they may share Dewey codes.
        return impact_from_postings(self.keyword_deweys(name, normalized))

    def vocabulary(self, name: str) -> List[str]:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().vocabulary(name)
        cursor = self._connection.execute(
            "SELECT DISTINCT keyword FROM segment_value "
            "WHERE segment_id = ? AND document = ? ORDER BY keyword",
            (location, name))
        return [keyword for (keyword,) in cursor]

    def node_words(self, name: str, dewey: DeweyCode) -> frozenset:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().node_words(name, dewey)
        cursor = self._connection.execute(
            "SELECT DISTINCT keyword FROM segment_value "
            "WHERE segment_id = ? AND document = ? AND dewey = ?",
            (location, name, encode_dewey(dewey.components)))
        return frozenset(keyword for (keyword,) in cursor)

    def label_of(self, name: str, dewey: DeweyCode) -> Optional[str]:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().label_of(name, dewey)
        row = self._connection.execute(
            "SELECT label FROM segment_element "
            "WHERE segment_id = ? AND document = ? AND dewey = ?",
            (location, name, encode_dewey(dewey.components))).fetchone()
        return row[0] if row else None

    def labels(self, name: str) -> List[str]:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().labels(name)
        rows = self._connection.execute(
            "SELECT label FROM segment_label "
            "WHERE segment_id = ? AND document = ? ORDER BY label",
            (location, name)).fetchall()
        return [row[0] for row in rows]

    def label_number_sequence(self, name: str,
                              dewey: DeweyCode) -> Optional[str]:
        location = self._live_location(name)
        if location == BASE_GENERATION:
            return super().label_number_sequence(name, dewey)
        row = self._connection.execute(
            "SELECT label_number_sequence FROM segment_element "
            "WHERE segment_id = ? AND document = ? AND dewey = ?",
            (location, name, encode_dewey(dewey.components))).fetchone()
        return row[0] if row else None


class SegmentedPostingSource(SQLitePostingSource):
    """Posting source over one live document of a :class:`SegmentedStore`.

    A snapshot view: the document's live location is resolved once, on first
    access, so one source serves one generation consistently.  After a
    mutation, build a fresh source (the corpus/service layers rebuild their
    engines, and every cache key carries the generation through
    :attr:`source_id`).
    """

    def __init__(self, store: SegmentedStore, document: str,
                 lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                 node_lru_size: int = DEFAULT_NODE_LRU_SIZE,
                 representation: str = "packed"):
        if not isinstance(store, SegmentedStore):
            raise TypeError(f"SegmentedPostingSource needs a SegmentedStore, "
                            f"got {type(store).__name__}")
        super().__init__(store, document, lru_size, node_lru_size,
                         representation)
        self._location: Optional[int] = None
        # How many posting fetches were resolved from a delta segment vs the
        # base generation (one increment per fetched keyword, hoisted after
        # each batch loop).
        self.segment_reads = 0
        self.base_reads = 0

    def _resolve_location(self) -> int:
        """The generation this source serves (pinned at first resolution)."""
        if self._location is None:
            store: SegmentedStore = self.store
            self._location = store._live_location(self.document)
        return self._location

    @property
    def source_id(self) -> str:
        """Identity including the live generation, so caches never go stale."""
        return (f"segmented:{self.store.path}#{self.document}"
                f"@g{self._resolve_location()}")

    def read_stats(self) -> Dict[str, int]:
        """Base read counters plus segment-resolution accounting."""
        stats = super().read_stats()
        store: SegmentedStore = self.store
        stats["segment_reads"] = self.segment_reads
        stats["base_reads"] = self.base_reads
        stats["merged_cursors"] = store.merged_cursors
        stats["tombstone_hits"] = store.tombstone_hits
        return stats

    def _fetch_blob_rows(self, missing: Sequence[str]
                         ) -> Dict[str, PackedDeweyList]:
        location = self._resolve_location()
        if location == BASE_GENERATION:
            fetched = super()._fetch_blob_rows(missing)
            self.base_reads += len(fetched)
            return fetched
        fetched = {}
        blob_bytes = 0
        for chunk in _chunked(missing):
            placeholders = ",".join("?" for _ in chunk)
            cursor = self.store._connection.execute(
                f"SELECT keyword, blob FROM segment_posting "
                f"WHERE segment_id = ? AND document = ? "
                f"AND keyword IN ({placeholders})",
                (location, self.document, *chunk))
            for keyword, blob in cursor:
                fetched[keyword] = PackedDeweyList.from_blob(blob)
                blob_bytes += len(blob)
        self.bytes_read += blob_bytes
        self.packed_fetches += len(fetched)
        self.segment_reads += len(fetched)
        return fetched

    def _fetch_value_rows(self, missing: Sequence[str]
                          ) -> Dict[str, List[Tuple[int, ...]]]:
        location = self._resolve_location()
        if location == BASE_GENERATION:
            rows = super()._fetch_value_rows(missing)
            self.base_reads += len(rows)
            return rows
        rows: Dict[str, List[Tuple[int, ...]]] = {}
        for chunk in _chunked(missing):
            placeholders = ",".join("?" for _ in chunk)
            cursor = self.store._connection.execute(
                f"SELECT DISTINCT keyword, dewey FROM segment_value "
                f"WHERE segment_id = ? AND document = ? "
                f"AND keyword IN ({placeholders}) ORDER BY keyword, dewey",
                (location, self.document, *chunk))
            for keyword, dewey_text in cursor:
                rows.setdefault(keyword, []).append(decode_dewey(dewey_text))
        self.fallback_fetches += len(rows)
        self.segment_reads += len(rows)
        return rows

    def prefetch_nodes(self, nodes: Iterable[DeweyCode],
                       keyword_nodes: Iterable[DeweyCode]) -> None:
        location = self._resolve_location()
        if location == BASE_GENERATION:
            super().prefetch_nodes(nodes, keyword_nodes)
            return
        self._check_document()
        missing_labels = [dewey for dewey in nodes if dewey not in self._labels]
        for chunk in _chunked(missing_labels):
            encoded = {encode_dewey(dewey.components): dewey for dewey in chunk}
            placeholders = ",".join("?" for _ in encoded)
            cursor = self.store._connection.execute(
                f"SELECT dewey, label FROM segment_element "
                f"WHERE segment_id = ? AND document = ? "
                f"AND dewey IN ({placeholders})",
                (location, self.document, *encoded))
            found = {dewey_text: label for dewey_text, label in cursor}
            for dewey_text, dewey in encoded.items():
                self._cache_node(self._labels, dewey, found.get(dewey_text))
        missing_words = [dewey for dewey in keyword_nodes
                         if dewey not in self._words]
        for chunk in _chunked(missing_words):
            encoded = {encode_dewey(dewey.components): dewey for dewey in chunk}
            placeholders = ",".join("?" for _ in encoded)
            cursor = self.store._connection.execute(
                f"SELECT DISTINCT dewey, keyword FROM segment_value "
                f"WHERE segment_id = ? AND document = ? "
                f"AND dewey IN ({placeholders})",
                (location, self.document, *encoded))
            words: Dict[str, set] = {}
            for dewey_text, keyword in cursor:
                words.setdefault(dewey_text, set()).add(keyword)
            for dewey_text, dewey in encoded.items():
                self._cache_node(self._words, dewey,
                                 frozenset(words.get(dewey_text, ())))
