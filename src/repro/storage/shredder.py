"""Shredding XML trees into the relational schema of Section 5.2."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from ..index.packed import pack_component_tuples
from ..text import DEFAULT_TOKENIZER, Tokenizer
from ..xmltree import XMLNode, XMLTree
from .schema import ElementRow, LabelRow, ValueRow, decode_dewey, encode_dewey


@dataclass(frozen=True)
class ShreddedDocument:
    """All rows produced by shredding one document."""

    name: str
    labels: Tuple[LabelRow, ...]
    elements: Tuple[ElementRow, ...]
    values: Tuple[ValueRow, ...]

    @property
    def node_count(self) -> int:
        return len(self.elements)

    @property
    def value_count(self) -> int:
        return len(self.values)


def shred_tree(tree: XMLTree, name: str = "",
               tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> ShreddedDocument:
    """Shred a tree into ``label`` / ``element`` / ``value`` rows.

    The ``value`` table receives one row per (node, word) pair, split by
    origin: the node's label words carry ``attribute=""``, attribute words
    carry the attribute name and text words carry ``attribute="#text"`` — this
    mirrors the paper's value table with its ``(node's label, Dewey,
    attribute, keyword)`` columns.
    """
    document = name or tree.name or "document"
    label_ids: Dict[str, int] = {}
    elements: List[ElementRow] = []
    values: List[ValueRow] = []

    for node in tree.iter_preorder():
        label_id = label_ids.setdefault(node.label, len(label_ids))
        dewey_text = encode_dewey(node.dewey.components)
        sequence = _label_number_sequence(node, label_ids)
        feature = _content_feature(node, tokenizer)
        elements.append(ElementRow(
            document=document,
            label=node.label,
            dewey=dewey_text,
            level=node.dewey.level,
            label_number_sequence=sequence,
            content_feature_min=feature[0],
            content_feature_max=feature[1],
        ))
        values.extend(_value_rows(document, node, dewey_text, tokenizer))

    labels = tuple(LabelRow(label=label, label_id=label_id)
                   for label, label_id in sorted(label_ids.items(),
                                                 key=lambda item: item[1]))
    return ShreddedDocument(name=document, labels=labels,
                            elements=tuple(elements), values=tuple(values))


def packed_posting_rows(shredded: ShreddedDocument
                        ) -> List[Tuple[str, int, bytes, int]]:
    """Derive the ``posting`` table rows of one shredded document.

    Groups the value rows by keyword, deduplicates and document-order sorts
    the Dewey codes (the padded string encoding sorts like document order) and
    serializes each list as one prefix-truncated packed blob — the
    ingestion-time counterpart of the per-row decode the packed read path
    skips.  Returns ``(keyword, cardinality, blob, max_depth)`` tuples, where
    ``max_depth`` is the deepest Dewey level (root = 0) of the keyword's
    nodes — the shred-time impact metadata the corpus ranking derives its
    score bounds from (``cardinality`` doubles as the posting count).
    """
    by_keyword: Dict[str, Set[str]] = {}
    for row in shredded.values:
        by_keyword.setdefault(row.keyword, set()).add(row.dewey)
    rows: List[Tuple[str, int, bytes, int]] = []
    for keyword in sorted(by_keyword):
        deweys = sorted(by_keyword[keyword])
        components = [decode_dewey(text) for text in deweys]
        packed = pack_component_tuples(components, presorted=True)
        max_depth = max(len(parts) for parts in components) - 1
        rows.append((keyword, len(packed), packed.to_blob(), max_depth))
    return rows


def _label_number_sequence(node: XMLNode, label_ids: Dict[str, int]) -> str:
    """Label numbers of the ancestors from the root down to the node itself."""
    chain = list(node.iter_ancestors(include_self=True))
    chain.reverse()
    numbers = []
    for member in chain:
        numbers.append(str(label_ids.setdefault(member.label, len(label_ids))))
    return ".".join(numbers)


def _content_feature(node: XMLNode, tokenizer: Tokenizer) -> Tuple[str, str]:
    words = sorted(tokenizer.word_set(node.raw_strings()))
    if not words:
        return ("", "")
    return (words[0], words[-1])


def _value_rows(document: str, node: XMLNode, dewey_text: str,
                tokenizer: Tokenizer) -> Iterator[ValueRow]:
    for word in tokenizer.tokenize(node.label):
        yield ValueRow(document=document, label=node.label, dewey=dewey_text,
                       attribute="", keyword=word)
    if node.text:
        for word in set(tokenizer.tokenize(node.text)):
            yield ValueRow(document=document, label=node.label, dewey=dewey_text,
                           attribute="#text", keyword=word)
    for attribute, value in node.attributes.items():
        attribute_words = set(tokenizer.tokenize(attribute))
        attribute_words |= set(tokenizer.tokenize(value or ""))
        for word in attribute_words:
            yield ValueRow(document=document, label=node.label, dewey=dewey_text,
                           attribute=attribute, keyword=word)
