"""Reference (naive) implementations of the LCA node families.

These work directly from the definitions and are deliberately simple; they
serve as executable specifications that the optimized algorithms
(:mod:`repro.lca.indexed_lookup`, :mod:`repro.lca.scan_eager`,
:mod:`repro.lca.stack_slca`, :mod:`repro.lca.indexed_stack`) are
property-tested against.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Set

from ..xmltree import DeweyCode, lca_of_codes
from .base import (
    EmptyKeywordList,
    KeywordLists,
    common_ancestor_masks,
    full_mask,
    merge_matches,
    normalize_lists,
    remove_ancestors,
)


def naive_lca_candidates(lists: KeywordLists) -> List[DeweyCode]:
    """All LCAs of one-node-per-keyword combinations (the raw LCA set of [4]).

    This enumerates every combination of one keyword node per list and
    collects the distinct LCA nodes, exactly the "LCA nodes" notion the
    paper's Section 1 starts from.  Exponential in principle, usable only on
    small inputs; the interesting subsets (SLCA, ELCA) have efficient
    algorithms elsewhere in this package.
    """
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    lcas: Set[DeweyCode] = set()
    for combination in product(*normalized):
        lcas.add(lca_of_codes(combination))
    return sorted(lcas)


def naive_common_ancestors(lists: KeywordLists) -> List[DeweyCode]:
    """All CA nodes: nodes whose subtree contains every keyword."""
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    matches = merge_matches(normalized)
    masks = common_ancestor_masks(matches)
    target = full_mask(len(normalized))
    return sorted(code for code, mask in masks.items() if mask == target)


def naive_slca(lists: KeywordLists) -> List[DeweyCode]:
    """SLCA nodes: the deepest common ancestors (no CA strict descendant)."""
    return remove_ancestors(naive_common_ancestors(lists))


def naive_elca(lists: KeywordLists) -> List[DeweyCode]:
    """ELCA nodes straight from the definition.

    A node ``v`` is an ELCA iff its subtree contains every keyword after
    excluding the subtrees of ``v``'s strict descendants that themselves
    contain every keyword.  Because the CA set is ancestor-closed, the
    excluded region under ``v`` is exactly the union of subtrees of ``v``'s
    *children* that are CAs, which makes the check local:

    ``v`` is an ELCA iff (own keyword occurrences) ∪ (subtree masks of non-CA
    children restricted to keyword-node ancestors) covers the query.
    """
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    matches = merge_matches(normalized)
    target = full_mask(len(normalized))
    masks = common_ancestor_masks(matches)
    match_masks: Dict[DeweyCode, int] = {m.dewey: m.mask for m in matches}

    common_ancestors = [code for code, mask in masks.items() if mask == target]
    elcas: List[DeweyCode] = []
    for candidate in common_ancestors:
        exclusive = match_masks.get(candidate, 0)
        # Children of the candidate that appear in the ancestor closure.
        for code, mask in masks.items():
            if code.parent() == candidate and mask != target:
                exclusive |= mask
        if exclusive == target:
            elcas.append(candidate)
    return sorted(elcas)


def naive_elca_exhaustive(lists: KeywordLists) -> List[DeweyCode]:
    """ELCA computed by literally excluding full-subtree descendants.

    Slower than :func:`naive_elca` but textually closest to the definition;
    used to cross-check the two reference implementations in the test suite.
    """
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    matches = merge_matches(normalized)
    target = full_mask(len(normalized))
    masks = common_ancestor_masks(matches)
    common_ancestors = sorted(code for code, mask in masks.items() if mask == target)

    elcas: List[DeweyCode] = []
    for candidate in common_ancestors:
        blockers = [other for other in common_ancestors
                    if candidate.is_ancestor_of(other)]
        remaining = 0
        for match in matches:
            if not candidate.is_ancestor_or_self(match.dewey):
                continue
            if any(blocker.is_ancestor_or_self(match.dewey) for blocker in blockers):
                continue
            remaining |= match.mask
        if remaining == target:
            elcas.append(candidate)
    return sorted(elcas)
