"""Shared machinery for the LCA / SLCA / ELCA algorithms.

All algorithms in :mod:`repro.lca` operate purely on Dewey-code posting lists
(the ``D_i`` returned by ``getKeywordNodes``), never on the tree itself: this
mirrors the paper's setting where keyword nodes come back from the shredded
relational store and the LCA computation happens on Dewey codes.

Terminology used throughout:

* **CA** (common ancestor) — a node whose subtree contains at least one node
  from every ``D_i``.
* **SLCA** — a CA none of whose strict descendants is a CA (Xu & Pap. 2005).
* **ELCA** — a node whose subtree contains all keywords after excluding the
  subtrees of its descendants that themselves contain all keywords
  (Xu & Pap. 2008); this is the "interesting LCA node" set the paper's
  ``getLCA`` returns.  SLCA ⊆ ELCA always holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..index.packed import PackedDeweyList
from ..xmltree import DeweyCode

KeywordLists = Mapping[str, Sequence[DeweyCode]]


class EmptyKeywordList(ValueError):
    """Raised when a query keyword has no occurrence in the document.

    Per the LCA semantics a query with an unmatched keyword has an empty
    result; algorithms raise this so callers can short-circuit to an empty
    answer while still distinguishing "no result" from "bad input".
    """


@dataclass(frozen=True)
class KeywordMatch:
    """One keyword node together with the bitmask of keywords it contains."""

    dewey: DeweyCode
    mask: int


def normalize_lists(lists: KeywordLists) -> List[List[DeweyCode]]:
    """Return the posting lists as sorted, deduplicated Dewey lists.

    Raises :class:`EmptyKeywordList` when any list is empty (a keyword without
    occurrences makes every LCA-family result empty).
    """
    normalized: List[List[DeweyCode]] = []
    for keyword, deweys in lists.items():
        # lint: allow(hot-loop-purity) object path's input normalization
        unique = sorted(set(DeweyCode.coerce(code) for code in deweys))
        if not unique:
            raise EmptyKeywordList(f"keyword {keyword!r} has no occurrence")
        normalized.append(unique)
    if not normalized:
        raise EmptyKeywordList("the query has no keywords")
    return normalized


def prepare_lists(lists: KeywordLists
                  ) -> Tuple[Optional[List[PackedDeweyList]],
                             Optional[List[List[DeweyCode]]]]:
    """Dispatch helper: ``(packed, None)`` or ``(None, normalized)``.

    When every posting list is a :class:`PackedDeweyList` (sorted and
    duplicate-free by construction) the algorithms run their zero-object hot
    loops on the flat columns directly; any other input falls back to
    :func:`normalize_lists` and the classic object path.  Raises
    :class:`EmptyKeywordList` exactly like :func:`normalize_lists` when the
    query is empty or any keyword has no occurrence.
    """
    if not lists:
        raise EmptyKeywordList("the query has no keywords")
    packed: List[PackedDeweyList] = []
    for keyword, deweys in lists.items():
        if not deweys:
            raise EmptyKeywordList(f"keyword {keyword!r} has no occurrence")
        if not isinstance(deweys, PackedDeweyList):
            return None, normalize_lists(lists)
        packed.append(deweys)
    return packed, None


def iter_object_matches(normalized: Sequence[Sequence[DeweyCode]]
                        ) -> Iterator[Tuple[Tuple[int, ...], int]]:
    """The object-path ``(components, mask)`` stream.

    Adapter so the stack algorithms consume one stream shape for both
    representations: this wraps :func:`merge_matches`, while the packed path
    feeds :func:`repro.index.packed.iter_matches` straight from the columns.
    """
    for match in merge_matches(normalized):
        # lint: allow(hot-loop-purity) unboxing adapter: objects → components
        yield match.dewey.components, match.mask


def remove_ancestors_slices(candidates: List) -> List:
    """:func:`remove_ancestors` over raw component sequences.

    Operates on ``array('I')`` slices (or component tuples) without
    materializing codes: sorts lexicographically, then drops any entry that is
    a strict prefix of its successor run, deduplicating along the way.
    """
    candidates.sort()
    result: List = []
    append = result.append
    for comps in candidates:
        while result:
            last = result[-1]
            if len(last) < len(comps) and comps[:len(last)] == last:
                result.pop()
            else:
                break
        if result and result[-1] == comps:
            continue
        append(comps)
    return result


def full_mask(keyword_count: int) -> int:
    """Bitmask with the lowest ``keyword_count`` bits set."""
    return (1 << keyword_count) - 1


def merge_matches(lists: Sequence[Sequence[DeweyCode]]) -> List[KeywordMatch]:
    """Merge per-keyword lists into one document-order stream of matches.

    A node occurring in several lists yields a single :class:`KeywordMatch`
    whose mask has all the corresponding bits set (keyword ``i`` sets bit
    ``i``).
    """
    masks: Dict[DeweyCode, int] = {}
    for index, deweys in enumerate(lists):
        bit = 1 << index
        for dewey in deweys:
            masks[dewey] = masks.get(dewey, 0) | bit
    return [KeywordMatch(dewey, masks[dewey]) for dewey in sorted(masks)]


def remove_ancestors(codes: Iterable[DeweyCode]) -> List[DeweyCode]:
    """Keep only the deepest codes: drop any code that is an ancestor of another.

    Runs in a single pass over the document-order sorted codes: an ancestor
    always immediately precedes (some) descendant in that order.
    """
    result: List[DeweyCode] = []
    for code in sorted(set(codes)):
        while result and result[-1].is_ancestor_of(code):
            result.pop()
        if result and result[-1] == code:
            continue
        result.append(code)
    return result


def remove_descendants(codes: Iterable[DeweyCode]) -> List[DeweyCode]:
    """Keep only the shallowest codes: drop codes that descend from another."""
    result: List[DeweyCode] = []
    for code in sorted(set(codes)):
        if result and result[-1].is_ancestor_or_self(code):
            continue
        result.append(code)
    return result


def common_ancestor_masks(matches: Sequence[KeywordMatch]) -> Dict[DeweyCode, int]:
    """Subtree keyword masks for every ancestor-or-self of any match.

    The returned mapping assigns to each node (identified by Dewey code) on a
    root-to-match path the OR of the masks of all matches in its subtree.
    Only the ancestor closure of the matches is materialized, never the whole
    document.
    """
    masks: Dict[DeweyCode, int] = {}
    for match in matches:
        for ancestor in match.dewey.ancestors(include_self=True):
            masks[ancestor] = masks.get(ancestor, 0) | match.mask
    return masks


def keyword_bit_index(lists: KeywordLists) -> Dict[str, int]:
    """Stable keyword -> bit position mapping (insertion order of the query)."""
    return {keyword: index for index, keyword in enumerate(lists)}


def witness_tuple(
    masks: Mapping[DeweyCode, int], code: DeweyCode, keyword_count: int
) -> Tuple[bool, int]:
    """Convenience: (is the node a CA, its subtree mask)."""
    mask = masks.get(code, 0)
    return mask == full_mask(keyword_count), mask
