"""Stack-based SLCA computation over the merged keyword-node stream.

This is the classic one-pass stack algorithm: the keyword nodes of all lists
are merged into a single document-order stream; a stack mirrors the
root-to-current-node path; every frame accumulates the keyword bitmask seen in
its subtree; a frame popped with a full mask is an SLCA unless one of its
descendants already was (tracked with a per-frame flag).

It is provided both as an additional baseline for the ablation benchmark and
as an independent implementation to cross-check the Indexed Lookup / Scan
Eager algorithms in the property-based tests.

The scan consumes a ``(components, mask)`` stream and keeps the path stack as
three parallel lists of unboxed values (component, mask, descendant flag).
Packed posting lists feed the stream straight from their flat columns
(:func:`repro.index.packed.iter_matches` — heap merge with galloping skips);
object lists go through the classic :func:`~repro.lca.base.merge_matches`.
:class:`DeweyCode` objects are materialized only for the reported SLCAs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..index.packed import iter_matches
from ..xmltree import DeweyCode
from .base import (
    EmptyKeywordList,
    KeywordLists,
    full_mask,
    iter_object_matches,
    prepare_lists,
)


def stack_slca(lists: KeywordLists) -> List[DeweyCode]:
    """SLCA nodes computed with the merged-stream stack algorithm."""
    try:
        packed, normalized = prepare_lists(lists)
    except EmptyKeywordList:
        return []
    if packed is not None:
        stream: Iterator[Tuple[Iterable[int], int]] = iter_matches(packed)
        target = full_mask(len(packed))
    else:
        stream = iter_object_matches(normalized)
        target = full_mask(len(normalized))
    return _scan(stream, target)


def _scan(stream: Iterator[Tuple[Iterable[int], int]],
          target: int) -> List[DeweyCode]:
    """One pass over the document-order match stream."""
    components: List[int] = []   # the path stack, one entry per frame
    masks: List[int] = []        # keyword bits seen in the frame's subtree
    flags: List[bool] = []       # an SLCA was already found below the frame
    results: List[DeweyCode] = []

    def pop_frame() -> None:
        mask = masks.pop()
        flag = flags.pop()
        is_slca = mask == target and not flag
        if is_slca:
            # lint: allow(hot-loop-purity) result boundary: SLCAs survive
            results.append(DeweyCode._from_tuple(tuple(components)))
        components.pop()
        if masks:
            masks[-1] |= mask
            if flag or is_slca:
                flags[-1] = True

    for comps, mask in stream:
        # Pop frames that are not ancestors of the incoming match.
        depth = len(components)
        limit = min(depth, len(comps))
        shared = 0
        while shared < limit and components[shared] == comps[shared]:
            shared += 1
        while len(components) > shared:
            pop_frame()
        # Push the remaining components of the new path.
        for component in comps[shared:]:
            components.append(component)
            masks.append(0)
            flags.append(False)
        masks[-1] |= mask

    while components:
        pop_frame()
    return sorted(results)
