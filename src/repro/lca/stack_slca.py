"""Stack-based SLCA computation over the merged keyword-node stream.

This is the classic one-pass stack algorithm: the keyword nodes of all lists
are merged into a single document-order stream; a stack mirrors the
root-to-current-node path; every frame accumulates the keyword bitmask seen in
its subtree; a frame popped with a full mask is an SLCA unless one of its
descendants already was (tracked with a per-frame flag).

It is provided both as an additional baseline for the ablation benchmark and
as an independent implementation to cross-check the Indexed Lookup / Scan
Eager algorithms in the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..xmltree import DeweyCode
from .base import (
    EmptyKeywordList,
    KeywordLists,
    full_mask,
    merge_matches,
    normalize_lists,
)


@dataclass
class _Frame:
    """One entry of the path stack."""

    component: int
    mask: int = 0
    descendant_slca: bool = False
    results: List[DeweyCode] = field(default_factory=list)


def stack_slca(lists: KeywordLists) -> List[DeweyCode]:
    """SLCA nodes computed with the merged-stream stack algorithm."""
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    matches = merge_matches(normalized)
    target = full_mask(len(normalized))

    stack: List[_Frame] = []
    results: List[DeweyCode] = []

    def pop_frame() -> None:
        frame = stack.pop()
        dewey = DeweyCode([entry.component for entry in stack] + [frame.component])
        is_slca = frame.mask == target and not frame.descendant_slca
        if is_slca:
            results.append(dewey)
        if stack:
            parent = stack[-1]
            parent.mask |= frame.mask
            parent.descendant_slca = (
                parent.descendant_slca or frame.descendant_slca or is_slca
            )

    for match in matches:
        components = match.dewey.components
        # Pop frames that are not ancestors of the incoming match.
        shared = 0
        while shared < len(stack) and shared < len(components) \
                and stack[shared].component == components[shared]:
            shared += 1
        while len(stack) > shared:
            pop_frame()
        # Push the remaining components of the new path.
        for component in components[len(stack):]:
            stack.append(_Frame(component))
        stack[-1].mask |= match.mask

    while stack:
        pop_frame()
    return sorted(results)
