"""ELCA computation — the role of the Indexed Stack algorithm ([12], EDBT 2008).

The paper's ``getLCA`` stage "is directly the Indexed Stack algorithm of
[12]", i.e. it returns **all interesting LCA nodes**, which is the ELCA node
set: nodes whose subtree contains every keyword after excluding the subtrees
of descendants that already contain every keyword.  This module provides an
algorithm with the same input/output contract working purely over the sorted
Dewey posting lists.

Implementation note (substitution documented in DESIGN.md): rather than
transliterating the original Indexed Stack pseudo-code, we use an equivalent
single-pass stack formulation.  The stream of keyword matches is processed in
document order with a path stack; each frame accrues two masks:

* ``subtree_mask`` — keywords anywhere in the frame's subtree (so CA nodes can
  be recognized), and
* ``exclusive_mask`` — keywords contributed by the frame's own matches plus
  the subtrees of children that are **not** CAs (CA children are excluded, as
  the ELCA definition requires).

A frame is an ELCA exactly when its ``exclusive_mask`` covers the query.  The
output equals the naive per-definition computation (property-tested in
``tests/test_lca_properties.py``) while running in
``O(total matches · depth)`` time like the original algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..xmltree import DeweyCode
from .base import (
    EmptyKeywordList,
    KeywordLists,
    full_mask,
    merge_matches,
    normalize_lists,
)


@dataclass
class _Frame:
    """One entry of the path stack used by the ELCA scan."""

    component: int
    subtree_mask: int = 0
    exclusive_mask: int = 0


def indexed_stack_elca(lists: KeywordLists) -> List[DeweyCode]:
    """All ELCA ("interesting LCA") nodes of the posting lists.

    This is the drop-in ``getLCA`` of Algorithm 1: the returned Dewey codes
    are sorted in document (pre-order) order as the later stages require.
    """
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    matches = merge_matches(normalized)
    target = full_mask(len(normalized))

    stack: List[_Frame] = []
    results: List[DeweyCode] = []

    def pop_frame() -> None:
        frame = stack.pop()
        dewey = DeweyCode([entry.component for entry in stack] + [frame.component])
        if frame.exclusive_mask == target:
            results.append(dewey)
        if stack:
            parent = stack[-1]
            parent.subtree_mask |= frame.subtree_mask
            if frame.subtree_mask != target:
                # Only non-CA children contribute to the parent's exclusive
                # ("after exclusion") keyword set.
                parent.exclusive_mask |= frame.subtree_mask

    for match in matches:
        components = match.dewey.components
        shared = 0
        while shared < len(stack) and shared < len(components) \
                and stack[shared].component == components[shared]:
            shared += 1
        while len(stack) > shared:
            pop_frame()
        for component in components[len(stack):]:
            stack.append(_Frame(component))
        stack[-1].subtree_mask |= match.mask
        stack[-1].exclusive_mask |= match.mask

    while stack:
        pop_frame()
    return sorted(results)


def elca_is_slca(elcas: List[DeweyCode]) -> List[bool]:
    """For each ELCA (document order), whether it is also an SLCA.

    An ELCA is an SLCA exactly when no other ELCA is its strict descendant —
    handy for distinguishing "SLCA-related RTFs" (Section 2) without a second
    pass over the data.
    """
    flags: List[bool] = []
    for code in elcas:
        has_descendant = any(
            code.is_ancestor_of(other) for other in elcas if other != code
        )
        flags.append(not has_descendant)
    return flags
