"""ELCA computation — the role of the Indexed Stack algorithm ([12], EDBT 2008).

The paper's ``getLCA`` stage "is directly the Indexed Stack algorithm of
[12]", i.e. it returns **all interesting LCA nodes**, which is the ELCA node
set: nodes whose subtree contains every keyword after excluding the subtrees
of descendants that already contain every keyword.  This module provides an
algorithm with the same input/output contract working purely over the sorted
Dewey posting lists.

Implementation note (substitution documented in DESIGN.md): rather than
transliterating the original Indexed Stack pseudo-code, we use an equivalent
single-pass stack formulation.  The stream of keyword matches is processed in
document order with a path stack; each frame accrues two masks:

* ``subtree_mask`` — keywords anywhere in the frame's subtree (so CA nodes can
  be recognized), and
* ``exclusive_mask`` — keywords contributed by the frame's own matches plus
  the subtrees of children that are **not** CAs (CA children are excluded, as
  the ELCA definition requires).

A frame is an ELCA exactly when its ``exclusive_mask`` covers the query.  The
output equals the naive per-definition computation (property-tested in
``tests/test_lca_properties.py``) while running in
``O(total matches · depth)`` time like the original algorithm.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..index.packed import iter_matches
from ..xmltree import DeweyCode
from .base import (
    EmptyKeywordList,
    KeywordLists,
    full_mask,
    iter_object_matches,
    prepare_lists,
)


def indexed_stack_elca(lists: KeywordLists) -> List[DeweyCode]:
    """All ELCA ("interesting LCA") nodes of the posting lists.

    This is the drop-in ``getLCA`` of Algorithm 1: the returned Dewey codes
    are sorted in document (pre-order) order as the later stages require.

    The scan consumes a document-order ``(components, mask)`` stream — fed
    from the flat packed columns (heap merge with galloping skips) when the
    posting lists are packed, from :func:`~repro.lca.base.merge_matches`
    otherwise — and keeps the path stack as three parallel lists of unboxed
    values; only the reported ELCAs are materialized as :class:`DeweyCode`.
    """
    try:
        packed, normalized = prepare_lists(lists)
    except EmptyKeywordList:
        return []
    if packed is not None:
        stream: Iterator[Tuple[Iterable[int], int]] = iter_matches(packed)
        target = full_mask(len(packed))
    else:
        stream = iter_object_matches(normalized)
        target = full_mask(len(normalized))
    return _scan(stream, target)


def _scan(stream: Iterator[Tuple[Iterable[int], int]],
          target: int) -> List[DeweyCode]:
    """One pass over the match stream, accruing the two per-frame masks."""
    components: List[int] = []      # the path stack, one entry per frame
    subtree_masks: List[int] = []   # keywords anywhere in the frame's subtree
    exclusive_masks: List[int] = [] # own matches + non-CA children's subtrees
    results: List[DeweyCode] = []

    def pop_frame() -> None:
        subtree = subtree_masks.pop()
        exclusive = exclusive_masks.pop()
        if exclusive == target:
            # lint: allow(hot-loop-purity) result boundary: ELCAs survive
            results.append(DeweyCode._from_tuple(tuple(components)))
        components.pop()
        if subtree_masks:
            subtree_masks[-1] |= subtree
            if subtree != target:
                # Only non-CA children contribute to the parent's exclusive
                # ("after exclusion") keyword set.
                exclusive_masks[-1] |= subtree

    for comps, mask in stream:
        depth = len(components)
        limit = min(depth, len(comps))
        shared = 0
        while shared < limit and components[shared] == comps[shared]:
            shared += 1
        while len(components) > shared:
            pop_frame()
        for component in comps[shared:]:
            components.append(component)
            subtree_masks.append(0)
            exclusive_masks.append(0)
        subtree_masks[-1] |= mask
        exclusive_masks[-1] |= mask

    while components:
        pop_frame()
    return sorted(results)


def elca_is_slca(elcas: List[DeweyCode]) -> List[bool]:
    """For each ELCA (document order), whether it is also an SLCA.

    An ELCA is an SLCA exactly when no other ELCA is its strict descendant —
    handy for distinguishing "SLCA-related RTFs" (Section 2) without a second
    pass over the data.
    """
    flags: List[bool] = []
    for code in elcas:
        has_descendant = any(
            code.is_ancestor_of(other) for other in elcas if other != code
        )
        flags.append(not has_descendant)
    return flags
