"""LCA-family algorithms over Dewey posting lists (SLCA, ELCA, references)."""

from .base import (
    EmptyKeywordList,
    KeywordLists,
    KeywordMatch,
    common_ancestor_masks,
    full_mask,
    keyword_bit_index,
    merge_matches,
    normalize_lists,
    prepare_lists,
    remove_ancestors,
    remove_ancestors_slices,
    remove_descendants,
)
from .naive import (
    naive_common_ancestors,
    naive_elca,
    naive_elca_exhaustive,
    naive_lca_candidates,
    naive_slca,
)
from .indexed_lookup import closest_match_lca, indexed_lookup_eager_slca
from .scan_eager import scan_eager_slca
from .stack_slca import stack_slca
from .indexed_stack import elca_is_slca, indexed_stack_elca

# Registry used by the engine, the CLI and the ablation benchmarks.
SLCA_ALGORITHMS = {
    "naive": naive_slca,
    "indexed-lookup-eager": indexed_lookup_eager_slca,
    "scan-eager": scan_eager_slca,
    "stack": stack_slca,
}

ELCA_ALGORITHMS = {
    "naive": naive_elca,
    "naive-exhaustive": naive_elca_exhaustive,
    "indexed-stack": indexed_stack_elca,
}

__all__ = [
    "EmptyKeywordList",
    "KeywordLists",
    "KeywordMatch",
    "normalize_lists",
    "prepare_lists",
    "remove_ancestors_slices",
    "full_mask",
    "merge_matches",
    "remove_ancestors",
    "remove_descendants",
    "common_ancestor_masks",
    "keyword_bit_index",
    "naive_lca_candidates",
    "naive_common_ancestors",
    "naive_slca",
    "naive_elca",
    "naive_elca_exhaustive",
    "indexed_lookup_eager_slca",
    "closest_match_lca",
    "scan_eager_slca",
    "stack_slca",
    "indexed_stack_elca",
    "elca_is_slca",
    "SLCA_ALGORITHMS",
    "ELCA_ALGORITHMS",
]
