"""Indexed Lookup Eager SLCA computation (Xu & Papakonstantinou, SIGMOD 2005).

The algorithm exploits two facts proved in that paper:

1. ``slca(S_1, ..., S_k) = slca(slca(S_1, ..., S_{k-1}), S_k)`` — the SLCA of
   many lists can be computed by folding the lists two at a time.
2. For a single node ``v`` and a list ``S``, the deepest ancestor of ``v``
   that is a CA of ``{v} ∪ S`` is the deeper of ``lca(v, pred(v, S))`` and
   ``lca(v, succ(v, S))`` where ``pred``/``succ`` are the closest neighbours
   of ``v`` in ``S`` in document order — found by binary search on the sorted
   Dewey list (the "indexed lookup").

The fold starts from the smallest list so the per-step work is
``O(|S_min| · log |S_max| · depth)``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

from ..xmltree import DeweyCode
from .base import EmptyKeywordList, KeywordLists, normalize_lists, remove_ancestors


def indexed_lookup_eager_slca(lists: KeywordLists) -> List[DeweyCode]:
    """SLCA nodes of the posting lists via the Indexed Lookup Eager strategy."""
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    # Fold starting from the smallest list (the paper's eager strategy).
    ordered = sorted(normalized, key=len)
    current = remove_ancestors(ordered[0])
    for other in ordered[1:]:
        current = _slca_of_two(current, other)
        if not current:
            return []
    return sorted(current)


def closest_match_lca(node: DeweyCode, sorted_list: Sequence[DeweyCode]) -> DeweyCode:
    """The deepest LCA of ``node`` with any element of ``sorted_list``.

    Implements the predecessor/successor lookup of the Indexed Lookup
    algorithm: only the two neighbours of ``node`` in document order can give
    the deepest LCA.
    """
    if not sorted_list:
        raise EmptyKeywordList("cannot match against an empty list")
    position = bisect_left(sorted_list, node)
    best: Optional[DeweyCode] = None
    for index in (position - 1, position):
        if 0 <= index < len(sorted_list):
            candidate = node.common_prefix(sorted_list[index])
            if best is None or len(candidate) > len(best):
                best = candidate
    assert best is not None  # at least one neighbour exists
    return best


def _slca_of_two(left: Sequence[DeweyCode],
                 right: Sequence[DeweyCode]) -> List[DeweyCode]:
    """``slca(left, right)`` where both inputs are document-order sorted."""
    candidates = [closest_match_lca(node, right) for node in left]
    return remove_ancestors(candidates)
