"""Indexed Lookup Eager SLCA computation (Xu & Papakonstantinou, SIGMOD 2005).

The algorithm exploits two facts proved in that paper:

1. ``slca(S_1, ..., S_k) = slca(slca(S_1, ..., S_{k-1}), S_k)`` — the SLCA of
   many lists can be computed by folding the lists two at a time.
2. For a single node ``v`` and a list ``S``, the deepest ancestor of ``v``
   that is a CA of ``{v} ∪ S`` is the deeper of ``lca(v, pred(v, S))`` and
   ``lca(v, succ(v, S))`` where ``pred``/``succ`` are the closest neighbours
   of ``v`` in ``S`` in document order — found by binary search on the sorted
   Dewey list (the "indexed lookup").

The fold starts from the smallest list so the per-step work is
``O(|S_min| · log |S_max| · depth)``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

from ..index.packed import PackedDeweyList, deepest_neighbor_prefix_len
from ..xmltree import DeweyCode
from .base import (
    EmptyKeywordList,
    KeywordLists,
    prepare_lists,
    remove_ancestors,
    remove_ancestors_slices,
)


def indexed_lookup_eager_slca(lists: KeywordLists) -> List[DeweyCode]:
    """SLCA nodes of the posting lists via the Indexed Lookup Eager strategy."""
    try:
        packed, normalized = prepare_lists(lists)
    except EmptyKeywordList:
        return []
    if packed is not None:
        return _packed_fold(packed)
    # Fold starting from the smallest list (the paper's eager strategy).
    ordered = sorted(normalized, key=len)
    current = remove_ancestors(ordered[0])
    for other in ordered[1:]:
        current = _slca_of_two(current, other)
        if not current:
            return []
    return sorted(current)


def _packed_fold(packed: List[PackedDeweyList]) -> List[DeweyCode]:
    """The same fold on flat columns: binary search + prefix-length compares.

    The working set is a list of raw component slices; the predecessor /
    successor lookups bisect the packed ``offsets`` column directly and the
    deepest-LCA choice is a pair of common-prefix-length computations.  Codes
    are materialized only for the final SLCA set.
    """
    ordered = sorted(packed, key=len)
    current = remove_ancestors_slices(list(ordered[0].iter_slices()))
    for other in ordered[1:]:
        candidates = []
        append = candidates.append
        for node in current:
            best = deepest_neighbor_prefix_len(node, other,
                                               other.bisect_left(node))
            append(node[:best])
        current = remove_ancestors_slices(candidates)
        if not current:
            return []
    # lint: allow(hot-loop-purity) result boundary: the final SLCA set
    return [DeweyCode._from_tuple(tuple(comps)) for comps in current]


def closest_match_lca(node: DeweyCode, sorted_list: Sequence[DeweyCode]) -> DeweyCode:
    """The deepest LCA of ``node`` with any element of ``sorted_list``.

    Implements the predecessor/successor lookup of the Indexed Lookup
    algorithm: only the two neighbours of ``node`` in document order can give
    the deepest LCA.
    """
    if not sorted_list:
        raise EmptyKeywordList("cannot match against an empty list")
    position = bisect_left(sorted_list, node)
    best: Optional[DeweyCode] = None
    for index in (position - 1, position):
        if 0 <= index < len(sorted_list):
            candidate = node.common_prefix(sorted_list[index])
            if best is None or len(candidate) > len(best):
                best = candidate
    assert best is not None  # at least one neighbour exists
    return best


def _slca_of_two(left: Sequence[DeweyCode],
                 right: Sequence[DeweyCode]) -> List[DeweyCode]:
    """``slca(left, right)`` where both inputs are document-order sorted."""
    candidates = [closest_match_lca(node, right) for node in left]
    return remove_ancestors(candidates)
