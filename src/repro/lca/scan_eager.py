"""Scan Eager SLCA computation (Xu & Papakonstantinou, SIGMOD 2005).

Variant of the Indexed Lookup algorithm for the case where the keyword
frequencies are of comparable size: instead of binary-searching the closest
match of every node of the smallest list, all lists are scanned with cursors
that only move forward.  The asymptotic cost is the sum of the list lengths
(times the tree depth for the Dewey prefix operations).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..index.packed import PackedDeweyList, deepest_neighbor_prefix_len
from ..xmltree import DeweyCode
from .base import (
    EmptyKeywordList,
    KeywordLists,
    prepare_lists,
    remove_ancestors,
    remove_ancestors_slices,
)


def scan_eager_slca(lists: KeywordLists) -> List[DeweyCode]:
    """SLCA nodes computed with forward-only cursors over every list."""
    try:
        packed, normalized = prepare_lists(lists)
    except EmptyKeywordList:
        return []
    if packed is not None:
        return _packed_scan(packed)
    if len(normalized) == 1:
        return remove_ancestors(normalized[0])

    anchor = min(normalized, key=len)
    others = [deweys for deweys in normalized if deweys is not anchor]
    cursors = [0] * len(others)

    candidates: List[DeweyCode] = []
    for node in anchor:
        deepest: Optional[DeweyCode] = None
        for which, deweys in enumerate(others):
            cursors[which] = _advance(deweys, cursors[which], node)
            best = _closest_lca(node, deweys, cursors[which])
            deepest = best if deepest is None else _shallower(deepest, best)
        if deepest is not None:
            candidates.append(deepest)
    return remove_ancestors(candidates)


def _packed_scan(packed: List[PackedDeweyList]) -> List[DeweyCode]:
    """Forward-only cursors over flat columns (galloping advances).

    For every anchor slice the per-list deepest-LCA depth is the larger
    common-prefix length with the cursor's predecessor/successor; the combined
    candidate is the anchor prefix cut at the *shallowest* of those depths.
    Nothing is materialized until the final SLCA set.
    """
    if len(packed) == 1:
        # lint: allow(hot-loop-purity) result boundary: the final SLCA set
        return [DeweyCode._from_tuple(tuple(comps))
                for comps in remove_ancestors_slices(
                    list(packed[0].iter_slices()))]
    anchor = min(packed, key=len)
    others = [plist for plist in packed if plist is not anchor]
    cursors = [0] * len(others)

    candidates = []
    append = candidates.append
    for node in anchor.iter_slices():
        depth: Optional[int] = None
        for which, plist in enumerate(others):
            cursor = plist.gallop_left(node, cursors[which])
            cursors[which] = cursor
            best = deepest_neighbor_prefix_len(node, plist, cursor)
            if depth is None or best < depth:
                depth = best
        append(node[:depth])
    # lint: allow(hot-loop-purity) result boundary: the final SLCA set
    return [DeweyCode._from_tuple(tuple(comps))
            for comps in remove_ancestors_slices(candidates)]


def _advance(deweys: Sequence[DeweyCode], cursor: int, node: DeweyCode) -> int:
    """Move the cursor forward to the first element >= node (never backward)."""
    while cursor < len(deweys) and deweys[cursor] < node:
        cursor += 1
    return cursor


def _closest_lca(node: DeweyCode, deweys: Sequence[DeweyCode], cursor: int) -> DeweyCode:
    """Deepest LCA of ``node`` with the predecessor/successor at the cursor."""
    best: Optional[DeweyCode] = None
    for index in (cursor - 1, cursor):
        if 0 <= index < len(deweys):
            candidate = node.common_prefix(deweys[index])
            if best is None or len(candidate) > len(best):
                best = candidate
    assert best is not None
    return best


def _shallower(first: DeweyCode, second: DeweyCode) -> DeweyCode:
    """Of two ancestors of a common node, the one closer to the root.

    When folding the per-list deepest LCAs for one anchor node, the combined
    SLCA candidate is the shallowest of them (every keyword must be reachable
    below it), and since both are ancestors of the same anchor they are
    comparable by depth.
    """
    return first if len(first) <= len(second) else second
