"""Scan Eager SLCA computation (Xu & Papakonstantinou, SIGMOD 2005).

Variant of the Indexed Lookup algorithm for the case where the keyword
frequencies are of comparable size: instead of binary-searching the closest
match of every node of the smallest list, all lists are scanned with cursors
that only move forward.  The asymptotic cost is the sum of the list lengths
(times the tree depth for the Dewey prefix operations).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..xmltree import DeweyCode
from .base import EmptyKeywordList, KeywordLists, normalize_lists, remove_ancestors


def scan_eager_slca(lists: KeywordLists) -> List[DeweyCode]:
    """SLCA nodes computed with forward-only cursors over every list."""
    try:
        normalized = normalize_lists(lists)
    except EmptyKeywordList:
        return []
    if len(normalized) == 1:
        return remove_ancestors(normalized[0])

    anchor = min(normalized, key=len)
    others = [deweys for deweys in normalized if deweys is not anchor]
    cursors = [0] * len(others)

    candidates: List[DeweyCode] = []
    for node in anchor:
        deepest: Optional[DeweyCode] = None
        for which, deweys in enumerate(others):
            cursors[which] = _advance(deweys, cursors[which], node)
            best = _closest_lca(node, deweys, cursors[which])
            deepest = best if deepest is None else _shallower(deepest, best)
        if deepest is not None:
            candidates.append(deepest)
    return remove_ancestors(candidates)


def _advance(deweys: Sequence[DeweyCode], cursor: int, node: DeweyCode) -> int:
    """Move the cursor forward to the first element >= node (never backward)."""
    while cursor < len(deweys) and deweys[cursor] < node:
        cursor += 1
    return cursor


def _closest_lca(node: DeweyCode, deweys: Sequence[DeweyCode], cursor: int) -> DeweyCode:
    """Deepest LCA of ``node`` with the predecessor/successor at the cursor."""
    best: Optional[DeweyCode] = None
    for index in (cursor - 1, cursor):
        if 0 <= index < len(deweys):
            candidate = node.common_prefix(deweys[index])
            if best is None or len(candidate) > len(best):
                best = candidate
    assert best is not None
    return best


def _shallower(first: DeweyCode, second: DeweyCode) -> DeweyCode:
    """Of two ancestors of a common node, the one closer to the root.

    When folding the per-list deepest LCAs for one anchor node, the combined
    SLCA candidate is the shallowest of them (every keyword must be reachable
    below it), and since both are ancestors of the same anchor they are
    comparable by depth.
    """
    return first if len(first) <= len(second) else second
