"""repro — reproduction of "Retrieving Meaningful Relaxed Tightest Fragments
for XML Keyword Search" (Kong, Gilleron, Lemay; EDBT 2009).

The package implements the paper's ValidRTF algorithm, the MaxMatch baseline,
the Relaxed Tightest Fragment result model and every substrate they need
(Dewey-coded XML trees, tokenization, inverted indexes, SLCA/ELCA algorithms,
a relational shredding store, dataset generators) plus the benchmark harness
that regenerates the paper's Figures 5 and 6.

Quickstart
----------
>>> from repro import SearchEngine, publications_tree
>>> engine = SearchEngine(publications_tree())
>>> result = engine.search("xml keyword search")
>>> for fragment in result:
...     print(fragment.root, fragment.size)
"""

from .core import (
    ALGORITHM_NAMES,
    CacheStats,
    ComparisonOutcome,
    Fragment,
    QueryResultCache,
    MaxMatch,
    MaxMatchSLCA,
    PrunedFragment,
    Query,
    SearchEngine,
    SearchResult,
    ValidRTF,
    ValidRTFSLCA,
    effectiveness,
    run_maxmatch,
    run_validrtf,
)
from .corpus import (
    CorpusPostingSource,
    CorpusSearchEngine,
    CorpusSearchResult,
)
from .datasets import (
    PAPER_QUERIES,
    publications_tree,
    team_tree,
)
from .index import InvertedIndex
from .xmltree import (
    DeweyCode,
    XMLNode,
    XMLTree,
    parse_file,
    parse_string,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SearchEngine",
    "CorpusSearchEngine",
    "CorpusSearchResult",
    "CorpusPostingSource",
    "ComparisonOutcome",
    "ALGORITHM_NAMES",
    "QueryResultCache",
    "CacheStats",
    "Query",
    "Fragment",
    "PrunedFragment",
    "SearchResult",
    "ValidRTF",
    "ValidRTFSLCA",
    "MaxMatch",
    "MaxMatchSLCA",
    "run_validrtf",
    "run_maxmatch",
    "effectiveness",
    "InvertedIndex",
    "DeweyCode",
    "XMLNode",
    "XMLTree",
    "parse_string",
    "parse_file",
    "publications_tree",
    "team_tree",
    "PAPER_QUERIES",
]
