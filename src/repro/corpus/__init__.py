"""Multi-document corpus retrieval: many XML documents, one searchable index.

The ROADMAP's north star is a system serving a *corpus* — all of DBLP's
records, many uploaded documents — in one request, not one XML document per
index.  This package layers that workload onto the existing stack without
forking it:

* :mod:`repro.corpus.source` — :class:`CorpusPostingSource`, the
  doc-partitioned posting organisation (one per-document posting source per
  doc id, grouped into shards that own whole documents), honouring the
  :class:`~repro.index.source.PostingSource` protocol corpus-wide through
  doc-ordinal-prefixed Dewey codes;
* :mod:`repro.corpus.engine` — :class:`CorpusSearchEngine`, which runs the
  SLCA/ELCA/RTF pipeline per document and unions the doc-id-tagged answers,
  with cross-document top-k rank merging;
* :mod:`repro.corpus.result` — the doc-tagged result model.

The correctness contract — **corpus results equal the union of per-document
single-document results** — is enforced by the differential fuzz harness
(``tests/test_corpus_fuzz.py``) across backends, representations and all
four algorithms.
"""

from .engine import CorpusComparisonOutcome, CorpusSearchEngine
from .result import CorpusSearchResult, DocumentResult
from .source import (
    CORPUS_DOC_BACKENDS,
    CorpusPostingSource,
    CorpusShard,
    corpus_from_store,
    corpus_from_trees,
    shard_of_document,
)

__all__ = [
    "CORPUS_DOC_BACKENDS",
    "CorpusComparisonOutcome",
    "CorpusPostingSource",
    "CorpusSearchEngine",
    "CorpusSearchResult",
    "CorpusShard",
    "DocumentResult",
    "corpus_from_store",
    "corpus_from_trees",
    "shard_of_document",
]
