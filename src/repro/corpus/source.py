"""Doc-partitioned corpus posting sources.

A corpus is **N per-document posting column sets keyed by doc id**, not one
fused column set with a doc-id component baked into every posting.  The
reasons, in order:

* LCA semantics never cross a document boundary, so every query is going to
  run the SLCA/ELCA/RTF hot loops per document anyway — a fused cross-corpus
  posting list would be split right back apart before stage 2, after paying
  an extra component on every comparison and ancestor test.
* Sharding by document (each shard owns *whole* documents) means a shard
  never merges across documents internally, and incremental ingestion
  (``repro.cli index --add``) appends one new column set without rewriting
  any existing one.
* The per-document sources are the existing, already-parity-tested backends
  (:class:`~repro.index.inverted.InvertedIndex`, the sqlite/sharded sources),
  reused unchanged.

The corpus still honours the :class:`~repro.index.source.PostingSource`
protocol: corpus-wide posting lists are served as the concatenation of the
per-document lists, each prefixed with the document's ordinal
(:func:`~repro.index.packed.prefix_packed`), which keeps the "strictly
sorted, duplicate-free" invariant because ordinals strictly increase in
doc-id order.  Node lookups route on the ordinal component.
"""

from __future__ import annotations

import zlib
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..index import InvertedIndex, PostingList, PostingSource
from ..index.packed import (
    EMPTY_PACKED,
    PackedDeweyList,
    REPRESENTATIONS,
    concat_packed,
    prefix_postings,
)
from ..storage import (
    DEFAULT_POSTING_LRU_SIZE,
    MemoryStore,
    ShardedPostingSource,
    SQLiteStore,
    source_for_store,
)
from ..storage.errors import DocumentNotFound
from ..xmltree import DeweyCode, XMLTree

#: Per-document backends :func:`corpus_from_trees` can build.
CORPUS_DOC_BACKENDS = ("memory", "sqlite", "sharded")


def unknown_documents_error(unknown: Sequence[str],
                            stored: Sequence[str]) -> DocumentNotFound:
    """The one error every corpus layer raises for unknown doc ids."""
    label = "document" if len(unknown) == 1 else "document(s)"
    return DocumentNotFound(
        f"no corpus {label} named {', '.join(unknown)}; "
        f"stored: {', '.join(stored)}")


def shard_of_document(doc_id: str, shard_count: int) -> int:
    """Deterministic doc-id -> shard routing (whole documents per shard)."""
    if shard_count < 1:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    return zlib.crc32(doc_id.encode("utf-8")) % shard_count


class CorpusShard:
    """One shard of a corpus: a group of whole documents.

    A shard owns every posting and node row of its documents and nothing of
    any other document — the doc-partitioned organisation of disk-based
    keyword search systems — so per-shard work never merges across documents.
    """

    __slots__ = ("index", "doc_ids", "_sources")

    def __init__(self, index: int, doc_ids: Tuple[str, ...],
                 sources: Mapping[str, PostingSource]) -> None:
        self.index = index
        self.doc_ids = doc_ids
        self._sources = dict(sources)

    def source(self, doc_id: str) -> PostingSource:
        """The posting source of one owned document."""
        return self._sources[doc_id]

    def keyword_nodes_by_doc(self, keywords: Sequence[str]
                             ) -> Dict[str, Dict[str, Sequence[DeweyCode]]]:
        """Per-document ``D_i`` lists for every owned document (batched)."""
        return {doc_id: self._sources[doc_id].keyword_nodes(keywords)
                for doc_id in self.doc_ids}

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __repr__(self) -> str:
        return f"CorpusShard(index={self.index}, documents={len(self.doc_ids)})"


class CorpusPostingSource:
    """Posting source over many documents, sharded by document.

    Parameters
    ----------
    documents:
        Mapping of doc id to that document's
        :class:`~repro.index.source.PostingSource`.  Doc ids are sorted; the
        position of a doc id in the sorted order is its **ordinal**, the
        component prefixed onto corpus-wide Dewey codes.
    shard_count:
        Number of doc-partitioned shards the documents are grouped into
        (clamped to the document count).  Each shard owns whole documents.
    """

    def __init__(self, documents: Mapping[str, PostingSource],
                 shard_count: int = 1) -> None:
        items = sorted(dict(documents).items())
        if not items:
            raise ValueError("a corpus needs at least one document")
        self.doc_ids: Tuple[str, ...] = tuple(doc_id for doc_id, _ in items)
        self._sources = dict(items)
        self._ordinals = {doc_id: ordinal
                          for ordinal, doc_id in enumerate(self.doc_ids)}
        shard_count = max(1, min(shard_count, len(items)))
        buckets: List[List[str]] = [[] for _ in range(shard_count)]
        for doc_id in self.doc_ids:
            buckets[shard_of_document(doc_id, shard_count)].append(doc_id)
        self.shards: Tuple[CorpusShard, ...] = tuple(
            CorpusShard(index, tuple(bucket),
                        {doc_id: self._sources[doc_id] for doc_id in bucket})
            for index, bucket in enumerate(buckets))
        self.representation = (
            "packed" if all(getattr(source, "representation", "object") == "packed"
                            for source in self._sources.values()) else "object")
        self.tokenizer = getattr(items[0][1], "tokenizer", None)
        if self.tokenizer is None:
            from ..text import DEFAULT_TOKENIZER
            self.tokenizer = DEFAULT_TOKENIZER

    # ------------------------------------------------------------------ #
    # Corpus accessors
    # ------------------------------------------------------------------ #
    def document_source(self, doc_id: str) -> PostingSource:
        """The per-document posting source of one doc id."""
        try:
            return self._sources[doc_id]
        except KeyError:
            raise unknown_documents_error([doc_id], self.doc_ids) from None

    def ordinal_of(self, doc_id: str) -> int:
        """The ordinal prefixed onto this document's corpus-wide codes."""
        try:
            return self._ordinals[doc_id]
        except KeyError:
            raise unknown_documents_error([doc_id], self.doc_ids) from None

    def shard_of(self, doc_id: str) -> CorpusShard:
        """The shard owning one document."""
        self.ordinal_of(doc_id)  # raises on unknown ids
        return self.shards[shard_of_document(doc_id, len(self.shards))]

    def __len__(self) -> int:
        return len(self.doc_ids)

    # ------------------------------------------------------------------ #
    # PostingSource protocol (corpus-wide, doc-ordinal-prefixed)
    # ------------------------------------------------------------------ #
    @property
    def source_id(self) -> str:
        """Composite identity of the corpus (representation-free)."""
        inner = ",".join(
            f"{doc_id}={self._sources[doc_id].source_id}"
            for doc_id in self.doc_ids)
        return f"corpus[{inner}]"

    def _concat(self, lists: Sequence[Sequence[DeweyCode]]
                ) -> Sequence[DeweyCode]:
        """Stitch per-document prefixed lists (already globally sorted)."""
        if all(isinstance(plist, PackedDeweyList) for plist in lists):
            return concat_packed(list(lists))
        merged: List[DeweyCode] = []
        for plist in lists:
            merged.extend(plist)
        return tuple(merged)

    def postings(self, keyword: str) -> PostingList:
        """The corpus-wide, doc-ordinal-prefixed posting list of one keyword."""
        normalized = self.tokenizer.normalize_keyword(keyword)
        lists: List[Sequence[DeweyCode]] = []
        for doc_id in self.doc_ids:
            source = self._sources[doc_id]
            ordinal = self._ordinals[doc_id]
            if isinstance(source, InvertedIndex):
                prefixed = source.prefixed_postings(normalized, ordinal)
            else:
                prefixed = prefix_postings(
                    source.postings(normalized).deweys, ordinal)
            if len(prefixed):
                lists.append(prefixed)
        merged = self._concat(lists) if lists else self._empty()
        return PostingList(normalized, merged)

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, Sequence[DeweyCode]]:
        """Corpus-wide ``D_i`` lists, fetched shard by shard, doc-batched."""
        normalized = self.tokenizer.normalize_query(query)
        per_doc: Dict[str, Dict[str, Sequence[DeweyCode]]] = {}
        for shard in self.shards:
            per_doc.update(shard.keyword_nodes_by_doc(normalized))
        result: Dict[str, Sequence[DeweyCode]] = {}
        for keyword in normalized:
            lists = []
            for doc_id in self.doc_ids:
                deweys = per_doc[doc_id].get(keyword, ())
                if len(deweys):
                    lists.append(prefix_postings(
                        deweys, self._ordinals[doc_id]))
            result[keyword] = self._concat(lists) if lists else self._empty()
        return result

    def frequency(self, keyword: str) -> int:
        """Corpus-wide keyword-node count (documents partition the corpus)."""
        return sum(self._sources[doc_id].frequency(keyword)
                   for doc_id in self.doc_ids)

    def vocabulary(self) -> List[str]:
        """Sorted union of every document's vocabulary."""
        words = set()
        for doc_id in self.doc_ids:
            words.update(self._sources[doc_id].vocabulary())
        return sorted(words)

    def node_label(self, dewey: DeweyCode) -> Optional[str]:
        """The label of one corpus node (routed on the ordinal component)."""
        routed = self._route(dewey)
        if routed is None:
            return None
        source, inner = routed
        return source.node_label(inner)

    def node_words(self, dewey: DeweyCode) -> FrozenSet[str]:
        """The content word set of one corpus node."""
        routed = self._route(dewey)
        if routed is None:
            return frozenset()
        source, inner = routed
        return source.node_words(inner)

    def prefetch_nodes(self, nodes: Iterable[DeweyCode],
                       keyword_nodes: Iterable[DeweyCode]) -> None:
        """Strip ordinals and let each document's source batch its subset."""
        node_buckets: Dict[int, List[DeweyCode]] = {}
        keyword_buckets: Dict[int, List[DeweyCode]] = {}
        for dewey in nodes:
            routed = self._route(dewey)
            if routed is not None:
                node_buckets.setdefault(dewey.components[0],
                                        []).append(routed[1])
        for dewey in keyword_nodes:
            routed = self._route(dewey)
            if routed is not None:
                keyword_buckets.setdefault(dewey.components[0],
                                           []).append(routed[1])
        for ordinal in sorted(set(node_buckets) | set(keyword_buckets)):
            source = self._sources[self.doc_ids[ordinal]]
            prefetch = getattr(source, "prefetch_nodes", None)
            if prefetch is not None:
                prefetch(node_buckets.get(ordinal, ()),
                         keyword_buckets.get(ordinal, ()))

    # ------------------------------------------------------------------ #
    def _empty(self) -> Sequence[DeweyCode]:
        return EMPTY_PACKED if self.representation == "packed" else ()

    def _route(self, dewey: DeweyCode
               ) -> Optional[Tuple[PostingSource, DeweyCode]]:
        """``(source, inner code)`` of a corpus-wide code, or ``None``."""
        components = dewey.components
        if len(components) < 2 or not 0 <= components[0] < len(self.doc_ids):
            return None
        source = self._sources[self.doc_ids[components[0]]]
        return source, DeweyCode._from_tuple(components[1:])

    def __repr__(self) -> str:
        return (f"CorpusPostingSource(documents={len(self.doc_ids)}, "
                f"shards={len(self.shards)}, "
                f"representation={self.representation!r})")


# ---------------------------------------------------------------------- #
# Construction helpers
# ---------------------------------------------------------------------- #
def corpus_from_trees(trees: Mapping[str, XMLTree], backend: str = "memory",
                      representation: str = "packed", shard_count: int = 1,
                      lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                      doc_shards: int = 2) -> CorpusPostingSource:
    """Build a corpus source by ingesting one tree per doc id.

    ``backend`` selects the per-document source kind: ``memory`` builds one
    :class:`InvertedIndex` per document; ``sqlite`` creates **one in-process
    store per corpus shard** and stores each document whole into its shard's
    store (doc-partitioned disk layout); ``sharded`` Dewey-shards each
    document over ``doc_shards`` stores (a sharded source per document,
    inside the doc-partitioned corpus).
    """
    if representation not in REPRESENTATIONS:
        raise ValueError(f"unknown representation {representation!r}; "
                         f"expected one of {REPRESENTATIONS}")
    if backend not in CORPUS_DOC_BACKENDS:
        raise ValueError(f"unknown corpus document backend {backend!r}; "
                         f"expected one of {CORPUS_DOC_BACKENDS}")
    if not trees:
        raise ValueError("a corpus needs at least one document")
    doc_ids = sorted(trees)
    sources: Dict[str, object] = {}
    if backend == "memory":
        for doc_id in doc_ids:
            sources[doc_id] = InvertedIndex(trees[doc_id],
                                            representation=representation)
    elif backend == "sqlite":
        count = max(1, min(shard_count, len(doc_ids)))
        stores = [SQLiteStore() for _ in range(count)]
        for doc_id in doc_ids:
            store = stores[shard_of_document(doc_id, count)]
            store.store_tree(trees[doc_id], doc_id)
            sources[doc_id] = source_for_store(store, doc_id, lru_size,
                                               representation)
    else:  # sharded: Dewey-sharded per document, doc-partitioned overall
        for doc_id in doc_ids:
            sources[doc_id] = ShardedPostingSource.from_tree(
                trees[doc_id], shard_count=doc_shards, name=doc_id,
                representation=representation)
    return CorpusPostingSource(sources, shard_count=shard_count)


def corpus_from_store(store: Union[MemoryStore, SQLiteStore],
                      documents: Optional[Sequence[str]] = None,
                      representation: str = "packed",
                      lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                      ) -> CorpusPostingSource:
    """A corpus source over the documents of one (already-ingested) store.

    ``documents`` defaults to every document the store holds; a store is one
    shard (it owns its documents whole), so the shard count is 1.
    """
    doc_ids = list(documents) if documents is not None else store.documents()
    if not doc_ids:
        raise ValueError("the store holds no indexed documents")
    stored = set(store.documents())
    unknown = sorted(set(doc_ids) - stored)
    if unknown:
        raise unknown_documents_error(unknown, sorted(stored))
    sources = {doc_id: source_for_store(store, doc_id, lru_size,
                                        representation)
               for doc_id in doc_ids}
    return CorpusPostingSource(sources, shard_count=1)
