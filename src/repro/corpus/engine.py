"""Cross-document keyword search: one engine over a whole corpus.

:class:`CorpusSearchEngine` mirrors the :class:`~repro.core.engine.SearchEngine`
surface (``search`` / ``search_many`` / ``compare`` / ``rank`` /
``render_result`` / cache plumbing) so the serving stack, the CLI and the
benchmark harness can drive a corpus exactly like a single document — the
differences are that every answer is doc-id-tagged
(:class:`~repro.corpus.result.CorpusSearchResult`), every retrieval method
accepts a ``doc_filter``, and ranking merges the per-document rankings into
one corpus-level top-k (:func:`~repro.core.ranking.merge_ranked`).

Internally the engine owns one single-document :class:`SearchEngine` per
corpus document, each running over the corpus source's per-document posting
source — the SLCA/ELCA/RTF pipeline runs per document (LCA semantics never
cross documents) and the corpus answer is the union of the per-document
answers, the contract the differential fuzz harness enforces.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.cache import CacheStats
from ..core.engine import ComparisonOutcome, SearchEngine
from ..core.fragments import SearchResult
from ..core.errors import SearchError
from ..core.metrics import summarize_reports
from ..core.query import Query, QueryLike
from ..obs import MetricsRegistry, Trace
from ..obs import names as metric_names
from ..core.ranking import (
    DocumentRankedFragment,
    RankingWeights,
    ScoreBounds,
    bounds_from_impacts,
    combine_score,
    merge_ranked,
    rank_result,
)
from ..index import KeywordImpact, keyword_impact
from ..storage import MemoryStore, SQLiteStore
from ..storage.errors import DocumentNotFound
from ..xmltree import XMLTree
from .result import CorpusSearchResult, DocumentResult
from .source import (
    CorpusPostingSource,
    corpus_from_store,
    corpus_from_trees,
    unknown_documents_error,
)


@dataclass(frozen=True)
class RankedCorpusSearch:
    """Outcome of one ranked corpus retrieval, with visit accounting.

    ``ranked`` is the corpus-level (top-k capped) ranking.  ``docs_visited``
    counts the documents whose search pipeline actually ran;
    ``docs_skipped`` the ones the threshold driver proved irrelevant from
    impact metadata alone (missing keyword, or score upper bound beaten by
    the k-th ranked score).  The exhaustive path visits every selected
    document, so ``docs_visited == docs_selected`` there — the
    early-terminated/exhaustive ratio of these counters is the benchmark's
    headline number.
    """

    query: Query
    algorithm: str
    top_k: Optional[int]
    early_terminated: bool
    ranked: Tuple[DocumentRankedFragment, ...]
    docs_selected: int
    docs_visited: int
    docs_skipped: int
    bounds: ScoreBounds


@dataclass(frozen=True)
class CorpusComparisonOutcome:
    """ValidRTF vs MaxMatch over a corpus: per-document outcomes + summary."""

    validrtf: CorpusSearchResult
    maxmatch: CorpusSearchResult
    documents: Tuple[Tuple[str, ComparisonOutcome], ...]
    summary: Dict[str, float]


class CorpusSearchEngine:
    """Keyword search over many XML documents with doc-id-tagged answers.

    Parameters
    ----------
    source:
        The :class:`~repro.corpus.source.CorpusPostingSource` serving the
        per-document posting sources.
    trees:
        Optional resident trees per doc id (memory-backed corpora keep them;
        disk-backed corpora run tree-free like the single-document sqlite
        engines).  Resident trees enable full fragment rendering and ranking.
    cid_mode, cache_size:
        Forwarded to every per-document engine; cached results are keyed per
        document (each per-document engine owns its cache).
    """

    #: Duck-typing marker the serving layer dispatches ``doc_filter`` on.
    is_corpus = True

    def __init__(self, source: CorpusPostingSource,
                 trees: Optional[Mapping[str, XMLTree]] = None,
                 cid_mode: str = "minmax", cache_size: int = 0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.source = source
        self.trees: Dict[str, XMLTree] = dict(trees or {})
        unknown = sorted(set(self.trees) - set(source.doc_ids))
        if unknown:
            raise ValueError(f"trees for unknown corpus document(s): "
                             f"{', '.join(unknown)}")
        self.cid_mode = cid_mode
        self.cache_size = cache_size
        # One registry shared by every per-document engine, so the corpus
        # reports one merged view instead of N disjoint ones.
        self.metrics: Optional[MetricsRegistry] = metrics
        self._engines: Dict[str, SearchEngine] = {
            doc_id: SearchEngine(tree=self.trees.get(doc_id),
                                 source=source.document_source(doc_id),
                                 cid_mode=cid_mode, cache_size=cache_size,
                                 metrics=metrics)
            for doc_id in source.doc_ids
        }

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trees(cls, trees: Mapping[str, XMLTree], backend: str = "memory",
                   representation: str = "packed", shard_count: int = 1,
                   cid_mode: str = "minmax", cache_size: int = 0,
                   doc_shards: int = 2,
                   metrics: Optional[MetricsRegistry] = None
                   ) -> "CorpusSearchEngine":
        """Ingest one tree per doc id and build the corpus engine.

        ``backend`` picks the per-document source kind (see
        :func:`~repro.corpus.source.corpus_from_trees`).  Only the memory
        backend keeps the trees resident; the disk backends run tree-free.
        """
        source = corpus_from_trees(trees, backend=backend,
                                   representation=representation,
                                   shard_count=shard_count,
                                   doc_shards=doc_shards)
        resident = trees if backend == "memory" else None
        return cls(source, trees=resident, cid_mode=cid_mode,
                   cache_size=cache_size, metrics=metrics)

    @classmethod
    def from_store(cls, store: "Union[MemoryStore, SQLiteStore]",
                   documents: Optional[Sequence[str]] = None,
                   representation: str = "packed", cid_mode: str = "minmax",
                   cache_size: int = 0,
                   metrics: Optional[MetricsRegistry] = None
                   ) -> "CorpusSearchEngine":
        """A corpus engine over the documents of an already-indexed store."""
        source = corpus_from_store(store, documents=documents,
                                   representation=representation)
        return cls(source, cid_mode=cid_mode, cache_size=cache_size,
                   metrics=metrics)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def backend_id(self) -> str:
        """The corpus source's identity (cache keys carry it per document)."""
        return self.source.source_id

    @property
    def representation(self) -> str:
        """The physical posting representation the corpus serves."""
        return self.source.representation

    @property
    def doc_ids(self) -> Tuple[str, ...]:
        """Every corpus document, in corpus (sorted doc-id) order."""
        return self.source.doc_ids

    def document_engine(self, doc_id: str) -> SearchEngine:
        """The single-document engine serving one doc id."""
        try:
            return self._engines[doc_id]
        except KeyError:
            raise unknown_documents_error([doc_id], self.doc_ids) from None

    def _selected(self, doc_filter: Optional[Sequence[str]]
                  ) -> Tuple[str, ...]:
        """The documents a request addresses, in corpus order.

        ``doc_filter`` restricts the search to a subset of doc ids; unknown
        ids raise :class:`DocumentNotFound` (the service maps it to a typed
        ``bad_request``) instead of silently answering from fewer documents.
        """
        if doc_filter is None:
            return self.source.doc_ids
        wanted = set(doc_filter)
        if not wanted:
            raise DocumentNotFound("doc_filter selects no documents")
        unknown = sorted(wanted - set(self.source.doc_ids))
        if unknown:
            raise unknown_documents_error(unknown, self.doc_ids)
        return tuple(doc_id for doc_id in self.source.doc_ids
                     if doc_id in wanted)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    @staticmethod
    def _contributes(result: "SearchResult") -> bool:
        """Whether a per-document result adds anything to the union."""
        return bool(result.count or result.lca_nodes)

    def search(self, query: QueryLike, algorithm: str = "validrtf",
               doc_filter: Optional[Sequence[str]] = None,
               trace: Optional[Trace] = None) -> CorpusSearchResult:
        """Run one query per document and union the doc-tagged answers.

        ``trace`` wraps each document's pipeline in a ``doc`` sub-span, so a
        corpus trace shows which documents the time actually went to.
        """
        parsed = Query.parse(query)
        started = time.perf_counter()
        documents: List[DocumentResult] = []
        selected = self._selected(doc_filter)
        for doc_id in selected:
            if trace is not None:
                with trace.span("doc", doc=doc_id):
                    result = self._engines[doc_id].search(parsed, algorithm,
                                                          trace=trace)
            else:
                result = self._engines[doc_id].search(parsed, algorithm)
            if self._contributes(result):
                documents.append(DocumentResult(doc_id, result))
        if self.metrics is not None:
            self.metrics.counter(
                metric_names.CORPUS_DOCS_SEARCHED).inc(len(selected))
            self.metrics.counter(
                metric_names.CORPUS_DOCS_MATCHED).inc(len(documents))
        return CorpusSearchResult(
            query=parsed, algorithm=algorithm, documents=tuple(documents),
            elapsed_seconds=time.perf_counter() - started)

    def search_traced(self, query: QueryLike, algorithm: str = "validrtf",
                      doc_filter: Optional[Sequence[str]] = None
                      ) -> Tuple[CorpusSearchResult, Trace]:
        """Run one corpus query under a fresh trace with per-document spans."""
        trace = Trace("search")
        trace.root.note(algorithm=algorithm, backend=self.backend_id)
        result = self.search(query, algorithm, doc_filter=doc_filter,
                             trace=trace)
        trace.finish()
        return result, trace

    def search_many(self, queries: Sequence[QueryLike],
                    algorithm: str = "validrtf",
                    doc_filter: Optional[Sequence[str]] = None
                    ) -> List[CorpusSearchResult]:
        """Batch counterpart of :meth:`search`.

        Each per-document engine serves the whole batch through its own
        ``search_many`` fast path (one union posting fetch per document), so
        the corpus batch pays one stage-1 round per (document, batch) instead
        of one per (document, query).
        """
        parsed_queries = [Query.parse(query) for query in queries]
        selected = self._selected(doc_filter)
        per_doc = {doc_id: self._engines[doc_id].search_many(parsed_queries,
                                                             algorithm)
                   for doc_id in selected}
        results: List[CorpusSearchResult] = []
        for position, parsed in enumerate(parsed_queries):
            documents = tuple(
                DocumentResult(doc_id, per_doc[doc_id][position])
                for doc_id in selected
                if self._contributes(per_doc[doc_id][position]))
            results.append(CorpusSearchResult(
                query=parsed, algorithm=algorithm, documents=documents))
        return results

    def compare(self, query: QueryLike,
                doc_filter: Optional[Sequence[str]] = None,
                trace: Optional[Trace] = None) -> CorpusComparisonOutcome:
        """ValidRTF vs MaxMatch per document, with corpus-level summary."""
        parsed = Query.parse(query)
        outcomes: List[Tuple[str, ComparisonOutcome]] = []
        validrtf_docs: List[DocumentResult] = []
        maxmatch_docs: List[DocumentResult] = []
        for doc_id in self._selected(doc_filter):
            if trace is not None:
                with trace.span("doc", doc=doc_id):
                    outcome = self._engines[doc_id].compare(parsed)
            else:
                outcome = self._engines[doc_id].compare(parsed)
            if self._contributes(outcome.validrtf):
                validrtf_docs.append(DocumentResult(doc_id, outcome.validrtf))
            if self._contributes(outcome.maxmatch):
                maxmatch_docs.append(DocumentResult(doc_id, outcome.maxmatch))
            if self._contributes(outcome.validrtf) or \
                    self._contributes(outcome.maxmatch):
                outcomes.append((doc_id, outcome))
        return CorpusComparisonOutcome(
            validrtf=CorpusSearchResult(parsed, "validrtf",
                                        tuple(validrtf_docs)),
            maxmatch=CorpusSearchResult(parsed, "maxmatch",
                                        tuple(maxmatch_docs)),
            documents=tuple(outcomes),
            summary=summarize_reports([outcome.report
                                       for _, outcome in outcomes]),
        )

    def compare_traced(self, query: QueryLike,
                       doc_filter: Optional[Sequence[str]] = None
                       ) -> Tuple[CorpusComparisonOutcome, Trace]:
        """Like :meth:`compare`, under one trace with per-document spans."""
        trace = Trace("compare")
        trace.root.note(backend=self.backend_id)
        outcome = self.compare(query, doc_filter=doc_filter, trace=trace)
        trace.finish()
        return outcome, trace

    # ------------------------------------------------------------------ #
    # Ranking (corpus-level top-k merge + threshold-algorithm driver)
    # ------------------------------------------------------------------ #
    def _require_trees(self) -> None:
        if not self.trees:
            raise SearchError("ranking needs resident trees; this corpus "
                              "engine is running purely source-backed")

    def score_bounds(self, query: QueryLike) -> ScoreBounds:
        """Corpus-global normalization bounds for one query.

        Computed over **every** corpus document (independent of any
        ``doc_filter``), so a document's fragments score identically whether
        ranked alone, filtered, or corpus-wide — the comparability contract
        :func:`~repro.core.ranking.merge_ranked` relies on.
        """
        parsed = Query.parse(query)
        return bounds_from_impacts(
            impact
            for doc_id in self.source.doc_ids
            for impact in self._keyword_impacts(doc_id, parsed))

    def _keyword_impacts(self, doc_id: str,
                         parsed: Query) -> List[KeywordImpact]:
        """The per-keyword impact metadata of one document."""
        source = self._engines[doc_id].source
        return [keyword_impact(source, keyword)
                for keyword in parsed.keywords]

    def rank(self, result: CorpusSearchResult,
             weights: RankingWeights = RankingWeights(),
             top_k: Optional[int] = None,
             bounds: Optional[ScoreBounds] = None
             ) -> List[DocumentRankedFragment]:
        """Merge the per-document rankings of a corpus result into one list.

        Every document is scored against the same corpus-global
        :class:`ScoreBounds` (derived from impact metadata), so the merged
        scores are genuinely comparable across documents.
        """
        self._require_trees()
        if bounds is None:
            bounds = self.score_bounds(result.query)
        per_document = {}
        for entry in result.documents:
            tree = self.trees.get(entry.doc_id)
            if tree is None:
                raise SearchError(f"no resident tree for corpus document "
                                  f"{entry.doc_id!r}; cannot rank it")
            per_document[entry.doc_id] = rank_result(tree, entry.result,
                                                     weights, bounds=bounds)
        return merge_ranked(per_document, top_k=top_k)

    def rank_search(self, query: QueryLike, algorithm: str = "validrtf",
                    top_k: Optional[int] = None,
                    doc_filter: Optional[Sequence[str]] = None,
                    weights: RankingWeights = RankingWeights(),
                    early_terminate: bool = False) -> RankedCorpusSearch:
        """Ranked corpus retrieval, optionally with early termination.

        The exhaustive path searches every selected document, ranks, and
        merges.  With ``early_terminate=True`` (which requires ``top_k``) a
        threshold-algorithm driver runs instead: documents are visited in
        descending score-upper-bound order — the bound combines each
        document's reachable specificity (``min`` over the query keywords of
        the keyword's deepest node level, since a fragment root is an
        ancestor of one node per keyword) with the trivial component bounds
        1.0, through the same float expression real scores use — and the
        loop stops as soon as the k-th ranked score **strictly** exceeds the
        next document's bound (a tie must keep going: doc-id ordering could
        still admit the tied document).  Documents lacking any query keyword
        are skipped outright (an empty posting list empties the whole
        result).  Both paths return byte-identical rankings; only the visit
        counters differ.
        """
        self._require_trees()
        parsed = Query.parse(query)
        if early_terminate and top_k is None:
            raise ValueError("early_terminate=True needs a top_k bound to "
                             "terminate against")
        normalized = weights.normalized()
        selected = self._selected(doc_filter)
        if not early_terminate:
            bounds = self.score_bounds(parsed)
            result = self.search(parsed, algorithm, doc_filter=doc_filter)
            ranked = self.rank(result, weights=weights, top_k=top_k,
                               bounds=bounds)
            outcome = RankedCorpusSearch(
                query=parsed, algorithm=algorithm, top_k=top_k,
                early_terminated=False, ranked=tuple(ranked),
                docs_selected=len(selected), docs_visited=len(selected),
                docs_skipped=0, bounds=bounds)
            return self._noted_rank(outcome)

        # One impact fetch per (document, keyword): the same pass feeds the
        # corpus-global bounds and the per-document upper bounds.
        impacts_by_doc = {doc_id: self._keyword_impacts(doc_id, parsed)
                          for doc_id in self.source.doc_ids}
        bounds = bounds_from_impacts(
            impact for impacts in impacts_by_doc.values()
            for impact in impacts)
        candidates: List[Tuple[float, str]] = []
        for doc_id in selected:
            impacts = impacts_by_doc[doc_id]
            if any(impact.empty for impact in impacts):
                continue  # a missing keyword provably empties the result
            reachable = (min(impact.max_depth for impact in impacts)
                         / bounds.max_depth)
            upper = combine_score(normalized, reachable, 1.0, 1.0)
            candidates.append((-upper, doc_id))
        candidates.sort()

        per_document: Dict[str, List] = {}
        # Min-heap of the k best scores seen so far; its root is the k-th
        # ranked score, the only value the stop test needs — the full merge
        # happens once, after the loop.
        kth_best: List[float] = []
        visited = 0
        if top_k > 0:
            for negative_bound, doc_id in candidates:
                if len(kth_best) >= top_k and kth_best[0] > -negative_bound:
                    break  # the k-th score provably cannot be beaten
                result = self._engines[doc_id].search(parsed, algorithm)
                visited += 1
                if self._contributes(result):
                    ranked = rank_result(self.trees[doc_id], result, weights,
                                         bounds=bounds)
                    per_document[doc_id] = ranked
                    for item in ranked:
                        if len(kth_best) < top_k:
                            heapq.heappush(kth_best, item.score)
                        else:
                            heapq.heappushpop(kth_best, item.score)
        merged = merge_ranked(per_document, top_k=top_k)
        outcome = RankedCorpusSearch(
            query=parsed, algorithm=algorithm, top_k=top_k,
            early_terminated=True, ranked=tuple(merged),
            docs_selected=len(selected), docs_visited=visited,
            docs_skipped=len(selected) - visited, bounds=bounds)
        return self._noted_rank(outcome)

    def _noted_rank(self, outcome: RankedCorpusSearch) -> RankedCorpusSearch:
        if self.metrics is not None:
            self.metrics.counter(
                metric_names.CORPUS_RANK_DOCS_VISITED).inc(
                    outcome.docs_visited)
            self.metrics.counter(
                metric_names.CORPUS_RANK_DOCS_SKIPPED).inc(
                    outcome.docs_skipped)
        return outcome

    def search_ranked(self, query: QueryLike, algorithm: str = "validrtf",
                      top_k: Optional[int] = None,
                      doc_filter: Optional[Sequence[str]] = None,
                      weights: RankingWeights = RankingWeights(),
                      early_terminate: bool = False
                      ) -> List[DocumentRankedFragment]:
        """Search the corpus and return the merged top-k ranked fragments."""
        return list(self.rank_search(
            query, algorithm, top_k=top_k, doc_filter=doc_filter,
            weights=weights, early_terminate=early_terminate).ranked)

    # ------------------------------------------------------------------ #
    # Cache / mode plumbing (aggregated over the per-document engines)
    # ------------------------------------------------------------------ #
    @property
    def cache_enabled(self) -> bool:
        """True when the per-document engines carry result caches."""
        return self.cache_size > 0

    def cache_stats(self) -> CacheStats:
        """Summed hit/miss/eviction counters across every document engine."""
        totals = [engine.cache_stats() for engine in self._engines.values()]
        return CacheStats(
            hits=sum(stats.hits for stats in totals),
            misses=sum(stats.misses for stats in totals),
            evictions=sum(stats.evictions for stats in totals),
            size=sum(stats.size for stats in totals),
            max_size=sum(stats.max_size for stats in totals),
        )

    def clear_cache(self) -> None:
        """Drop every document engine's cached results."""
        for engine in self._engines.values():
            engine.clear_cache()

    def set_cid_mode(self, cid_mode: str) -> None:
        """Switch the content-feature mode on every document engine."""
        for engine in self._engines.values():
            engine.set_cid_mode(cid_mode)
        self.cid_mode = cid_mode

    def set_metrics(self, metrics: "Optional[MetricsRegistry]") -> None:
        """Attach (or detach) a registry on the corpus and every doc engine."""
        self.metrics = metrics
        for engine in self._engines.values():
            engine.set_metrics(metrics)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render_result(self, result: CorpusSearchResult,
                      show_text: bool = True) -> str:
        """Render every document's fragments under a doc-id header."""
        blocks = []
        for entry in result.documents:
            engine = self._engines.get(entry.doc_id)
            header = (f"=== document {entry.doc_id} "
                      f"({entry.result.count} fragment"
                      f"{'s' if entry.result.count != 1 else ''}) ===")
            if engine is None:
                blocks.append(header)
                continue
            blocks.append(header + "\n"
                          + engine.render_result(entry.result,
                                                 show_text=show_text))
        return "\n\n".join(blocks) if blocks else "(no results)"

    def __repr__(self) -> str:
        return (f"CorpusSearchEngine(documents={len(self.doc_ids)}, "
                f"shards={len(self.source.shards)}, "
                f"representation={self.representation!r})")
