"""Doc-id-tagged results of a corpus search.

A corpus query runs the SLCA/ELCA/RTF pipeline **per document** (LCA
semantics never cross a document boundary — two nodes of different documents
have no common ancestor) and unions the per-document answers, so the corpus
result model is a document-ordered sequence of ``(doc id, SearchResult)``
pairs.  The differential fuzz harness (``tests/test_corpus_fuzz.py``)
enforces exactly this contract: a corpus result must equal the union of the
per-document single-document results.

:class:`CorpusSearchResult` also exposes the aggregate accessors of a plain
:class:`~repro.core.fragments.SearchResult` (``fragments``, ``lca_nodes``,
``roots()``, iteration) so the backend-parity harness and the benchmark
drivers can treat corpus engines like any other backend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Tuple

from ..core.fragments import PrunedFragment, SearchResult
from ..core.query import Query


@dataclass(frozen=True)
class DocumentResult:
    """One document's contribution to a corpus answer."""

    doc_id: str
    result: SearchResult

    @property
    def count(self) -> int:
        """Number of fragments this document contributed."""
        return self.result.count

    def __repr__(self) -> str:
        return (f"DocumentResult(doc_id={self.doc_id!r}, "
                f"fragments={self.result.count})")


@dataclass(frozen=True)
class CorpusSearchResult:
    """The complete answer of one algorithm run over a corpus.

    ``documents`` holds only the documents that produced at least one
    fragment, sorted in corpus (doc-id) order — documents whose per-document
    result is empty contribute nothing to the union and are omitted, which is
    what keeps a one-document corpus result identical to the single-document
    result (the parity suites rely on this).
    """

    query: Query
    algorithm: str
    documents: Tuple[DocumentResult, ...]
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # Corpus accessors
    # ------------------------------------------------------------------ #
    @property
    def doc_ids(self) -> Tuple[str, ...]:
        """The contributing documents, in corpus order."""
        return tuple(entry.doc_id for entry in self.documents)

    def by_doc(self) -> Dict[str, SearchResult]:
        """Mapping doc id -> that document's :class:`SearchResult`."""
        return {entry.doc_id: entry.result for entry in self.documents}

    def tagged_fragments(self) -> Tuple[Tuple[str, PrunedFragment], ...]:
        """Every fragment paired with the id of the document it came from."""
        return tuple((entry.doc_id, fragment)
                     for entry in self.documents
                     for fragment in entry.result.fragments)

    # ------------------------------------------------------------------ #
    # SearchResult-compatible aggregate accessors
    # ------------------------------------------------------------------ #
    @property
    def fragments(self) -> Tuple[PrunedFragment, ...]:
        """All fragments across documents, in (doc, document-order) order."""
        return tuple(fragment
                     for entry in self.documents
                     for fragment in entry.result.fragments)

    @property
    def lca_nodes(self) -> Tuple:
        """The concatenated per-document interesting LCA lists."""
        return tuple(code
                     for entry in self.documents
                     for code in entry.result.lca_nodes)

    @property
    def count(self) -> int:
        """Total number of result fragments across the corpus."""
        return sum(entry.result.count for entry in self.documents)

    def roots(self) -> Tuple:
        """Every fragment root, in (doc, document-order) order."""
        return tuple(fragment.root for fragment in self.fragments)

    def by_root(self) -> Dict[Tuple[str, object], PrunedFragment]:
        """Mapping ``(doc id, root)`` -> fragment.

        Unlike the single-document form the key carries the doc id: fragment
        roots are only unique *within* a document, and the effectiveness
        metrics pair fragments of two corpus results through these keys.
        """
        return {(entry.doc_id, fragment.root): fragment
                for entry in self.documents
                for fragment in entry.result.fragments}

    def with_timing(self, elapsed_seconds: float) -> "CorpusSearchResult":
        """A copy of the result carrying a measured elapsed time."""
        return replace(self, elapsed_seconds=elapsed_seconds)

    def __iter__(self) -> Iterator[PrunedFragment]:
        return iter(self.fragments)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"CorpusSearchResult(query={self.query!r}, "
                f"algorithm={self.algorithm!r}, documents={len(self.documents)}, "
                f"fragments={self.count})")
