"""Admission control: bounded in-flight depth, timeouts, load shedding.

A serving system that accepts unbounded work converts overload into
unbounded latency for *everyone*.  The controller keeps a hard bound on the
number of requests past the front door: request N+1 beyond
``max_inflight`` is rejected immediately with the typed ``overloaded`` error
instead of queueing, and every admitted request runs under an optional
deadline that turns into the typed ``timeout`` error.

The shed/timeout counters and the in-flight gauges live in a
:class:`~repro.obs.MetricsRegistry` (the service passes its shared one);
:meth:`AdmissionController.stats` is *derived* from that registry, so the
``stats`` wire op and any metrics scrape can never disagree.  Only the
in-flight level itself stays under the controller's own lock — the bound
check and the increment must be atomic.
"""

from __future__ import annotations

import asyncio
import threading
from types import TracebackType
from typing import Awaitable, Dict, Optional, Type, TypeVar

from ..obs import MetricsRegistry
from ..obs import names as metric_names
from .protocol import ERROR_OVERLOADED, ERROR_TIMEOUT, ServiceError

T = TypeVar("T")

#: Default bound on concurrently admitted requests.
DEFAULT_MAX_INFLIGHT = 64


class AdmissionController:
    """Bounded admission with per-request deadlines.

    Parameters
    ----------
    max_inflight:
        Hard bound on concurrently admitted requests; further arrivals are
        shed with :data:`~repro.service.protocol.ERROR_OVERLOADED`.
    timeout_seconds:
        Per-request deadline applied by :meth:`run`; ``None`` disables it.
    metrics:
        The registry carrying the admission counters/gauges; a private one
        is created when omitted (standalone use keeps full accounting).
    """

    def __init__(self, max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 timeout_seconds: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {timeout_seconds}")
        self.max_inflight = max_inflight
        self.timeout_seconds = timeout_seconds
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry())
        self._lock = threading.Lock()
        self._inflight = 0

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def acquire(self) -> None:
        """Admit one request or shed it with the ``overloaded`` error."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                inflight = self._inflight
                shed = True
            else:
                self._inflight += 1
                inflight = self._inflight
                shed = False
        if shed:
            self.metrics.counter(metric_names.ADMISSION_REJECTED).inc()
            raise ServiceError(
                ERROR_OVERLOADED,
                f"load shed: {inflight} requests in flight "
                f"(bound {self.max_inflight})")
        self.metrics.counter(metric_names.ADMISSION_ADMITTED).inc()
        self.metrics.gauge(metric_names.ADMISSION_INFLIGHT).set(inflight)
        self.metrics.gauge(
            metric_names.ADMISSION_PEAK_INFLIGHT).set_max(inflight)

    def release(self) -> None:
        """Mark one admitted request as finished."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._inflight -= 1
            inflight = self._inflight
        self.metrics.gauge(metric_names.ADMISSION_INFLIGHT).set(inflight)

    def __enter__(self) -> "AdmissionController":
        self.acquire()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc_value: Optional[BaseException],
                 traceback: Optional[TracebackType]) -> None:
        self.release()

    async def run(self, awaitable: Awaitable[T]) -> T:
        """Run one admitted request's work under the configured deadline."""
        if self.timeout_seconds is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self.timeout_seconds)
        except asyncio.TimeoutError:
            self.metrics.counter(metric_names.ADMISSION_TIMED_OUT).inc()
            raise ServiceError(
                ERROR_TIMEOUT,
                f"request exceeded its {self.timeout_seconds:g}s deadline"
            ) from None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def inflight(self) -> int:
        """Currently admitted, unfinished requests."""
        with self._lock:
            return self._inflight

    def stats(self) -> Dict[str, object]:
        """Counters for the ``stats`` endpoint — derived from the registry."""
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        return {
            "max_inflight": self.max_inflight,
            "timeout_seconds": self.timeout_seconds,
            "inflight": int(gauges.get(metric_names.ADMISSION_INFLIGHT, 0)),
            "peak_inflight": int(
                gauges.get(metric_names.ADMISSION_PEAK_INFLIGHT, 0)),
            "admitted": counters.get(metric_names.ADMISSION_ADMITTED, 0),
            "rejected": counters.get(metric_names.ADMISSION_REJECTED, 0),
            "timed_out": counters.get(metric_names.ADMISSION_TIMED_OUT, 0),
        }

    def __repr__(self) -> str:
        return (f"AdmissionController(inflight={self.inflight}/"
                f"{self.max_inflight}, timeout={self.timeout_seconds})")
