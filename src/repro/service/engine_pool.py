"""A pool of per-worker search engines over one shared document snapshot.

The search pipelines are CPU-bound Python with mutable per-engine state
(memoization caches, posting LRUs), so the pool gives every worker thread its
**own** :class:`~repro.core.engine.SearchEngine` while sharing the expensive
immutable substrate exactly once per document:

* ``memory`` — one :class:`~repro.index.inverted.InvertedIndex` snapshot is
  built once and shared by every worker engine (posting lists are read-only
  after the build; the shared analyzer's memoization writes are idempotent).
* ``sqlite`` — one :class:`~repro.storage.sqlite_backend.SQLiteStore` is
  shared, and each worker engine wraps it in its own
  :class:`~repro.storage.posting_source.SQLitePostingSource` (private posting
  LRUs); the store hands every thread its own sqlite connection, so disk
  reads genuinely parallelize.
* ``sharded`` — the shard stores are ingested once and each worker gets its
  own routed :class:`~repro.storage.posting_source.ShardedPostingSource` view
  over them.

Work is executed on a :class:`~concurrent.futures.ThreadPoolExecutor`; every
submission receives the calling thread's engine as its first argument.  The
asyncio front end bridges the returned futures with
:func:`asyncio.wrap_future`.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from types import TracebackType
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from ..core import SearchEngine
from ..core.cache import CacheStats
from ..core.engine import ComparisonOutcome
from ..core.fragments import SearchResult
from ..core.query import QueryLike
from ..corpus import CorpusSearchEngine, corpus_from_trees
from ..faults import FaultPlan
from ..index import InvertedIndex
from ..obs import MetricsRegistry, Snapshot, merge_snapshots
from ..obs import names as metric_names
from .protocol import ERROR_DEGRADED, ServiceError
from ..storage import (
    DEFAULT_POSTING_LRU_SIZE,
    SegmentedStore,
    ShardedPostingSource,
    SQLitePostingSource,
    SQLiteStore,
    shard_stores,
    source_for_store,
)
from ..xmltree import XMLTree

#: Default number of worker threads (and therefore engines).
DEFAULT_WORKERS = 4

#: Default per-engine query-result cache capacity.  Serving workloads are
#: repeat-heavy, so unlike the measurement protocol the service caches by
#: default; pass ``cache_size=0`` for always-cold engines.
DEFAULT_CACHE_SIZE = 256


class EnginePool:
    """N worker threads, each owning one engine over a shared snapshot.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable building one worker's engine.  Called at most
        once per worker thread, lazily on that thread (so thread-affine
        resources like sqlite connections are created where they are used).
    workers:
        Number of worker threads.
    """

    def __init__(self, engine_factory: Callable[[], SearchEngine],
                 workers: int = DEFAULT_WORKERS,
                 name: str = "repro-service",
                 rebuild_backoff_seconds: float = 0.5,
                 max_rebuild_backoff_seconds: float = 30.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if rebuild_backoff_seconds <= 0:
            raise ValueError("rebuild_backoff_seconds must be positive")
        self.workers = workers
        self._factory = engine_factory
        #: Quarantine schedule after a failed engine rebuild: the worker
        #: refuses work (typed ``degraded``) for an exponentially growing
        #: backoff instead of re-running a failing factory per request —
        #: and instead of poisoning the pool for good.
        self.rebuild_backoff_seconds = rebuild_backoff_seconds
        self.max_rebuild_backoff_seconds = max_rebuild_backoff_seconds
        #: Pool-level self-healing counters (rebuilds, quarantines); merged
        #: into :meth:`metrics_snapshot` alongside the engine registries.
        self.metrics = MetricsRegistry()
        self._executor = ThreadPoolExecutor(max_workers=workers,
                                            thread_name_prefix=name)
        self._local = threading.local()
        self._engines: List[SearchEngine] = []
        # One registry per worker engine ever built (kept across engine
        # invalidations so the counters stay cumulative); merged lazily by
        # :meth:`metrics_snapshot`.
        self._engine_registries: List[MetricsRegistry] = []
        self._engines_lock = threading.Lock()
        self._closed = False
        #: Bumped by :meth:`invalidate_engines`; worker engines built under
        #: an older generation are discarded and rebuilt on next use.
        self._engine_version = 0
        #: Set by the corpus-database builder: the shared
        #: :class:`~repro.storage.segments.SegmentedStore` live updates are
        #: written to (``None`` for immutable backends, and for corpus pools
        #: pinned to a document subset).
        self.mutable_store: Optional[SegmentedStore] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def for_backend(cls, backend: str, tree: Optional[XMLTree] = None,
                    workers: int = DEFAULT_WORKERS,
                    cache_size: int = DEFAULT_CACHE_SIZE,
                    shards: int = 2, db_path: Optional[str] = None,
                    document: str = "service",
                    lru_size: int = DEFAULT_POSTING_LRU_SIZE,
                    representation: str = "packed",
                    trees: Optional[Dict[str, XMLTree]] = None,
                    documents: Optional[Sequence[str]] = None,
                    fault_plan: Optional[FaultPlan] = None) -> "EnginePool":
        """Build a pool over one document for a named posting backend.

        ``memory`` needs ``tree``.  ``sqlite`` serves ``db_path`` when given
        (ingesting ``tree`` into it only if the document is absent), else an
        in-process store ingested from ``tree``.  ``sharded`` fans ``tree``
        over ``shards`` in-process stores.  ``corpus`` serves every document
        of ``db_path`` (a multi-document database written by
        ``repro.cli index``) — or only the ``documents`` subset when given —
        with doc-id-tagged answers and per-request ``doc_filter``; without a
        database it builds a memory corpus from ``trees`` (doc id -> tree)
        or a one-document corpus from ``tree``.

        ``representation`` selects the physical posting form every worker
        serves (see :class:`~repro.core.engine.SearchEngine`).  Under
        ``memory`` + ``"packed"`` the snapshot shared by all workers holds
        **one** set of flat posting columns — immutable arrays handed to every
        worker engine by reference, so N workers cost no more posting memory
        than one.
        """
        if fault_plan is not None and backend not in ("sqlite", "sharded",
                                                      "corpus"):
            raise ValueError(
                f"a fault plan needs a store-backed backend (sqlite, "
                f"sharded or corpus), not {backend!r}")
        if backend == "memory":
            if tree is None:
                raise ValueError("the memory backend needs a tree")
            snapshot = InvertedIndex(tree, representation=representation)
            return cls(lambda: SearchEngine(tree, source=snapshot,
                                            cache_size=cache_size),
                       workers=workers)
        if backend == "sqlite":
            store = SQLiteStore(db_path if db_path else ":memory:")
            if document not in store.documents():
                if tree is None:
                    stored = store.documents()
                    raise ValueError(
                        f"no document {document!r} in the sqlite store"
                        + (f"; stored: {', '.join(stored)}" if stored else ""))
                store.store_tree(tree, document)
            if fault_plan is not None:
                store.set_fault_plan(fault_plan)
            return cls(lambda: SearchEngine(
                source=SQLitePostingSource(store, document, lru_size,
                                           representation=representation),
                cache_size=cache_size), workers=workers)
        if backend == "sharded":
            if tree is None:
                raise ValueError("the sharded backend needs a tree")
            if shards < 1:
                raise ValueError(f"shards must be positive, got {shards}")
            stores = [SQLiteStore() for _ in range(shards)]
            name = shard_stores(tree, stores, document)
            if fault_plan is not None:
                for store in stores:
                    store.set_fault_plan(fault_plan)

            def sharded_engine() -> SearchEngine:
                sources = [source_for_store(store, name, lru_size,
                                            representation)
                           for store in stores]
                return SearchEngine(
                    source=ShardedPostingSource(sources, routed=True),
                    cache_size=cache_size)

            return cls(sharded_engine, workers=workers)
        if backend == "corpus":
            if db_path:
                # Segment-aware store: documents absorbed through
                # `index --update` (or the live `update` wire op) serve
                # exactly like base-generation ones, and the pool can keep
                # taking writes without a restart.
                store = SegmentedStore(db_path)
                stored = store.documents()
                if not stored:
                    raise ValueError(
                        f"the corpus database {db_path!r} holds no indexed "
                        f"documents (run `repro-xks index` first)")
                served = tuple(documents) if documents else None
                # Fail at build time, not inside a worker's lazy engine
                # factory (which would surface as a per-request internal
                # error).
                unknown = sorted(set(served or ()) - set(stored))
                if unknown:
                    raise ValueError(
                        f"no document(s) named {', '.join(unknown)} in "
                        f"{db_path!r}; stored: {', '.join(stored)}")
                if fault_plan is not None:
                    store.set_fault_plan(fault_plan)
                pool = cls(lambda: CorpusSearchEngine.from_store(
                    store, documents=served,
                    representation=representation,
                    cache_size=cache_size), workers=workers)
                if served is None:
                    # A pinned subset cannot absorb adds/deletes coherently,
                    # so only serve-everything pools accept live writes.
                    pool.mutable_store = store
                return pool
            corpus_trees = dict(trees) if trees else (
                {document: tree} if tree is not None else None)
            if not corpus_trees:
                raise ValueError("the corpus backend needs trees (or a tree) "
                                 "or a db_path")
            if fault_plan is not None:
                raise ValueError("a fault plan needs a database-backed "
                                 "corpus (pass db_path)")
            # One set of immutable per-document memory indexes, shared by
            # every worker engine — same snapshot economics as `memory`.
            snapshot = corpus_from_trees(corpus_trees, backend="memory",
                                         representation=representation,
                                         shard_count=shards)
            return cls(lambda: CorpusSearchEngine(snapshot,
                                                  trees=corpus_trees,
                                                  cache_size=cache_size),
                       workers=workers)
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected memory, sqlite, sharded or corpus")

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _thread_engine(self) -> SearchEngine:
        """This worker thread's engine, built on first use.

        An engine built before the last :meth:`invalidate_engines` call is
        discarded and rebuilt here, so every request dispatched after a
        mutation commits sees the post-mutation corpus.
        """
        engine = getattr(self._local, "engine", None)
        version = getattr(self._local, "engine_version", -1)
        if engine is None or version != self._engine_version:
            quarantined_until = getattr(self._local, "quarantined_until", 0.0)
            remaining = quarantined_until - time.monotonic()
            if remaining > 0:
                self.metrics.counter(
                    metric_names.POOL_QUARANTINE_REFUSALS).inc()
                raise ServiceError(
                    ERROR_DEGRADED,
                    f"worker quarantined for another {remaining:.2f}s after "
                    f"an engine rebuild failure; capacity is reduced, retry "
                    f"shortly")
            try:
                engine = self._factory()
            except ServiceError:
                raise
            except Exception as error:
                # Quarantine this worker instead of poisoning the pool: it
                # backs off exponentially and retries the build when the
                # window expires, so a transient storage fault heals itself.
                failures = getattr(self._local, "rebuild_failures", 0) + 1
                self._local.rebuild_failures = failures
                backoff = min(self.max_rebuild_backoff_seconds,
                              self.rebuild_backoff_seconds
                              * (2 ** (failures - 1)))
                self._local.quarantined_until = time.monotonic() + backoff
                self.metrics.counter(
                    metric_names.POOL_REBUILD_FAILURES).inc()
                raise ServiceError(
                    ERROR_DEGRADED,
                    f"worker engine rebuild failed "
                    f"({type(error).__name__}: {error}); quarantined for "
                    f"{backoff:.2f}s") from error
            self._local.rebuild_failures = 0
            self._local.quarantined_until = 0.0
            self.metrics.counter(metric_names.POOL_REBUILDS).inc()
            # Every worker engine observes into its own registry (no lock
            # contention between workers on the hot path); snapshots are
            # merged on demand.
            registry = MetricsRegistry()
            setter = getattr(engine, "set_metrics", None)
            if setter is not None:
                setter(registry)
            self._local.engine = engine
            self._local.engine_version = self._engine_version
            with self._engines_lock:
                self._engines.append(engine)
                self._engine_registries.append(registry)
        return engine

    def invalidate_engines(self) -> None:
        """Discard every worker's engine; they rebuild lazily on next use.

        Called after a live mutation (``update`` / ``delete_doc``) commits:
        worker engines are snapshots over the shared store, so absorbing a
        write means rebuilding them — in-flight requests finish on their old
        snapshot, later ones see the new state.
        """
        with self._engines_lock:
            self._engine_version += 1
            self._engines.clear()

    def submit_direct(self, fn: Callable[..., object],
                      *args: object) -> Future:
        """Run ``fn(*args)`` on a worker thread, without an engine argument.

        For store-level mutations, which need the executor (so the event
        loop never blocks on sqlite writes) but not a search engine.
        """
        if self._closed:
            raise RuntimeError("the engine pool is shut down")
        return self._executor.submit(fn, *args)

    def submit(self, fn: Callable[..., object], *args: object,
               **kwargs: object) -> Future:
        """Run ``fn(engine, *args, **kwargs)`` on a worker thread."""
        if self._closed:
            raise RuntimeError("the engine pool is shut down")
        return self._executor.submit(self._invoke, fn, args, kwargs)

    def _invoke(self, fn: Callable[..., object], args: Tuple[object, ...],
                kwargs: Dict[str, object]) -> object:
        try:
            return fn(self._thread_engine(), *args, **kwargs)
        except sqlite3.OperationalError as error:
            # Transient storage trouble (a flaky disk, or an injected
            # chaos fault) is a typed, retryable condition — not an
            # internal error.
            raise ServiceError(
                ERROR_DEGRADED,
                f"storage fault while serving the request: {error}"
            ) from error

    @staticmethod
    def _with_cid_mode(engine: SearchEngine,
                       cid_mode: Optional[str]) -> SearchEngine:
        """Switch the worker engine's mode when a request overrides it.

        Worker engines serve one request at a time, so rebuilding the
        pipelines here is race-free; results stay correct across switches
        because every cache key carries the mode.
        """
        if cid_mode is not None and cid_mode != engine.cid_mode:
            engine.set_cid_mode(cid_mode)
        return engine

    def search(self, query: QueryLike, algorithm: str = "validrtf",
               cid_mode: Optional[str] = None) -> "Future[SearchResult]":
        """One query on any worker; returns a future."""
        return self.submit(
            lambda engine, q, a, m: self._with_cid_mode(engine, m).search(q, a),
            query, algorithm, cid_mode)

    def search_many(self, queries: Sequence, algorithm: str = "validrtf",
                    cid_mode: Optional[str] = None
                    ) -> "Future[List[SearchResult]]":
        """One coalesced batch on a single worker (shared posting fetch)."""
        return self.submit(
            lambda engine, qs, a, m:
                self._with_cid_mode(engine, m).search_many(qs, a),
            queries, algorithm, cid_mode)

    def compare(self, query: QueryLike,
                cid_mode: Optional[str] = None) -> "Future[ComparisonOutcome]":
        """ValidRTF-vs-MaxMatch comparison on any worker."""
        return self.submit(
            lambda engine, q, m: self._with_cid_mode(engine, m).compare(q),
            query, cid_mode)

    def rank(self, query: QueryLike, algorithm: str = "validrtf",
             cid_mode: Optional[str] = None, top_k: Optional[int] = None,
             early_terminate: bool = False) -> Future:
        """Search then rank on one worker (needs a resident tree).

        Corpus engines run the full ranked-retrieval driver (returning a
        :class:`~repro.corpus.engine.RankedCorpusSearch` with visit
        accounting); single-document engines rank their one document and
        truncate to ``top_k`` — there is nothing to early-terminate over,
        so the flag is a no-op there.
        """
        def ranked(engine: SearchEngine, q: QueryLike, a: str,
                   m: Optional[str], k: Optional[int], early: bool) -> object:
            engine = self._with_cid_mode(engine, m)
            if getattr(engine, "is_corpus", False):
                return engine.rank_search(q, a, top_k=k,
                                          early_terminate=early)
            fragments = engine.rank(engine.search(q, a))
            return fragments if k is None else fragments[:k]
        return self.submit(ranked, query, algorithm, cid_mode, top_k,
                           early_terminate)

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def warm(self, timeout: float = 30.0) -> int:
        """Force every worker thread to build its engine now.

        Returns the number of engines alive afterwards.  A barrier keeps the
        priming tasks from being served by a subset of the workers.
        """
        barrier = threading.Barrier(self.workers)

        def prime() -> None:
            self._thread_engine()
            barrier.wait(timeout)

        futures = [self._executor.submit(prime) for _ in range(self.workers)]
        for future in futures:
            future.result(timeout)
        return self.engine_count

    @property
    def engine_count(self) -> int:
        """Number of worker engines built so far."""
        with self._engines_lock:
            return len(self._engines)

    @property
    def backend_id(self) -> Optional[str]:
        """The shared backend identity, once at least one engine exists."""
        with self._engines_lock:
            return self._engines[0].backend_id if self._engines else None

    def cache_stats(self) -> CacheStats:
        """Aggregated query-cache counters across all worker engines."""
        with self._engines_lock:
            engines = list(self._engines)
        totals = [engine.cache_stats() for engine in engines]
        return CacheStats(
            hits=sum(stats.hits for stats in totals),
            misses=sum(stats.misses for stats in totals),
            evictions=sum(stats.evictions for stats in totals),
            size=sum(stats.size for stats in totals),
            max_size=sum(stats.max_size for stats in totals),
        )

    def metrics_snapshot(self) -> Snapshot:
        """Merged engine-level metrics across every worker registry.

        Registries of invalidated (discarded) engines are included, so the
        counters remain cumulative across live-mutation rebuilds.
        """
        with self._engines_lock:
            registries = [self.metrics, *self._engine_registries]
        return merge_snapshots([registry.snapshot()
                                for registry in registries])

    def stats(self) -> Dict[str, object]:
        """Pool-level counters for the ``stats`` endpoint."""
        cache = self.cache_stats()
        snapshot = self.metrics.snapshot()
        return {
            "workers": self.workers,
            "engines": self.engine_count,
            "backend": self.backend_id,
            "rebuilds": snapshot["counters"].get(
                metric_names.POOL_REBUILDS, 0),
            "rebuild_failures": snapshot["counters"].get(
                metric_names.POOL_REBUILD_FAILURES, 0),
            "quarantine_refusals": snapshot["counters"].get(
                metric_names.POOL_QUARANTINE_REFUSALS, 0),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": cache.size,
                "max_size": cache.max_size,
            },
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker threads (idempotent)."""
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc_value: Optional[BaseException],
                 traceback: Optional[TracebackType]) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (f"EnginePool(workers={self.workers}, "
                f"engines={self.engine_count}, backend={self.backend_id!r})")
