"""Load generation: throughput and latency percentiles for the service.

Two standard driving disciplines:

* **closed loop** (:func:`run_closed_loop`) — ``concurrency`` simulated
  users, each with its own connection, each issuing its next request the
  moment the previous answer arrives, until a shared budget of ``requests``
  is spent.  Measures the service's capacity under a fixed multiprogramming
  level.
* **open loop** (:func:`run_open_loop`) — requests are *scheduled* at a
  target aggregate rate for a fixed duration, independent of completions
  (each of the ``concurrency`` connections fires on its own fixed timetable).
  Measures behaviour under offered load; when the service can't keep up the
  schedule slips and latency percentiles show it.  (With finite connections
  the loop degenerates toward closed-loop behaviour at saturation — raise
  ``concurrency`` to keep the schedule honest.)

Both produce a :class:`LoadReport` with throughput, p50/p95/p99/mean/max
latency and typed error counts (shed load and timeouts are *not* silently
mixed into latency numbers).  :func:`loadtest` self-hosts a server from a
:class:`~repro.service.server.ServiceConfig` and drives it in-process;
:func:`write_service_bench` persists reports as ``BENCH_service.json``.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..bench.export import PathLike, write_json
from ..obs import names as metric_names
from ..xmltree import XMLTree
from .client import RetryPolicy, ServiceClient
from .protocol import ServiceError
from .server import ServerThread, ServiceConfig


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of an unsorted sequence."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class LoadReport:
    """Everything one load run measured, JSON-exportable."""

    mode: str
    requests: int
    concurrency: int
    algorithm: str
    elapsed_seconds: float
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    errors: Dict[str, int] = field(default_factory=dict)
    target_rate: Optional[float] = None
    #: Client-side retries performed under a :class:`RetryPolicy` — each
    #: one is a transient failure the retrying client healed.
    retries: int = 0
    config: Dict[str, object] = field(default_factory=dict)
    server_stats: Dict[str, object] = field(default_factory=dict)
    #: The server's merged metrics-registry snapshot taken after the run
    #: (queue waits, batch occupancy, shed counters, engine-level series).
    server_metrics: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        """Requests answered successfully."""
        return len(self.latencies_ms)

    @property
    def error_count(self) -> int:
        """Requests answered with a typed error (or failed transport)."""
        return sum(self.errors.values())

    @property
    def throughput_rps(self) -> float:
        """Successful answers per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def latency_summary_ms(self) -> Dict[str, float]:
        """p50/p95/p99/mean/max of the successful requests, in ms."""
        values = self.latencies_ms
        return {
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
            "mean": (sum(values) / len(values)) if values else 0.0,
            "max": max(values) if values else 0.0,
        }

    def payload(self) -> Dict[str, object]:
        """The JSON payload of one run (raw latencies omitted)."""
        return {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "concurrency": self.concurrency,
            "algorithm": self.algorithm,
            "target_rate": self.target_rate,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_ms": {key: round(value, 3) for key, value
                           in self.latency_summary_ms().items()},
            "errors": dict(self.errors),
            "retries": self.retries,
            "config": self.config,
            "server_stats": self.server_stats,
            "server_metrics": self.server_metrics,
        }

    def summary(self) -> str:
        """One human-readable block (the ``loadtest`` CLI output)."""
        latency = self.latency_summary_ms()
        lines = [
            f"mode: {self.mode}  concurrency: {self.concurrency}  "
            f"algorithm: {self.algorithm}"
            + (f"  target rate: {self.target_rate:g}/s"
               if self.target_rate else ""),
            f"completed: {self.completed}/{self.requests}  "
            f"errors: {self.error_count}"
            + (f" {self.errors}" if self.errors else "")
            + (f"  retries: {self.retries}" if self.retries else ""),
            f"elapsed: {self.elapsed_seconds:.3f}s  "
            f"throughput: {self.throughput_rps:.1f} req/s",
            f"latency ms: p50={latency['p50']:.2f}  p95={latency['p95']:.2f}  "
            f"p99={latency['p99']:.2f}  mean={latency['mean']:.2f}  "
            f"max={latency['max']:.2f}",
        ]
        return "\n".join(lines)


class _Recorder:
    """Thread-safe collection of latencies and typed-error counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latencies_ms: List[float] = []
        self.errors: Dict[str, int] = {}
        self.retries = 0

    def success(self, latency_seconds: float) -> None:
        with self._lock:
            self.latencies_ms.append(latency_seconds * 1000.0)

    def failure(self, code: str) -> None:
        with self._lock:
            self.errors[code] = self.errors.get(code, 0) + 1

    def add_retries(self, count: int) -> None:
        with self._lock:
            self.retries += count


def _fire(client: ServiceClient, query: str, algorithm: str,
          recorder: _Recorder) -> None:
    """Issue one timed request, funnelling failures into typed counts."""
    started = time.perf_counter()
    try:
        client.search(query, algorithm)
    except ServiceError as error:
        recorder.failure(error.code)
    except (ConnectionError, OSError):
        recorder.failure("transport")
    else:
        recorder.success(time.perf_counter() - started)


def _run_threads(workers: Sequence[threading.Thread]) -> None:
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


# ---------------------------------------------------------------------- #
# Driving disciplines
# ---------------------------------------------------------------------- #
def run_closed_loop(address: Tuple[str, int], queries: Sequence[str],
                    requests: int = 200, concurrency: int = 4,
                    algorithm: str = "validrtf",
                    retry: Optional[RetryPolicy] = None) -> LoadReport:
    """``concurrency`` users, back-to-back requests, shared budget.

    With a ``retry`` policy every simulated user heals transient failures
    itself; the report's ``retries`` field counts the heals.
    """
    if requests < 1:
        raise ValueError(f"requests must be positive, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    if not queries:
        raise ValueError("the query mix must not be empty")
    recorder = _Recorder()
    ticket = itertools.count()

    def user() -> None:
        try:
            client = ServiceClient(*address, retry=retry).connect()
        except (ConnectionError, OSError):
            recorder.failure("connect")
            return
        with client:
            try:
                while True:
                    serial = next(ticket)
                    if serial >= requests:
                        return
                    _fire(client, queries[serial % len(queries)], algorithm,
                          recorder)
            finally:
                recorder.add_retries(client.retries)

    started = time.perf_counter()
    _run_threads([threading.Thread(target=user, name=f"loadgen-{index}")
                  for index in range(concurrency)])
    elapsed = time.perf_counter() - started
    return LoadReport(mode="closed", requests=requests,
                      concurrency=concurrency, algorithm=algorithm,
                      elapsed_seconds=elapsed,
                      latencies_ms=recorder.latencies_ms,
                      errors=recorder.errors,
                      retries=recorder.retries)


def run_open_loop(address: Tuple[str, int], queries: Sequence[str],
                  rate: float = 100.0, duration: float = 2.0,
                  concurrency: int = 4,
                  algorithm: str = "validrtf",
                  retry: Optional[RetryPolicy] = None) -> LoadReport:
    """Fire at a target aggregate ``rate`` (req/s) for ``duration`` seconds."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be positive, got {concurrency}")
    if not queries:
        raise ValueError("the query mix must not be empty")
    recorder = _Recorder()
    interval = concurrency / rate
    planned_per_user = max(1, int(duration * rate / concurrency))

    def user(index: int) -> None:
        try:
            client = ServiceClient(*address, retry=retry).connect()
        except (ConnectionError, OSError):
            recorder.failure("connect")
            return
        with client:
            try:
                # Stagger users across one interval so the aggregate arrival
                # process is (roughly) uniform, not concurrency-sized bursts.
                origin = time.perf_counter() + (index / concurrency) * interval
                for step in range(planned_per_user):
                    now = time.perf_counter()
                    scheduled = origin + step * interval
                    if scheduled > now:
                        time.sleep(scheduled - now)
                    _fire(client, queries[(index + step * concurrency)
                                          % len(queries)], algorithm, recorder)
            finally:
                recorder.add_retries(client.retries)

    started = time.perf_counter()
    _run_threads([threading.Thread(target=user, args=(index,),
                                   name=f"loadgen-{index}")
                  for index in range(concurrency)])
    elapsed = time.perf_counter() - started
    return LoadReport(mode="open", requests=planned_per_user * concurrency,
                      concurrency=concurrency, algorithm=algorithm,
                      elapsed_seconds=elapsed, target_rate=rate,
                      latencies_ms=recorder.latencies_ms,
                      errors=recorder.errors,
                      retries=recorder.retries)


# ---------------------------------------------------------------------- #
# Self-hosting harness + export
# ---------------------------------------------------------------------- #
def loadtest(config: ServiceConfig, queries: Sequence[str],
             tree: Optional[XMLTree] = None,
             address: Optional[Tuple[str, int]] = None,
             mode: str = "closed", requests: int = 200, concurrency: int = 4,
             rate: float = 100.0, duration: float = 2.0,
             algorithm: str = "validrtf",
             fetch_stats: bool = False,
             retry: Optional[RetryPolicy] = None) -> LoadReport:
    """Drive one load run, self-hosting a server unless ``address`` is given.

    Returns the :class:`LoadReport`, annotated with the service config and
    (when self-hosting, or when ``fetch_stats`` is set against an external
    ``address``) the server's own pool/batcher/admission/server counters
    plus its merged metrics-registry snapshot.
    """
    def drive(target: Tuple[str, int]) -> LoadReport:
        if mode == "closed":
            return run_closed_loop(target, queries, requests=requests,
                                   concurrency=concurrency,
                                   algorithm=algorithm, retry=retry)
        if mode == "open":
            return run_open_loop(target, queries, rate=rate,
                                 duration=duration, concurrency=concurrency,
                                 algorithm=algorithm, retry=retry)
        raise ValueError(f"unknown mode {mode!r}; expected closed or open")

    if address is not None:
        report = drive(address)
        if fetch_stats:
            with ServiceClient(*address) as client:
                response = client.request({"op": "stats"})
            if response.get("ok"):
                report.server_stats = response.get("stats", {})
                report.server_metrics = response.get("metrics", {})
    else:
        with ServerThread(config, tree=tree) as server:
            report = drive(server.address)
            report.server_stats = server.service.stats()
            report.server_metrics = server.service.metrics_snapshot()
    report.config = {
        "backend": config.backend,
        "workers": config.workers,
        "cache_size": config.cache_size,
        "shards": config.shards,
        "document": config.document,
        "max_batch_size": config.max_batch_size,
        "batch_window_seconds": config.batch_window_seconds,
        "max_inflight": config.max_inflight,
        "timeout_seconds": config.timeout_seconds,
        "query_mix": len(queries),
    }
    return report


class ServiceBenchIntegrityError(AssertionError):
    """A load report failed its sanity checks; it must not be persisted."""


def verify_service_reports(reports: Sequence[LoadReport]) -> None:
    """Sanity-check reports before they become a bench artefact.

    A report that answered nothing, recorded a negative latency or whose
    percentiles are out of order is a harness bug, not a measurement —
    writing it to ``BENCH_service.json`` would archive a lie.  This is the
    service-side analogue of the core bench's representation-parity guard.
    """
    if not reports:
        raise ServiceBenchIntegrityError("no load reports to persist")
    for index, report in enumerate(reports):
        where = f"report[{index}] ({report.mode}/{report.algorithm})"
        if report.completed + report.error_count == 0:
            raise ServiceBenchIntegrityError(
                f"{where}: the run answered no request at all")
        if report.elapsed_seconds <= 0:
            raise ServiceBenchIntegrityError(
                f"{where}: non-positive elapsed time "
                f"{report.elapsed_seconds!r}")
        if any(latency < 0 for latency in report.latencies_ms):
            raise ServiceBenchIntegrityError(
                f"{where}: negative latency recorded")
        latency = report.latency_summary_ms()
        if not (latency["p50"] <= latency["p95"] <= latency["p99"]
                <= latency["max"]):
            raise ServiceBenchIntegrityError(
                f"{where}: percentiles out of order: {latency}")
        _verify_server_metrics(where, report)


def _verify_server_metrics(where: str, report: LoadReport) -> None:
    """Metrics-snapshot invariants for reports that captured one.

    The snapshot and the stats dict are derived from the same registries,
    so they must agree exactly — a divergence means the old two-bookkeeping
    bug is back.
    """
    metrics = report.server_metrics
    if not metrics:
        return
    counters = metrics.get("counters", {})
    for key, value in counters.items():
        if not isinstance(value, (int, float)) or value < 0:
            raise ServiceBenchIntegrityError(
                f"{where}: counter {key} has impossible value {value!r}")
    for key, histogram in metrics.get("histograms", {}).items():
        if histogram["count"] != sum(histogram["counts"]):
            raise ServiceBenchIntegrityError(
                f"{where}: histogram {key} count {histogram['count']} != "
                f"sum of its bucket counts")
        if histogram["count"] < 0 or histogram["sum"] < 0:
            raise ServiceBenchIntegrityError(
                f"{where}: histogram {key} has negative count/sum")
    batcher = (report.server_stats or {}).get("batcher")
    if isinstance(batcher, dict):
        for stat_key, metric in (
                ("requests", metric_names.BATCHER_REQUESTS),
                ("batches", metric_names.BATCHER_BATCHES),
                ("size_flushes", metric_names.BATCHER_SIZE_FLUSHES),
                ("timer_flushes", metric_names.BATCHER_TIMER_FLUSHES)):
            if batcher.get(stat_key) != counters.get(metric, 0):
                raise ServiceBenchIntegrityError(
                    f"{where}: stats batcher.{stat_key} "
                    f"({batcher.get(stat_key)}) disagrees with metrics "
                    f"counter {metric} ({counters.get(metric, 0)})")
    admission = (report.server_stats or {}).get("admission")
    if isinstance(admission, dict):
        for stat_key, metric in (
                ("admitted", metric_names.ADMISSION_ADMITTED),
                ("rejected", metric_names.ADMISSION_REJECTED),
                ("timed_out", metric_names.ADMISSION_TIMED_OUT)):
            if admission.get(stat_key) != counters.get(metric, 0):
                raise ServiceBenchIntegrityError(
                    f"{where}: stats admission.{stat_key} "
                    f"({admission.get(stat_key)}) disagrees with metrics "
                    f"counter {metric} ({counters.get(metric, 0)})")


def write_service_bench(reports: "Union[LoadReport, Sequence[LoadReport]]",
                        path: PathLike = "BENCH_service.json") -> "Path":
    """Persist one report (or a list of them) as the service bench artefact.

    Refuses (raises :class:`ServiceBenchIntegrityError`) when any report
    fails :func:`verify_service_reports` — the bench-honesty contract the
    lint gate enforces on every ``BENCH_*.json`` writer.
    """
    if isinstance(reports, LoadReport):
        reports = [reports]
    verify_service_reports(reports)
    payload = {"service_bench": [report.payload() for report in reports]}
    return write_json(payload, path)
