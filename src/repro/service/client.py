"""Blocking client for the newline-delimited-JSON search protocol.

One socket, one request in flight at a time (the server answers a
connection's requests in order).  The load generator opens one client per
simulated user; tests use it to compare served payloads with direct engine
calls.
"""

from __future__ import annotations

import socket
from types import TracebackType
from typing import BinaryIO, Dict, Optional, Tuple, Type

from .protocol import ServiceError, decode_message, encode_message


class ServiceClient:
    """A connected caller of one search server.

    Parameters
    ----------
    host, port:
        The server's bound address (``ServerThread.address`` unpacks here).
    timeout:
        Socket timeout in seconds for connect and each response.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.address: Tuple[str, int] = (host, int(port))
        self.timeout = timeout
        self._socket: Optional[socket.socket] = None
        self._file: Optional[BinaryIO] = None

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def connect(self) -> "ServiceClient":
        """Open the connection now (otherwise the first request does)."""
        if self._socket is None:
            self._socket = socket.create_connection(self.address,
                                                    timeout=self.timeout)
            self._file = self._socket.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc_value: Optional[BaseException],
                 traceback: Optional[TracebackType]) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Raw protocol
    # ------------------------------------------------------------------ #
    def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one request and block for its response envelope."""
        self.connect()
        self._socket.sendall(encode_message(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("the server closed the connection")
        return decode_message(line)

    def _checked(self, message: Dict[str, object]) -> Dict[str, object]:
        """Like :meth:`request` but raising typed errors on ``ok: false``."""
        response = self.request(message)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(str(error.get("code", "internal")),
                               str(error.get("message", "request failed")))
        return response

    # ------------------------------------------------------------------ #
    # Convenience operations
    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        """True iff the server answers."""
        return bool(self._checked({"op": "ping"}).get("pong"))

    def search(self, query: str, algorithm: str = "validrtf",
               cid_mode: Optional[str] = None,
               doc_filter: Optional[list] = None) -> Dict[str, object]:
        """One search; returns the canonical result payload.

        ``doc_filter`` restricts a corpus backend's search to the given doc
        ids (typed ``unsupported`` error on single-document backends).
        """
        message: Dict[str, object] = {"op": "search", "query": query,
                                      "algorithm": algorithm}
        if cid_mode is not None:
            message["cid_mode"] = cid_mode
        if doc_filter is not None:
            message["doc_filter"] = list(doc_filter)
        return self._checked(message)["result"]

    def compare(self, query: str, cid_mode: Optional[str] = None,
                doc_filter: Optional[list] = None) -> Dict[str, object]:
        """ValidRTF-vs-MaxMatch comparison payload for one query."""
        message: Dict[str, object] = {"op": "compare", "query": query}
        if cid_mode is not None:
            message["cid_mode"] = cid_mode
        if doc_filter is not None:
            message["doc_filter"] = list(doc_filter)
        return self._checked(message)["comparison"]

    def rank(self, query: str, algorithm: str = "validrtf",
             cid_mode: Optional[str] = None,
             doc_filter: Optional[list] = None) -> Dict[str, object]:
        """Ranked fragment payload for one query (memory backend only)."""
        message: Dict[str, object] = {"op": "rank", "query": query,
                                      "algorithm": algorithm}
        if cid_mode is not None:
            message["cid_mode"] = cid_mode
        if doc_filter is not None:
            message["doc_filter"] = list(doc_filter)
        return self._checked(message)["ranking"]

    def update(self, doc: str, xml: str) -> Dict[str, object]:
        """Absorb ``xml`` under doc id ``doc`` (add or shadow) via a delta
        segment; returns ``{"updated", "segment", "documents"}``.

        Needs a corpus backend served from a database (typed ``unsupported``
        error otherwise).
        """
        response = self._checked({"op": "update", "doc": doc, "xml": xml})
        return {"updated": response["updated"],
                "segment": response["segment"],
                "documents": response["documents"]}

    def delete_doc(self, doc: str) -> Dict[str, object]:
        """Tombstone document ``doc``; returns ``{"deleted", "segment",
        "documents"}`` (the post-delete live document list)."""
        response = self._checked({"op": "delete_doc", "doc": doc})
        return {"deleted": response["deleted"],
                "segment": response["segment"],
                "documents": response["documents"]}

    def stats(self, section: Optional[str] = None) -> Dict[str, object]:
        """The server's merged pool/batcher/admission/server counters.

        ``section`` narrows the payload to one layer (typed ``bad_request``
        error on unknown section names).
        """
        message: Dict[str, object] = {"op": "stats"}
        if section is not None:
            message["section"] = section
        return self._checked(message)["stats"]

    def metrics(self) -> Dict[str, object]:
        """The server's merged metrics-registry snapshot.

        The ``counters`` / ``gauges`` / ``histograms`` mapping every
        registry of the serving stack folds into (see
        :meth:`repro.service.server.SearchService.metrics_snapshot`).
        """
        return self._checked({"op": "stats"})["metrics"]

    def algorithms(self) -> Dict[str, object]:
        """The algorithm and cid-mode names the server accepts."""
        response = self._checked({"op": "algorithms"})
        return {"algorithms": response["algorithms"],
                "cid_modes": response["cid_modes"]}

    def __repr__(self) -> str:
        state = "connected" if self._socket is not None else "disconnected"
        return f"ServiceClient({self.address[0]}:{self.address[1]}, {state})"
