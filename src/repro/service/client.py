"""Blocking client for the newline-delimited-JSON search protocol.

One socket, one request in flight at a time (the server answers a
connection's requests in order).  The load generator opens one client per
simulated user; tests use it to compare served payloads with direct engine
calls.

Self-healing: constructed with a :class:`RetryPolicy`, the client retries
requests that fail with a retryable typed error (``overloaded``,
``timeout``, ``degraded``) or a transport error, sleeping an exponential
backoff with deterministic jitter between attempts and reconnecting after
transport failures.  Mutations (:meth:`update` / :meth:`delete_doc`)
always carry a generated idempotency key that is reused across retries,
so a replay of a mutation whose response was lost is a journal-backed
no-op answering the original result — retrying a mutation can never
double-apply it.
"""

from __future__ import annotations

import itertools
import socket
import time
import uuid
from dataclasses import dataclass, field
from random import Random
from types import TracebackType
from typing import BinaryIO, Dict, Optional, Tuple, Type

from .protocol import (
    ERROR_DEGRADED,
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    ServiceError,
    decode_message,
    encode_message,
)

#: Distinguishes the deterministic jitter streams of concurrently-built
#: clients (each client seeds its RNG from policy seed + its own ordinal).
_CLIENT_COUNTER = itertools.count()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``attempts`` is the total number of tries (so ``attempts=1`` disables
    retrying).  The delay before retry *n* (1-based) is
    ``min(max_delay, base_delay * 2**(n-1))`` scaled by a jitter factor
    drawn uniformly from ``[1 - jitter, 1]``.
    """

    attempts: int = 4
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_codes: Tuple[str, ...] = field(
        default=(ERROR_OVERLOADED, ERROR_TIMEOUT, ERROR_DEGRADED))

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry_number: int, rng: Random) -> float:
        """Backoff before the ``retry_number``-th retry (1-based)."""
        raw = min(self.max_delay_seconds,
                  self.base_delay_seconds * (2 ** (retry_number - 1)))
        return raw * (1.0 - self.jitter * rng.random())


class ServiceClient:
    """A connected caller of one search server.

    Parameters
    ----------
    host, port:
        The server's bound address (``ServerThread.address`` unpacks here).
    timeout:
        Socket timeout in seconds for connect and each response.
    retry:
        Optional :class:`RetryPolicy`; without one every failure surfaces
        immediately (the pre-existing behaviour).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.address: Tuple[str, int] = (host, int(port))
        self.timeout = timeout
        self.retry = retry
        #: Retries actually performed (for load reports / chaos smokes).
        self.retries = 0
        self._rng = Random(((retry.seed if retry else 0) * 7351)
                           + next(_CLIENT_COUNTER))
        self._socket: Optional[socket.socket] = None
        self._file: Optional[BinaryIO] = None

    # ------------------------------------------------------------------ #
    # Connection management
    # ------------------------------------------------------------------ #
    def connect(self) -> "ServiceClient":
        """Open the connection now (otherwise the first request does)."""
        if self._socket is None:
            self._socket = socket.create_connection(self.address,
                                                    timeout=self.timeout)
            self._file = self._socket.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc_value: Optional[BaseException],
                 traceback: Optional[TracebackType]) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Raw protocol
    # ------------------------------------------------------------------ #
    def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one request and block for its response envelope."""
        self.connect()
        assert self._socket is not None and self._file is not None
        self._socket.sendall(encode_message(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("the server closed the connection")
        return decode_message(line)

    def _checked_once(self, message: Dict[str, object]) -> Dict[str, object]:
        """One attempt, raising typed errors on ``ok: false``."""
        response = self.request(message)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(str(error.get("code", "internal")),
                               str(error.get("message", "request failed")))
        return response

    def _checked(self, message: Dict[str, object]) -> Dict[str, object]:
        """Like :meth:`request` but typed — and retrying, under a policy.

        Typed errors outside the policy's retry codes surface immediately;
        transport errors drop the connection so the next attempt
        reconnects.  Safe for mutations because every mutation message
        carries an idempotency key (see :meth:`update`).
        """
        policy = self.retry
        if policy is None:
            return self._checked_once(message)
        last_error: Optional[Exception] = None
        for attempt in range(policy.attempts):
            if attempt:
                self.retries += 1
                time.sleep(policy.delay(attempt, self._rng))
            try:
                return self._checked_once(message)
            except ServiceError as error:
                if error.code not in policy.retry_codes:
                    raise
                last_error = error
            except (ConnectionError, socket.timeout, OSError) as error:
                self.close()
                last_error = error
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------ #
    # Convenience operations
    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        """True iff the server answers."""
        return bool(self._checked({"op": "ping"}).get("pong"))

    def search(self, query: str, algorithm: str = "validrtf",
               cid_mode: Optional[str] = None,
               doc_filter: Optional[list] = None) -> Dict[str, object]:
        """One search; returns the canonical result payload.

        ``doc_filter`` restricts a corpus backend's search to the given doc
        ids (typed ``unsupported`` error on single-document backends).
        """
        message: Dict[str, object] = {"op": "search", "query": query,
                                      "algorithm": algorithm}
        if cid_mode is not None:
            message["cid_mode"] = cid_mode
        if doc_filter is not None:
            message["doc_filter"] = list(doc_filter)
        return self._checked(message)["result"]

    def compare(self, query: str, cid_mode: Optional[str] = None,
                doc_filter: Optional[list] = None) -> Dict[str, object]:
        """ValidRTF-vs-MaxMatch comparison payload for one query."""
        message: Dict[str, object] = {"op": "compare", "query": query}
        if cid_mode is not None:
            message["cid_mode"] = cid_mode
        if doc_filter is not None:
            message["doc_filter"] = list(doc_filter)
        return self._checked(message)["comparison"]

    def rank(self, query: str, algorithm: str = "validrtf",
             cid_mode: Optional[str] = None,
             doc_filter: Optional[list] = None,
             top_k: Optional[int] = None, early_terminate: bool = False,
             explain: bool = False) -> Dict[str, object]:
        """Ranked fragment payload for one query (memory backend only).

        ``top_k`` truncates to the k best fragments; ``early_terminate``
        (corpus backends, requires ``top_k``) lets the threshold driver skip
        provably-unneeded documents; ``explain`` attaches a per-component
        score breakdown to every row.
        """
        return self.rank_response(
            query, algorithm, cid_mode=cid_mode, doc_filter=doc_filter,
            top_k=top_k, early_terminate=early_terminate,
            explain=explain)["ranking"]

    def rank_response(self, query: str, algorithm: str = "validrtf",
                      cid_mode: Optional[str] = None,
                      doc_filter: Optional[list] = None,
                      top_k: Optional[int] = None,
                      early_terminate: bool = False,
                      explain: bool = False) -> Dict[str, object]:
        """The full rank response — ``ranking`` plus (on corpus backends)
        the ``rank_stats`` visit accounting of the retrieval driver."""
        message: Dict[str, object] = {"op": "rank", "query": query,
                                      "algorithm": algorithm}
        if cid_mode is not None:
            message["cid_mode"] = cid_mode
        if doc_filter is not None:
            message["doc_filter"] = list(doc_filter)
        if top_k is not None:
            message["top_k"] = top_k
        if early_terminate:
            message["early_terminate"] = True
        if explain:
            message["explain"] = True
        return self._checked(message)

    def update(self, doc: str, xml: str,
               idempotency_key: Optional[str] = None) -> Dict[str, object]:
        """Absorb ``xml`` under doc id ``doc`` (add or shadow) via a delta
        segment; returns ``{"updated", "segment", "documents"}``.

        Needs a corpus backend served from a database (typed ``unsupported``
        error otherwise).  A key is generated when not given and reused
        across retries, so a replayed update is a journal-backed no-op.
        """
        key = idempotency_key or uuid.uuid4().hex
        response = self._checked({"op": "update", "doc": doc, "xml": xml,
                                  "key": key})
        return {"updated": response["updated"],
                "segment": response["segment"],
                "documents": response["documents"]}

    def delete_doc(self, doc: str,
                   idempotency_key: Optional[str] = None
                   ) -> Dict[str, object]:
        """Tombstone document ``doc``; returns ``{"deleted", "segment",
        "documents"}`` (the post-delete live document list).

        Idempotency-keyed exactly like :meth:`update`.
        """
        key = idempotency_key or uuid.uuid4().hex
        response = self._checked({"op": "delete_doc", "doc": doc,
                                  "key": key})
        return {"deleted": response["deleted"],
                "segment": response["segment"],
                "documents": response["documents"]}

    def compact(self) -> Dict[str, object]:
        """Fold every live delta segment into the base generation.

        Returns ``{"compacted", "segments", "documents"}`` where
        ``compacted`` carries the store's folded/dropped/segments
        counters.  Needs a mutable corpus backend, like :meth:`update`.
        """
        response = self._checked({"op": "compact"})
        return {"compacted": response["compacted"],
                "segments": response["segments"],
                "documents": response["documents"]}

    def stats(self, section: Optional[str] = None) -> Dict[str, object]:
        """The server's merged pool/batcher/admission/server counters.

        ``section`` narrows the payload to one layer (typed ``bad_request``
        error on unknown section names).
        """
        message: Dict[str, object] = {"op": "stats"}
        if section is not None:
            message["section"] = section
        return self._checked(message)["stats"]

    def metrics(self) -> Dict[str, object]:
        """The server's merged metrics-registry snapshot.

        The ``counters`` / ``gauges`` / ``histograms`` mapping every
        registry of the serving stack folds into (see
        :meth:`repro.service.server.SearchService.metrics_snapshot`).
        """
        return self._checked({"op": "stats"})["metrics"]

    def algorithms(self) -> Dict[str, object]:
        """The algorithm and cid-mode names the server accepts."""
        response = self._checked({"op": "algorithms"})
        return {"algorithms": response["algorithms"],
                "cid_modes": response["cid_modes"]}

    def __repr__(self) -> str:
        state = "connected" if self._socket is not None else "disconnected"
        return f"ServiceClient({self.address[0]}:{self.address[1]}, {state})"
