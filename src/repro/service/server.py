"""The asyncio front end: newline-delimited JSON over TCP.

Three layers, assembled by :class:`ServiceConfig.build` or by hand:

* :class:`SearchService` — transport-free request dispatch.  Validates the
  request, runs it through admission control (bounded in-flight depth +
  deadline) and answers with the canonical payloads of
  :mod:`~repro.service.protocol`.  ``search`` goes through the
  :class:`~repro.service.batcher.RequestBatcher`; ``compare`` and ``rank``
  dispatch straight to the pool.
* :class:`SearchServer` — binds the service to a TCP socket with
  :func:`asyncio.start_server`; one JSON object per line in, one per line
  out, requests of one connection answered in order.
* :class:`ServerThread` — hosts a server (and its event loop) on a
  background thread, for tests, examples and the self-hosting load
  generator.

Supported operations::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "algorithms"}
    {"op": "search",  "query": ..., "algorithm": ..., "cid_mode": ...,
                      "doc_filter": [...]}
    {"op": "compare", "query": ..., "cid_mode": ...}
    {"op": "rank",    "query": ..., "algorithm": ..., "cid_mode": ...}
    {"op": "update",     "doc": ..., "xml": ..., "key": ...}
    {"op": "delete_doc", "doc": ..., "key": ...}
    {"op": "compact"}

Every request may carry an ``id``, echoed verbatim in the response.
``doc_filter`` (a list of doc ids) restricts a search to a subset of a corpus
backend's documents; on non-corpus backends it answers with the typed
``unsupported`` error.

``update`` and ``delete_doc`` are the live-mutation operations: the first
shreds the ``xml`` payload into a delta segment under the given doc id
(adding the document if it is new, shadowing the stored version otherwise),
the second writes a tombstone.  Both need a corpus backend served from a
database (``--backend corpus --db ...``) without a pinned document subset —
anything else answers ``unsupported``.  After a mutation commits, the pool's
worker engines are invalidated, so every later request sees the new corpus
without a restart; responses carry the delta segment id and the live
document list.

Mutations may carry an idempotency ``key``: replaying a keyed mutation
whose response was lost answers the original outcome from the mutation
journal instead of applying it twice.  ``compact`` folds every delta
segment into the base generation on demand (the background compactor does
the same on a segment-count trigger).  Storage faults during a mutation
answer the typed ``degraded`` error — safe to retry, because the journal
rolls half-applied mutations back or forward.
"""

from __future__ import annotations

import asyncio
import sqlite3
import sys
import threading
from dataclasses import dataclass
from time import perf_counter
from types import TracebackType
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from ..core import ALGORITHM_NAMES, Query, SearchEngine
from ..core.errors import EmptyQueryError, SearchError
from ..corpus import CorpusSearchEngine
from ..corpus.engine import RankedCorpusSearch
from ..core.node_record import CID_MODES
from ..faults import FaultPlan
from ..obs import MetricsRegistry, Snapshot, merge_snapshots, split_series_key
from ..obs import names as metric_names
from ..storage import SegmentedStore
from ..storage.errors import DocumentNotFound
from ..xmltree import ParseError, XMLTree, parse_string
from .admission import DEFAULT_MAX_INFLIGHT, AdmissionController
from .batcher import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_WAIT_SECONDS,
    RequestBatcher,
)
from .compactor import BackgroundCompactor
from .engine_pool import DEFAULT_CACHE_SIZE, DEFAULT_WORKERS, EnginePool
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEGRADED,
    ERROR_INTERNAL,
    ERROR_UNKNOWN_ALGORITHM,
    ERROR_UNSUPPORTED,
    ServiceError,
    comparison_payload,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    rank_stats_payload,
    ranking_payload,
    result_payload,
)

#: StreamReader line limit — queries are tiny, but leave headroom.
_READLINE_LIMIT = 1 << 20


def _label_value(label_body: str, key: str) -> str:
    """Extract one label's value from a snapshot key's label body."""
    for part in label_body.split(","):
        name, _, value = part.partition("=")
        if name == key:
            return value.strip('"')
    return ""


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the serving stack in one place.

    The defaults favour a laptop demo: four workers, 2 ms batch window,
    64 in-flight requests, no deadline.
    """

    backend: str = "memory"
    workers: int = DEFAULT_WORKERS
    cache_size: int = DEFAULT_CACHE_SIZE
    shards: int = 2
    db_path: Optional[str] = None
    document: str = "service"
    cid_mode: str = "minmax"
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    batch_window_seconds: float = DEFAULT_MAX_WAIT_SECONDS
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    timeout_seconds: Optional[float] = None
    representation: str = "packed"
    #: Corpus backend only: serve this doc-id subset of the database
    #: instead of every stored document.
    documents: Optional[Tuple[str, ...]] = None
    #: Log (and count) requests slower than this many seconds; ``None``
    #: disables the slow-query log.
    slow_query_seconds: Optional[float] = None
    #: Fault-plan spec string (``seed=7,error=0.05,...``) injected at the
    #: storage seam; ``None`` serves faithfully.  Needs a store-backed
    #: backend (sqlite, sharded, or corpus with ``db_path``).
    fault_plan: Optional[str] = None
    #: Start a background compactor folding delta segments once this many
    #: pile up; ``None`` disables it.  Needs a mutable corpus backend.
    compact_segments: Optional[int] = None
    #: Poll period of the background compactor's trigger check.
    compact_interval_seconds: float = 0.5

    def build(self, tree: Optional[XMLTree] = None) -> "SearchService":
        """Assemble pool + batcher + admission into a ready service.

        One shared :class:`~repro.obs.MetricsRegistry` carries the
        service-level series (requests, queue waits, shed counters); worker
        engines keep per-thread registries merged on snapshot.
        """
        plan = (FaultPlan.parse(self.fault_plan)
                if self.fault_plan else None)
        pool = EnginePool.for_backend(
            self.backend, tree=tree, workers=self.workers,
            cache_size=self.cache_size, shards=self.shards,
            db_path=self.db_path, document=self.document,
            representation=self.representation,
            documents=self.documents,
            fault_plan=plan)
        metrics = MetricsRegistry()
        if plan is not None:
            plan.bind(metrics)
        if pool.mutable_store is not None:
            pool.mutable_store.set_metrics(metrics)
        compactor: Optional[BackgroundCompactor] = None
        if self.compact_segments is not None:
            if pool.mutable_store is None:
                pool.shutdown()
                raise ValueError(
                    "background compaction needs a mutable corpus backend "
                    "(--backend corpus --db ...)")
            compactor = BackgroundCompactor(
                pool.mutable_store, pool, self.compact_segments,
                self.compact_interval_seconds, metrics=metrics)
        return SearchService(
            pool,
            batcher=RequestBatcher(pool, self.max_batch_size,
                                   self.batch_window_seconds,
                                   metrics=metrics),
            admission=AdmissionController(self.max_inflight,
                                          self.timeout_seconds,
                                          metrics=metrics),
            default_cid_mode=self.cid_mode,
            owns_pool=True,
            metrics=metrics,
            slow_query_seconds=self.slow_query_seconds,
            compactor=compactor,
        )


class SearchService:
    """Transport-free dispatch: a request dict in, a response dict out."""

    #: Ops that are answered without touching engines or admission.  They
    #: deliberately record **no** request metrics: a ``stats`` request must
    #: return exactly the state the service was in when it arrived (this is
    #: what makes the wire response byte-identical to a direct
    #: :meth:`stats` call).
    _INTROSPECTION_OPS = frozenset({"ping", "stats", "algorithms"})

    def __init__(self, pool: EnginePool,
                 batcher: Optional[RequestBatcher] = None,
                 admission: Optional[AdmissionController] = None,
                 default_cid_mode: str = "minmax",
                 owns_pool: bool = False,
                 metrics: Optional[MetricsRegistry] = None,
                 slow_query_seconds: Optional[float] = None,
                 compactor: Optional[BackgroundCompactor] = None) -> None:
        if slow_query_seconds is not None and slow_query_seconds < 0:
            # Constructor-time misconfiguration, not a wire answer.
            raise ValueError(f"slow_query_seconds must be >= 0, "  # lint: allow(typed-errors)
                             f"got {slow_query_seconds}")
        self.pool = pool
        self.batcher = batcher if batcher is not None else RequestBatcher(pool)
        self.admission = (admission if admission is not None
                          else AdmissionController())
        self.default_cid_mode = default_cid_mode
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry())
        self.slow_query_seconds = slow_query_seconds
        self._owns_pool = owns_pool
        self.compactor = compactor
        if compactor is not None:
            compactor.start()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """Answer one request; never raises — failures become typed errors."""
        request_id = request.get("id")
        op = str(request.get("op", "search"))
        measured = op not in self._INTROSPECTION_OPS
        started = perf_counter() if measured else 0.0
        try:
            response = await self._dispatch(request)
        except ServiceError as error:
            if measured:
                self._observe_request(op, started, error.code, request)
            return error_response(error.code, error.message, request_id)
        except Exception as error:  # noqa: BLE001 - the wire needs an answer  # lint: allow(exception-discipline)
            if measured:
                self._observe_request(op, started, ERROR_INTERNAL, request)
            return error_response(ERROR_INTERNAL,
                                  f"{type(error).__name__}: {error}",
                                  request_id)
        if measured:
            self._observe_request(op, started, None, request)
        if request_id is not None:
            response["id"] = request_id
        return response

    def _observe_request(self, op: str, started: float,
                         error_code: Optional[str],
                         request: Dict[str, object]) -> None:
        """Record one answered (non-introspection) request."""
        elapsed = perf_counter() - started
        self.metrics.counter(metric_names.SERVER_REQUESTS,
                             {"op": op}).inc()
        self.metrics.histogram(metric_names.SERVER_REQUEST_SECONDS,
                               {"op": op}).observe(elapsed)
        if error_code is not None:
            self.metrics.counter(metric_names.SERVER_ERRORS,
                                 {"code": error_code}).inc()
        if (self.slow_query_seconds is not None
                and elapsed >= self.slow_query_seconds):
            self.metrics.counter(metric_names.SERVER_SLOW_QUERIES).inc()
            query = request.get("query")
            detail = f" query={query!r}" if isinstance(query, str) else ""
            print(f"[slow-query] op={op} elapsed_ms={elapsed * 1000.0:.1f} "
                  f"threshold_ms={self.slow_query_seconds * 1000.0:g}"
                  f"{detail}", file=sys.stderr)

    async def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op", "search")
        if op == "ping":
            return ok_response(pong=True)
        if op == "stats":
            return ok_response(**self._stats_payload(request))
        if op == "algorithms":
            return ok_response(algorithms=list(ALGORITHM_NAMES),
                               cid_modes=list(CID_MODES))
        if op == "search":
            return await self._search(request)
        if op == "compare":
            return await self._compare(request)
        if op == "rank":
            return await self._rank(request)
        if op == "update":
            return await self._update(request)
        if op == "delete_doc":
            return await self._delete_doc(request)
        if op == "compact":
            return await self._compact(request)
        raise ServiceError(ERROR_BAD_REQUEST, f"unknown op {op!r}")

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def _validated(self, request: Dict[str, object]) -> Tuple[str, str, str]:
        """Extract and validate (query, algorithm, cid_mode)."""
        query = request.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ServiceError(ERROR_BAD_REQUEST,
                               "a non-empty string 'query' is required")
        try:
            Query.parse(query)
        except EmptyQueryError as error:
            raise ServiceError(ERROR_BAD_REQUEST, str(error)) from None
        algorithm = request.get("algorithm", "validrtf")
        if algorithm not in ALGORITHM_NAMES:
            raise ServiceError(
                ERROR_UNKNOWN_ALGORITHM,
                f"unknown algorithm {algorithm!r}; "
                f"expected one of {list(ALGORITHM_NAMES)}")
        cid_mode = request.get("cid_mode", self.default_cid_mode)
        if cid_mode not in CID_MODES:
            raise ServiceError(
                ERROR_BAD_REQUEST,
                f"unknown cid_mode {cid_mode!r}; "
                f"expected one of {list(CID_MODES)}")
        return query, algorithm, cid_mode

    @staticmethod
    def _doc_filter(request: Dict[str, object]) -> Optional[List[str]]:
        """The validated per-request ``doc_filter``, or ``None``."""
        doc_filter = request.get("doc_filter")
        if doc_filter is None:
            return None
        if not isinstance(doc_filter, list) or not doc_filter or \
                not all(isinstance(doc, str) and doc for doc in doc_filter):
            raise ServiceError(
                ERROR_BAD_REQUEST,
                "doc_filter must be a non-empty list of document ids")
        return doc_filter

    @staticmethod
    def _run_filtered(engine: Union[SearchEngine, CorpusSearchEngine],
                      cid_mode: Optional[str], doc_filter: Sequence[str],
                      run: Callable[[CorpusSearchEngine], object]) -> object:
        """Worker-side dispatch of a doc-filtered operation (corpus only)."""
        if not getattr(engine, "is_corpus", False):
            raise ServiceError(
                ERROR_UNSUPPORTED,
                "doc_filter needs a corpus backend (serve with "
                "--backend corpus)")
        engine = EnginePool._with_cid_mode(engine, cid_mode)
        try:
            return run(engine)
        except DocumentNotFound as error:
            raise ServiceError(ERROR_BAD_REQUEST, str(error)) from None

    @staticmethod
    def _filtered_search(engine: Union[SearchEngine, CorpusSearchEngine],
                         query: str, algorithm: str, cid_mode: Optional[str],
                         doc_filter: Sequence[str]) -> object:
        return SearchService._run_filtered(
            engine, cid_mode, doc_filter,
            lambda e: e.search(query, algorithm, doc_filter=doc_filter))

    @staticmethod
    def _filtered_compare(engine: Union[SearchEngine, CorpusSearchEngine],
                          query: str, cid_mode: Optional[str],
                          doc_filter: Sequence[str]) -> object:
        return SearchService._run_filtered(
            engine, cid_mode, doc_filter,
            lambda e: e.compare(query, doc_filter=doc_filter))

    @staticmethod
    def _filtered_rank(engine: Union[SearchEngine, CorpusSearchEngine],
                       query: str, algorithm: str, cid_mode: Optional[str],
                       doc_filter: Sequence[str], top_k: Optional[int],
                       early_terminate: bool) -> object:
        return SearchService._run_filtered(
            engine, cid_mode, doc_filter,
            lambda e: e.rank_search(query, algorithm, top_k=top_k,
                                    doc_filter=doc_filter,
                                    early_terminate=early_terminate))

    async def _search(self, request: Dict[str, object]) -> Dict[str, object]:
        query, algorithm, cid_mode = self._validated(request)
        doc_filter = self._doc_filter(request)
        with self.admission:
            if doc_filter is None:
                result = await self.admission.run(
                    self.batcher.submit(query, algorithm, cid_mode))
            else:
                # Filtered requests skip the batcher: a batch must agree on
                # its document subset, and filtered traffic is rare enough
                # that coalescing it would mostly create one-request batches.
                result = await self.admission.run(asyncio.wrap_future(
                    self.pool.submit(self._filtered_search, query, algorithm,
                                     cid_mode, doc_filter)))
        return ok_response(result=result_payload(result))

    async def _compare(self, request: Dict[str, object]) -> Dict[str, object]:
        query, _, cid_mode = self._validated(request)
        doc_filter = self._doc_filter(request)
        with self.admission:
            if doc_filter is None:
                future = self.pool.compare(query, cid_mode)
            else:
                future = self.pool.submit(self._filtered_compare, query,
                                          cid_mode, doc_filter)
            outcome = await self.admission.run(asyncio.wrap_future(future))
        return ok_response(comparison=comparison_payload(outcome))

    @staticmethod
    def _rank_options(request: Dict[str, object]
                      ) -> Tuple[Optional[int], bool, bool]:
        """Validate the rank op's (top_k, early_terminate, explain) fields."""
        top_k = request.get("top_k")
        if top_k is not None and (isinstance(top_k, bool) or
                                  not isinstance(top_k, int) or top_k < 0):
            raise ServiceError(ERROR_BAD_REQUEST,
                               "top_k must be a non-negative integer")
        flags = {}
        for field in ("early_terminate", "explain"):
            value = request.get(field, False)
            if not isinstance(value, bool):
                raise ServiceError(ERROR_BAD_REQUEST,
                                   f"{field} must be a boolean")
            flags[field] = value
        if flags["early_terminate"] and top_k is None:
            raise ServiceError(ERROR_BAD_REQUEST,
                               "early_terminate needs a top_k bound to "
                               "terminate against")
        return top_k, flags["early_terminate"], flags["explain"]

    async def _rank(self, request: Dict[str, object]) -> Dict[str, object]:
        query, algorithm, cid_mode = self._validated(request)
        doc_filter = self._doc_filter(request)
        top_k, early_terminate, explain = self._rank_options(request)
        with self.admission:
            try:
                if doc_filter is None:
                    future = self.pool.rank(query, algorithm, cid_mode,
                                            top_k=top_k,
                                            early_terminate=early_terminate)
                else:
                    future = self.pool.submit(
                        self._filtered_rank, query, algorithm, cid_mode,
                        doc_filter, top_k, early_terminate)
                ranked = await self.admission.run(asyncio.wrap_future(future))
            except SearchError as error:
                # Ranking needs a resident tree; tree-free disk backends
                # answer with the typed "unsupported" error instead of 500s.
                raise ServiceError(ERROR_UNSUPPORTED, str(error)) from None
        if isinstance(ranked, RankedCorpusSearch):
            return ok_response(
                ranking=ranking_payload(ranked.ranked, explain=explain),
                rank_stats=rank_stats_payload(ranked))
        return ok_response(ranking=ranking_payload(ranked, explain=explain))

    # ------------------------------------------------------------------ #
    # Live mutations
    # ------------------------------------------------------------------ #
    def _mutable_store(self) -> "SegmentedStore":
        """The pool's writable store, or the typed ``unsupported`` error."""
        store = self.pool.mutable_store
        if store is None:
            raise ServiceError(
                ERROR_UNSUPPORTED,
                "live updates need a corpus backend served from a database "
                "without a pinned document subset (serve with "
                "--backend corpus --db ...)")
        return store

    @staticmethod
    def _required_doc(request: Dict[str, object]) -> str:
        doc = request.get("doc")
        if not isinstance(doc, str) or not doc.strip():
            raise ServiceError(ERROR_BAD_REQUEST,
                               "a non-empty string 'doc' is required")
        return doc

    @staticmethod
    def _idempotency_key(request: Dict[str, object]) -> Optional[str]:
        """The validated optional idempotency ``key`` of a mutation."""
        key = request.get("key")
        if key is None:
            return None
        if not isinstance(key, str) or not key.strip():
            raise ServiceError(ERROR_BAD_REQUEST,
                               "'key' must be a non-empty string when given")
        return key

    @staticmethod
    def _degraded_message(error: sqlite3.OperationalError) -> str:
        """The message of a storage fault's ``degraded`` answer."""
        return (f"storage fault during the mutation ({error}); the mutation "
                f"journal guarantees a clean retry")

    async def _update(self, request: Dict[str, object]) -> Dict[str, object]:
        store = self._mutable_store()
        doc = self._required_doc(request)
        key = self._idempotency_key(request)
        xml = request.get("xml")
        if not isinstance(xml, str) or not xml.strip():
            raise ServiceError(ERROR_BAD_REQUEST,
                               "a non-empty string 'xml' is required")
        try:
            tree = parse_string(xml, doc)
        except ParseError as error:
            raise ServiceError(ERROR_BAD_REQUEST,
                               f"unparsable xml: {error}") from None

        def mutate() -> Tuple[int, List[str]]:
            # The post-mutation reads stay inside this worker-side try as
            # well: under a fault plan they can fault too, and they must
            # answer `degraded`, not `internal`.
            try:
                segment = store.update_document(tree, doc,
                                                idempotency_key=key)
                documents = store.documents()
            except sqlite3.OperationalError as error:
                raise ServiceError(ERROR_DEGRADED,
                                   self._degraded_message(error)) from error
            # Worker engines are snapshots; rebuild them so every request
            # dispatched from here on sees the post-update corpus.
            self.pool.invalidate_engines()
            return segment, documents

        with self.admission:
            segment, documents = await self.admission.run(asyncio.wrap_future(
                self.pool.submit_direct(mutate)))
        return ok_response(updated=doc, segment=segment,
                           documents=documents)

    async def _delete_doc(self,
                          request: Dict[str, object]) -> Dict[str, object]:
        store = self._mutable_store()
        doc = self._required_doc(request)
        key = self._idempotency_key(request)

        def mutate() -> Tuple[int, List[str]]:
            try:
                # A keyed replay answers the recorded segment before any
                # liveness checks — the document is already gone, and that
                # is exactly what makes the replay a success, not a bad
                # request.
                if key is not None:
                    replay = store.replay_of(key)
                    if replay is not None:
                        return replay, store.documents()
                live = store.documents()
            except sqlite3.OperationalError as error:
                raise ServiceError(ERROR_DEGRADED,
                                   self._degraded_message(error)) from error
            if doc not in live:
                raise ServiceError(
                    ERROR_BAD_REQUEST,
                    f"no document named {doc!r}; stored: {', '.join(live)}")
            if len(live) == 1:
                raise ServiceError(
                    ERROR_BAD_REQUEST,
                    f"refusing to delete {doc!r}: it is the last live "
                    f"document (a corpus backend cannot serve an empty "
                    f"database)")
            try:
                segment = store.delete_document(doc, idempotency_key=key)
                documents = store.documents()
            except DocumentNotFound as error:  # raced with another delete
                raise ServiceError(ERROR_BAD_REQUEST, str(error)) from None
            except sqlite3.OperationalError as error:
                raise ServiceError(ERROR_DEGRADED,
                                   self._degraded_message(error)) from error
            self.pool.invalidate_engines()
            return segment, documents

        with self.admission:
            segment, documents = await self.admission.run(asyncio.wrap_future(
                self.pool.submit_direct(mutate)))
        return ok_response(deleted=doc, segment=segment,
                           documents=documents)

    async def _compact(self, request: Dict[str, object]) -> Dict[str, object]:
        store = self._mutable_store()

        def mutate() -> Tuple[Dict[str, int], int, List[str]]:
            try:
                outcome = store.compact()
                segments = store.segment_count()
                documents = store.documents()
            except sqlite3.OperationalError as error:
                raise ServiceError(ERROR_DEGRADED,
                                   self._degraded_message(error)) from error
            self.pool.invalidate_engines()
            return outcome, segments, documents

        with self.admission:
            outcome, segments, documents = await self.admission.run(
                asyncio.wrap_future(self.pool.submit_direct(mutate)))
        return ok_response(compacted=outcome, segments=segments,
                           documents=documents)

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def _stats_payload(self, request: Dict[str, object]) -> Dict[str, object]:
        """The ``stats`` op's payload, with optional section filtering."""
        stats = self.stats()
        section = request.get("section")
        if section is not None:
            if not isinstance(section, str) or section not in stats:
                raise ServiceError(
                    ERROR_BAD_REQUEST,
                    f"unknown stats section {section!r}; "
                    f"expected one of {sorted(stats)}")
            stats = {section: stats[section]}
        return {"stats": stats, "metrics": self.metrics_snapshot()}

    def stats(self) -> Dict[str, object]:
        """One merged stats payload: pool, batcher, admission, server.

        A ``compactor`` section appears only when a background compactor
        is attached — the key set stays stable for every other stack.
        """
        stats: Dict[str, object] = {
            "pool": self.pool.stats(),
            "batcher": self.batcher.stats(),
            "admission": self.admission.stats(),
            "server": self._server_stats(),
        }
        if self.compactor is not None:
            stats["compactor"] = self.compactor.stats()
        return stats

    def _server_stats(self) -> Dict[str, object]:
        """Front-door counters — derived from the service registry."""
        counters = self.metrics.snapshot()["counters"]
        requests: Dict[str, object] = {}
        errors: Dict[str, object] = {}
        for key, value in counters.items():
            name, labels = split_series_key(key)
            if name == metric_names.SERVER_REQUESTS:
                requests[_label_value(labels, "op")] = value
            elif name == metric_names.SERVER_ERRORS:
                errors[_label_value(labels, "code")] = value
        return {
            "requests": requests,
            "errors": errors,
            "slow_queries": counters.get(metric_names.SERVER_SLOW_QUERIES, 0),
            "slow_query_seconds": self.slow_query_seconds,
        }

    def metrics_snapshot(self) -> Snapshot:
        """Every registry of the stack, merged into one snapshot.

        Covers the service-level registry (shared with the batcher and the
        admission controller when built via :class:`ServiceConfig`, distinct
        when assembled by hand) plus every pool worker's engine registry.
        """
        registries = [self.metrics]
        for candidate in (self.batcher.metrics, self.admission.metrics):
            if all(candidate is not registry for registry in registries):
                registries.append(candidate)
        snapshots = [registry.snapshot() for registry in registries]
        snapshots.append(self.pool.metrics_snapshot())
        return merge_snapshots(snapshots)

    def close(self) -> None:
        """Stop the compactor, flush the batcher, stop an owned pool."""
        if self.compactor is not None:
            self.compactor.stop()
        self.batcher.close()
        if self._owns_pool:
            self.pool.shutdown()


# ---------------------------------------------------------------------- #
# TCP binding
# ---------------------------------------------------------------------- #
class SearchServer:
    """One JSON object per line over TCP, answered in per-connection order."""

    def __init__(self, service: SearchService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves on start)."""
        if self._server is None:
            raise RuntimeError("the server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> Tuple[str, int]:
        """Bind the socket; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=_READLINE_LIMIT)
        return self.address

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's ``serve`` loop)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, close the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        """One connection's request loop, hardened against bad peers.

        A mid-request disconnect drops this connection (counted, served
        on) without touching the others; an oversized request line gets
        the typed ``bad_request`` answer before the connection closes
        (the stream is desynchronized past that point, so it cannot be
        kept).  Malformed JSON lines answer ``bad_request`` and keep the
        connection — the framing is still intact.
        """
        metrics = self.service.metrics
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    # The peer vanished mid-request; keep serving others.
                    metrics.counter(metric_names.SERVER_DISCONNECTS).inc()
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # Line beyond the read limit.  Answer with the typed
                    # error, then close: the tail of the oversized line is
                    # still in flight, so the framing cannot recover.
                    writer.write(encode_message(error_response(
                        ERROR_BAD_REQUEST,
                        f"request line exceeds the {_READLINE_LIMIT}-byte "
                        f"limit")))
                    try:
                        await writer.drain()
                    except (ConnectionError, OSError):
                        metrics.counter(
                            metric_names.SERVER_DISCONNECTS).inc()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_message(line)
                except ServiceError as error:
                    response = error.response()
                else:
                    response = await self.service.handle(request)
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    metrics.counter(metric_names.SERVER_DISCONNECTS).inc()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass


class ServerThread:
    """Host a server + event loop on a background thread.

    Accepts a ready :class:`SearchService`, a bare :class:`EnginePool` (a
    default service is wrapped around it) or a :class:`ServiceConfig` plus
    ``tree``.  Usable as a context manager::

        with ServerThread(pool) as server:
            client = ServiceClient(*server.address)
    """

    def __init__(self, service: Union[SearchService, EnginePool, ServiceConfig],
                 host: str = "127.0.0.1", port: int = 0,
                 tree: Optional[XMLTree] = None) -> None:
        if isinstance(service, ServiceConfig):
            service = service.build(tree)
        elif isinstance(service, EnginePool):
            service = SearchService(service)
        self.service = service
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        """Start the loop thread; blocks until the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("the server thread is already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service-server")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("the server thread did not come up")
        if self._startup_error is not None:
            raise RuntimeError("server startup failed") from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = SearchServer(self.service, self.host, self.port)
        try:
            self.address = await server.start()
        except BaseException as error:  # noqa: BLE001 - surfaced in start()  # lint: allow(exception-discipline)
            self._startup_error = error
            self._loop = None  # the loop is about to close; stop() must
            self._stop = None  # not post to it
            self._ready.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()

    def stop(self) -> None:
        """Stop the server and join the thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # the loop already exited (e.g. startup failed)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc_value: Optional[BaseException],
                 traceback: Optional[TracebackType]) -> None:
        self.stop()
