"""Request coalescing: concurrent searches become ``search_many`` batches.

Concurrent callers frequently query overlapping keywords (hot queries, shared
vocabulary).  :meth:`SearchEngine.search_many` already amortizes stage 1 by
fetching the posting lists of a batch's keyword *union* once — the batcher is
the asyncio shim that turns independent in-flight requests into such batches:

* requests are bucketed by ``(algorithm, cid_mode)`` (the two knobs a batch
  must agree on),
* a bucket flushes when it reaches ``max_batch_size`` **or** when
  ``max_wait_seconds`` elapses since its first request — the classic
  size-or-deadline window, so a lone request pays at most the window in
  added latency and a burst pays (almost) none,
* each flush dispatches one :meth:`EnginePool.search_many` call to a single
  worker and fans the results back out to the per-request futures.

Failures propagate to every request of the batch; requests whose future was
already cancelled (deadline hit while queued) are skipped.

All batching counters — requests, batches, flush causes — plus the
queue-wait and batch-occupancy histograms live in a
:class:`~repro.obs.MetricsRegistry`; :meth:`RequestBatcher.stats` is derived
from it, so the ``stats`` wire op and a metrics scrape always agree.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from ..core.fragments import SearchResult
from ..core.query import QueryLike
from ..obs import DEFAULT_COUNT_BUCKETS, MetricsRegistry
from ..obs import names as metric_names
from .engine_pool import EnginePool
from .protocol import ERROR_INTERNAL, ServiceError

#: Default flush-on-size bound.
DEFAULT_MAX_BATCH_SIZE = 16

#: Default flush-on-deadline window (seconds).
DEFAULT_MAX_WAIT_SECONDS = 0.002

#: A bucket key: the knobs all requests of one batch must share.
BatchKey = Tuple[str, Optional[str]]

#: One queued request: (query, its future, its enqueue timestamp).
_Entry = Tuple[object, "asyncio.Future", float]


class _Bucket:
    """The open batch of one ``(algorithm, cid_mode)`` key."""

    __slots__ = ("entries", "timer")

    def __init__(self) -> None:
        self.entries: List[_Entry] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class RequestBatcher:
    """Coalesce concurrent search requests into engine-level batches.

    Must be used from a running asyncio event loop (the server's); the pool's
    worker threads never touch the batcher.
    """

    def __init__(self, pool: EnginePool,
                 max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
                 max_wait_seconds: float = DEFAULT_MAX_WAIT_SECONDS,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {max_wait_seconds}")
        self.pool = pool
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry())
        self._buckets: Dict[BatchKey, _Bucket] = {}
        # Strong references to in-flight flush tasks: the event loop only
        # keeps weak ones, and a collected task would drop its whole batch.
        self._tasks: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(self, query: QueryLike, algorithm: str = "validrtf",
                     cid_mode: Optional[str] = None) -> SearchResult:
        """Enqueue one query; resolves when its batch has been computed."""
        if self._closed:
            raise ServiceError(ERROR_INTERNAL, "the batcher is shut down")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key: BatchKey = (algorithm, cid_mode)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
        bucket.entries.append((query, future, time.monotonic()))
        self.metrics.counter(metric_names.BATCHER_REQUESTS).inc()
        if len(bucket.entries) >= self.max_batch_size:
            self.metrics.counter(metric_names.BATCHER_SIZE_FLUSHES).inc()
            self._flush(key)
        elif bucket.timer is None:
            bucket.timer = loop.call_later(self.max_wait_seconds,
                                           self._timer_flush, key)
        return await future

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #
    def _timer_flush(self, key: BatchKey) -> None:
        if key in self._buckets:
            self.metrics.counter(metric_names.BATCHER_TIMER_FLUSHES).inc()
            self._flush(key)

    def _flush(self, key: BatchKey) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        if bucket.entries:
            self.metrics.counter(metric_names.BATCHER_BATCHES).inc()
            self.metrics.histogram(
                metric_names.BATCHER_BATCH_SIZE,
                buckets=DEFAULT_COUNT_BUCKETS,
            ).observe(len(bucket.entries))
            flushed_at = time.monotonic()
            waits = self.metrics.histogram(
                metric_names.BATCHER_QUEUE_WAIT_SECONDS)
            for _, _, enqueued_at in bucket.entries:
                waits.observe(flushed_at - enqueued_at)
            task = asyncio.ensure_future(self._run_batch(key, bucket.entries))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, key: BatchKey, entries: List[_Entry]) -> None:
        algorithm, cid_mode = key
        queries = [query for query, _, _ in entries]
        try:
            results = await asyncio.wrap_future(
                self.pool.search_many(queries, algorithm, cid_mode))
        except Exception as error:  # noqa: BLE001 - fan the failure out  # lint: allow(exception-discipline)
            for _, future, _ in entries:
                if not future.done():
                    future.set_exception(_as_service_error(error))
            return
        for (_, future, _), result in zip(entries, results):
            if not future.done():
                future.set_result(result)

    def flush_all(self) -> None:
        """Flush every open bucket immediately (used on shutdown)."""
        for key in list(self._buckets):
            self._flush(key)

    def close(self) -> None:
        """Flush pending work and refuse new submissions."""
        self._closed = True
        self.flush_all()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Batching counters for the ``stats`` endpoint / load reports.

        Derived entirely from the metrics registry: ``largest_batch`` is the
        batch-size histogram's maximum; ``mean_queue_wait_ms`` the queue-wait
        histogram's mean.
        """
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        histograms = snapshot["histograms"]
        requests = counters.get(metric_names.BATCHER_REQUESTS, 0)
        batches = counters.get(metric_names.BATCHER_BATCHES, 0)
        sizes = histograms.get(metric_names.BATCHER_BATCH_SIZE)
        waits = histograms.get(metric_names.BATCHER_QUEUE_WAIT_SECONDS)
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_seconds": self.max_wait_seconds,
            "requests": requests,
            "batches": batches,
            "largest_batch": int(sizes["max"]) if sizes else 0,
            "size_flushes": counters.get(
                metric_names.BATCHER_SIZE_FLUSHES, 0),
            "timer_flushes": counters.get(
                metric_names.BATCHER_TIMER_FLUSHES, 0),
            "mean_batch_size": (requests / batches if batches else 0.0),
            "mean_queue_wait_ms": (
                round(waits["sum"] / waits["count"] * 1000.0, 4)
                if waits and waits["count"] else 0.0),
        }

    def __repr__(self) -> str:
        return (f"RequestBatcher(max_batch_size={self.max_batch_size}, "
                f"window={self.max_wait_seconds}s, open={len(self._buckets)})")


def _as_service_error(error: Exception) -> ServiceError:
    """Wrap a worker-side failure for the wire (idempotent)."""
    if isinstance(error, ServiceError):
        return error
    return ServiceError(ERROR_INTERNAL, f"{type(error).__name__}: {error}")
