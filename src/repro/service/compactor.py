"""Background compaction policy for live segmented corpora.

The serving stack accumulates delta segments as mutations land; left
alone, reads pay an ever-growing location-resolution and merge cost.  A
:class:`BackgroundCompactor` watches the mutable store and folds segments
into the base generation once a **segment-count trigger** is crossed,
then invalidates the pool's worker engines so later requests see the
compacted state.  Compaction failures back off exponentially (a failing
disk must not turn the compactor into a hot loop); every run, failure and
folded segment is counted through :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..obs import MetricsRegistry
from ..obs import names as metric_names
from ..storage import SegmentedStore
from .engine_pool import EnginePool

__all__ = ["BackgroundCompactor"]


class BackgroundCompactor:
    """A daemon thread compacting the store when segments pile up.

    Parameters
    ----------
    store, pool:
        The mutable segmented store and the pool whose engines must be
        invalidated after each fold.
    max_segments:
        Compact once ``store.segment_count() >= max_segments``.
    interval_seconds:
        Poll period between trigger checks.
    failure_backoff_seconds / max_backoff_seconds:
        After a failed compaction the next check waits the backoff, which
        doubles per consecutive failure up to the cap and resets on
        success.
    """

    def __init__(self, store: SegmentedStore, pool: EnginePool,
                 max_segments: int, interval_seconds: float = 0.5,
                 failure_backoff_seconds: float = 2.0,
                 max_backoff_seconds: float = 60.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_segments < 1:
            raise ValueError(
                f"max_segments must be positive, got {max_segments}")
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}")
        self.store = store
        self.pool = pool
        self.max_segments = max_segments
        self.interval_seconds = interval_seconds
        self.failure_backoff_seconds = failure_backoff_seconds
        self.max_backoff_seconds = max_backoff_seconds
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._failures = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "BackgroundCompactor":
        if self._thread is None:
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="repro-compactor")
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            self._thread = None

    # ------------------------------------------------------------------ #
    # The policy loop
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        wait = self.interval_seconds
        while not self._stop.wait(wait):
            wait = self._tick()

    def _tick(self) -> float:
        """One trigger check; returns the next wait in seconds."""
        try:
            if self.store.segment_count() >= self.max_segments:
                outcome = self.store.compact()
                self.pool.invalidate_engines()
                self.metrics.counter(metric_names.COMPACTOR_RUNS).inc()
                self.metrics.counter(
                    metric_names.COMPACTOR_SEGMENTS_FOLDED).inc(
                        int(outcome["segments"]))
            with self._lock:
                self._failures = 0
            return self.interval_seconds
        except Exception:  # lint: allow(exception-discipline)
            # A failing disk must not spin the policy loop; count the
            # failure and back off (the journal keeps the half-compacted
            # store recoverable, so retrying later is always safe).
            self.metrics.counter(metric_names.COMPACTOR_FAILURES).inc()
            with self._lock:
                self._failures += 1
                failures = self._failures
            return min(self.max_backoff_seconds,
                       self.failure_backoff_seconds * (2 ** (failures - 1)))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        snapshot = self.metrics.snapshot()
        with self._lock:
            failures = self._failures
        return {
            "max_segments": self.max_segments,
            "interval_seconds": self.interval_seconds,
            "consecutive_failures": failures,
            "runs": snapshot["counters"].get(
                metric_names.COMPACTOR_RUNS, 0),
            "failures": snapshot["counters"].get(
                metric_names.COMPACTOR_FAILURES, 0),
            "segments_folded": snapshot["counters"].get(
                metric_names.COMPACTOR_SEGMENTS_FOLDED, 0),
        }
