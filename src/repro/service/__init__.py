"""Concurrent query-serving layer over the search engine.

This package turns the single-caller library into a small serving system —
the ROADMAP's "heavy traffic" direction — without adding any dependency
beyond the standard library:

* :mod:`~repro.service.engine_pool` — a pool of per-worker
  :class:`~repro.core.engine.SearchEngine` instances sharing one immutable
  posting-source snapshot, so queries run in parallel threads while
  per-document work (index build, shredding) is paid once.
* :mod:`~repro.service.batcher` — a request coalescer that collects
  in-flight queries into ``search_many`` batches, amortizing the shared
  posting-fetch fast path across concurrent callers.
* :mod:`~repro.service.admission` — bounded in-flight depth, per-request
  timeouts and load shedding with typed error responses.
* :mod:`~repro.service.server` — an asyncio newline-delimited-JSON TCP
  front end exposing search / compare / rank with per-request algorithm and
  ``cid_mode``.
* :mod:`~repro.service.client` — a blocking client for the same protocol.
* :mod:`~repro.service.loadgen` — open/closed-loop load generation with
  throughput and p50/p95/p99 latency reporting (the ``BENCH_service.json``
  artefact).

Quickstart (in-process)::

    from repro.datasets import publications_tree
    from repro.service import EnginePool, ServerThread, ServiceClient

    pool = EnginePool.for_backend("memory", tree=publications_tree(),
                                  workers=4)
    with ServerThread(pool) as server:
        with ServiceClient(*server.address) as client:
            print(client.search("xml keyword search")["count"])

Or from the command line: ``python -m repro.cli serve`` /
``python -m repro.cli loadtest``.
"""

from .admission import AdmissionController
from .batcher import RequestBatcher
from .client import RetryPolicy, ServiceClient
from .compactor import BackgroundCompactor
from .engine_pool import EnginePool
from .loadgen import (
    LoadReport,
    ServiceBenchIntegrityError,
    loadtest,
    percentile,
    run_closed_loop,
    run_open_loop,
    verify_service_reports,
    write_service_bench,
)
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEGRADED,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    ERROR_UNKNOWN_ALGORITHM,
    ERROR_UNSUPPORTED,
    ServiceError,
    comparison_payload,
    corpus_result_payload,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    rank_stats_payload,
    ranking_payload,
    result_payload,
    score_explanation_payload,
)
from .server import SearchServer, SearchService, ServerThread, ServiceConfig

__all__ = [
    "AdmissionController",
    "BackgroundCompactor",
    "EnginePool",
    "LoadReport",
    "RequestBatcher",
    "RetryPolicy",
    "SearchServer",
    "SearchService",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ERROR_BAD_REQUEST",
    "ERROR_DEGRADED",
    "ERROR_INTERNAL",
    "ERROR_OVERLOADED",
    "ERROR_TIMEOUT",
    "ERROR_UNKNOWN_ALGORITHM",
    "ERROR_UNSUPPORTED",
    "comparison_payload",
    "corpus_result_payload",
    "decode_message",
    "encode_message",
    "error_response",
    "ok_response",
    "loadtest",
    "percentile",
    "rank_stats_payload",
    "ranking_payload",
    "result_payload",
    "score_explanation_payload",
    "run_closed_loop",
    "run_open_loop",
    "ServiceBenchIntegrityError",
    "verify_service_reports",
    "write_service_bench",
]
