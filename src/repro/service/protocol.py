"""Wire protocol of the serving layer.

One JSON object per line in both directions (newline-delimited JSON over a
plain TCP stream).  Requests carry an ``op`` plus op-specific fields::

    {"op": "search", "query": "xml keyword search",
     "algorithm": "validrtf", "cid_mode": "minmax"}

Responses are ``{"ok": true, ...payload...}`` or
``{"ok": false, "error": {"code": ..., "message": ...}}``.

Two properties matter here:

* **Determinism** — :func:`result_payload` is the *canonical* serialization
  of a :class:`~repro.core.fragments.SearchResult`.  It deliberately excludes
  timings, and :func:`encode_message` fixes key order and separators, so a
  result served through the TCP front end is byte-identical to the same
  result serialized directly — which is exactly what the service-parity
  suite (``tests/test_service_parity.py``) asserts.
* **Typed errors** — every failure mode the admission controller or the
  dispatch layer can produce has a stable error code, so load generators and
  clients can distinguish shed load (``overloaded``) from timeouts from
  caller mistakes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from ..core.engine import ComparisonOutcome
from ..core.explain import ScoreExplanation, explain_score
from ..core.fragments import SearchResult
from ..core.metrics import EffectivenessReport
from ..core.ranking import DocumentRankedFragment, RankedFragment
from ..corpus.engine import CorpusComparisonOutcome, RankedCorpusSearch
from ..corpus.result import CorpusSearchResult

#: Malformed JSON, missing fields, unparseable queries.
ERROR_BAD_REQUEST = "bad_request"
#: Algorithm name not registered with the engine.
ERROR_UNKNOWN_ALGORITHM = "unknown_algorithm"
#: Load shed: the admission controller's in-flight bound was hit.
ERROR_OVERLOADED = "overloaded"
#: The per-request deadline elapsed before a result was ready.
ERROR_TIMEOUT = "timeout"
#: The operation is valid but not available on this engine configuration
#: (e.g. ``rank`` on a tree-free disk backend).
ERROR_UNSUPPORTED = "unsupported"
#: Anything unexpected; the message carries the exception text.
ERROR_INTERNAL = "internal"
#: Transient loss of capacity: a quarantined worker or a storage fault.
#: Safe (and worthwhile) to retry with backoff — mutations are journaled
#: and idempotency-keyed, so a replay can never double-apply.
ERROR_DEGRADED = "degraded"

ERROR_CODES = (ERROR_BAD_REQUEST, ERROR_UNKNOWN_ALGORITHM, ERROR_OVERLOADED,
               ERROR_TIMEOUT, ERROR_UNSUPPORTED, ERROR_INTERNAL,
               ERROR_DEGRADED)


class ServiceError(Exception):
    """A failure with a stable wire-level error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    def response(self) -> Dict[str, object]:
        """The error as a wire response."""
        return error_response(self.code, self.message)


# ---------------------------------------------------------------------- #
# Canonical payloads
# ---------------------------------------------------------------------- #
def result_payload(result: Union[SearchResult, CorpusSearchResult]
                   ) -> Dict[str, object]:
    """The canonical JSON payload of one search result.

    Everything the parity contract covers — roots, kept node sets, raw node
    sets, keyword nodes, SLCA flags, LCA list — and nothing
    non-deterministic (no timings).  Corpus results serialize to the
    doc-id-tagged form of :func:`corpus_result_payload`.
    """
    if isinstance(result, CorpusSearchResult):
        return corpus_result_payload(result)
    return _single_result_payload(result)


def corpus_result_payload(result: CorpusSearchResult) -> Dict[str, object]:
    """The canonical payload of a corpus search: per-document results.

    Documents appear in corpus (sorted doc-id) order and each carries the
    canonical single-document payload, so a served corpus answer is
    byte-identical to serializing the direct engine call — the same parity
    contract every other payload honours.
    """
    return {
        "query": list(result.query.keywords),
        "algorithm": result.algorithm,
        "count": result.count,
        "documents": [
            {"doc": entry.doc_id,
             "result": _single_result_payload(entry.result)}
            for entry in result.documents
        ],
    }


def _single_result_payload(result: SearchResult) -> Dict[str, object]:
    return {
        "query": list(result.query.keywords),
        "algorithm": result.algorithm,
        "count": result.count,
        "lca_nodes": [str(code) for code in result.lca_nodes],
        "fragments": [
            {
                "root": str(fragment.root),
                "is_slca": fragment.is_slca,
                "kept_nodes": [str(code) for code in fragment.kept_nodes],
                "nodes": [str(code) for code in fragment.fragment.nodes],
                "keyword_nodes": [str(code)
                                  for code in fragment.fragment.keyword_nodes],
            }
            for fragment in result.fragments
        ],
    }


def comparison_payload(
        outcome: Union[ComparisonOutcome, CorpusComparisonOutcome]
) -> Dict[str, object]:
    """The canonical payload of a ValidRTF-vs-MaxMatch comparison.

    Corpus outcomes carry one report per contributing document plus the
    corpus-level summary instead of the single-document report.
    """
    if isinstance(outcome, CorpusComparisonOutcome):
        return {
            "validrtf": corpus_result_payload(outcome.validrtf),
            "maxmatch": corpus_result_payload(outcome.maxmatch),
            "documents": [
                {"doc": doc_id, "report": _report_payload(entry.report)}
                for doc_id, entry in outcome.documents
            ],
            "summary": dict(outcome.summary),
        }
    return {
        "validrtf": result_payload(outcome.validrtf),
        "maxmatch": result_payload(outcome.maxmatch),
        "report": _report_payload(outcome.report),
    }


def _report_payload(report: EffectivenessReport) -> Dict[str, object]:
    return {
        "lca_count": report.lca_count,
        "cfr": report.cfr,
        "apr_prime": report.apr_prime,
        "max_apr": report.max_apr,
        "comparisons": [
            {
                "root": str(comparison.root),
                "identical": comparison.identical,
                "maxmatch_size": comparison.maxmatch_size,
                "validrtf_size": comparison.validrtf_size,
                "extra_pruned": comparison.extra_pruned,
            }
            for comparison in report.comparisons
        ],
    }


def ranking_payload(ranked: Sequence,
                    explain: bool = False) -> List[Dict[str, object]]:
    """The canonical payload of a ranked fragment list.

    Corpus rankings (:class:`DocumentRankedFragment` entries) additionally
    carry the owning doc id.  With ``explain=True`` each row also carries a
    per-component score breakdown (:func:`~repro.core.explain.explain_score`)
    whose contributions sum to the served score bit for bit.
    """
    payload: List[Dict[str, object]] = []
    for entry in ranked:
        if isinstance(entry, DocumentRankedFragment):
            doc_id: Optional[str] = entry.doc_id
            fragment: RankedFragment = entry.ranked
        else:
            doc_id = None
            fragment = entry
        row: Dict[str, object] = {
            "root": str(fragment.fragment.root),
            "score": fragment.score,
            "specificity": fragment.specificity,
            "compactness": fragment.compactness,
            "coverage": fragment.coverage,
        }
        if doc_id is not None:
            row["doc"] = doc_id
        if explain:
            row["explanation"] = score_explanation_payload(
                explain_score(fragment))
        payload.append(row)
    return payload


def score_explanation_payload(explanation: "ScoreExplanation"
                              ) -> Dict[str, object]:
    """One score breakdown as a wire object (components in scoring order)."""
    return {
        "score": explanation.score,
        "components": [
            {
                "name": component.name,
                "value": component.value,
                "weight": component.weight,
                "contribution": component.contribution,
            }
            for component in explanation.components
        ],
    }


def rank_stats_payload(outcome: "RankedCorpusSearch") -> Dict[str, object]:
    """The visit accounting of one ranked corpus retrieval.

    ``docs_visited < docs_selected`` is the observable proof that the
    threshold driver skipped work; the parity contract guarantees the
    ranking itself is identical either way.
    """
    return {
        "docs_selected": outcome.docs_selected,
        "docs_visited": outcome.docs_visited,
        "docs_skipped": outcome.docs_skipped,
        "early_terminated": outcome.early_terminated,
        "top_k": outcome.top_k,
    }


# ---------------------------------------------------------------------- #
# Framing
# ---------------------------------------------------------------------- #
def encode_message(message: Dict[str, object]) -> bytes:
    """One message as a canonical newline-terminated JSON line."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, object]:
    """Parse one received line; raises :class:`ServiceError` on bad input."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(ERROR_BAD_REQUEST,
                           f"undecodable request line: {error}") from None
    if not isinstance(message, dict):
        raise ServiceError(ERROR_BAD_REQUEST,
                           f"expected a JSON object, got {type(message).__name__}")
    return message


def ok_response(**payload: object) -> Dict[str, object]:
    """A success response envelope."""
    return {"ok": True, **payload}


def error_response(code: str, message: str,
                   request_id: Optional[object] = None) -> Dict[str, object]:
    """A typed error response envelope."""
    response: Dict[str, object] = {
        "ok": False, "error": {"code": code, "message": message}}
    if request_id is not None:
        response["id"] = request_id
    return response
