"""BENCH_core.json — the core-engine perf trajectory artefact.

The Figure 5/6 drivers measure MaxMatch-vs-ValidRTF per query; this module
records the *systems* axes on top of the paper's: per-algorithm, per-backend
and per-**representation** (packed flat columns vs. boxed ``DeweyCode``
lists) timings over the same workloads, so every PR that touches a hot path
leaves a comparable number behind.

The run doubles as a correctness guard: before anything is timed, the packed
and object engines answer every (query, algorithm) pair and the results must
be identical — roots, kept node sets, SLCA flags.  A representation that
drifts from parity fails the bench instead of producing fast-but-wrong
numbers (this is what the CI perf-smoke step runs, scaled down).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import SearchEngine
from ..corpus import CorpusSearchEngine
from ..datasets import DBLPConfig, dblp_workload, generate_dblp
from ..obs import MetricsRegistry
from ..obs import names as metric_names
from ..xmltree import TreeBuilder, XMLTree
from .harness import (
    DatasetSpec,
    _average_timed_passes,
    default_datasets,
    engine_for_backend,
    time_algorithm,
)

#: Axes measured by default.
DEFAULT_BACKENDS = ("memory",)
DEFAULT_REPRESENTATIONS = ("packed", "object")
DEFAULT_ALGORITHMS = ("validrtf", "maxmatch")


class RepresentationParityError(AssertionError):
    """Packed and object engines disagreed on a query (never acceptable)."""


class RankingEquivalenceError(AssertionError):
    """Early-terminated top-k disagreed with the exhaustive ranking.

    The threshold driver's entire claim is "same answer, fewer documents";
    a bench that timed a divergent run would be quoting the speed of a
    wrong result."""


def _result_fingerprint(result) -> Tuple:
    """Everything that must match across representations (not the timing)."""
    return (
        tuple(str(code) for code in result.lca_nodes),
        tuple((str(fragment.root), fragment.is_slca,
               tuple(str(code) for code in fragment.kept_nodes),
               tuple(str(code) for code in fragment.fragment.nodes),
               tuple(str(code) for code in fragment.fragment.keyword_nodes))
              for fragment in result.fragments),
    )


def run_core_bench(datasets: Sequence[str] = ("dblp",),
                   backends: Sequence[str] = DEFAULT_BACKENDS,
                   representations: Sequence[str] = DEFAULT_REPRESENTATIONS,
                   algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                   repetitions: int = 2,
                   limit: Optional[int] = None,
                   shards: int = 2,
                   verify: bool = True,
                   specs: Optional[Dict[str, DatasetSpec]] = None,
                   corpus_docs: int = 3
                   ) -> Dict[str, object]:
    """Measure the workload over every (dataset, backend, representation).

    Returns the ``BENCH_core.json`` payload: one entry per (dataset, backend,
    representation, algorithm, query) with the Figure-5 protocol average
    (``repetitions`` timed passes after a discarded warm-up), plus per-
    (dataset, backend, algorithm) summaries with the packed/object total-time
    ratio when both representations were measured.

    ``limit`` trims each dataset's workload to its first N queries (the CI
    perf-smoke uses 1); ``verify=True`` cross-checks result parity between
    every representation pair before timing and raises
    :class:`RepresentationParityError` on any mismatch.
    """
    specs = specs if specs is not None else default_datasets()
    entries: List[Dict[str, object]] = []
    for dataset in datasets:
        spec = specs[dataset]
        queries = list(spec.workload)
        if limit is not None:
            queries = queries[:limit]
        tree = spec.tree_factory()
        engines = {
            (backend, representation): engine_for_backend(
                tree, backend, shards=shards,
                document=f"{dataset}-{representation}",
                representation=representation)
            for backend in backends
            for representation in representations
        }
        if verify:
            _verify_parity(dataset, queries, algorithms, backends,
                           representations, engines)
        for (backend, representation), engine in engines.items():
            for query in queries:
                for algorithm in algorithms:
                    seconds = time_algorithm(engine, query.text, algorithm,
                                             repetitions)
                    entries.append({
                        "dataset": dataset,
                        "backend": backend,
                        "representation": representation,
                        "algorithm": algorithm,
                        "query": query.label,
                        "keywords": query.text,
                        "ms": round(seconds * 1000.0, 4),
                    })
    return {
        "benchmark": "core",
        "protocol": {
            "repetitions": repetitions,
            "warmup_discarded": True,
            "verified_parity": bool(verify),
        },
        "entries": entries,
        "summary": _summaries(entries),
        "corpus": run_corpus_bench(doc_count=corpus_docs,
                                   repetitions=repetitions, limit=limit,
                                   verify=verify) if corpus_docs else None,
        "ranking": run_ranking_bench(repetitions=repetitions, limit=limit,
                                     verify=verify) if corpus_docs else None,
        "observability": run_obs_overhead_bench(
            repetitions=repetitions, limit=limit, specs=specs),
    }


def run_obs_overhead_bench(dataset: str = "dblp",
                           algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                           repetitions: int = 2,
                           limit: Optional[int] = None,
                           specs: Optional[Dict[str, DatasetSpec]] = None
                           ) -> Dict[str, object]:
    """Instrumentation overhead on the Figure-5 workload.

    Two engines over the same tree: one plain, one with a
    :class:`~repro.obs.MetricsRegistry` attached (the configuration every
    pooled server engine runs in).  Sub-millisecond queries make sequential
    A-then-B timing systematically unfair (whatever drift hits the second
    side is charged to instrumentation), so each repetition times the two
    engines back-to-back with the order *alternating* per pass, and each
    side keeps its best (minimum) pass — scheduler noise only ever adds
    time, so the minimum is the faithful per-query cost on both sides.
    ``instrumented_over_plain`` is the total-time ratio — the observability
    acceptance bar keeps it within a few percent of 1.0.  The registry's
    own ``query.count`` is returned too, proving the instrumented side
    actually recorded what it ran.
    """
    specs = specs if specs is not None else default_datasets()
    spec = specs[dataset]
    queries = list(spec.workload)
    if limit is not None:
        queries = queries[:limit]
    tree = spec.tree_factory()
    plain = SearchEngine(tree)
    instrumented = SearchEngine(tree)
    registry = MetricsRegistry()
    instrumented.set_metrics(registry)
    entries: List[Dict[str, object]] = []
    plain_total = 0.0
    instrumented_total = 0.0
    for query in queries:
        for algorithm in algorithms:
            plain.search(query.text, algorithm)         # warm-up, discarded
            instrumented.search(query.text, algorithm)
            plain_passes: List[float] = []
            instrumented_passes: List[float] = []
            for repetition in range(repetitions):
                ordered = (plain, instrumented) if repetition % 2 == 0 \
                    else (instrumented, plain)
                timed = {}
                for engine in ordered:
                    started = time.perf_counter()
                    engine.search(query.text, algorithm)
                    timed[id(engine)] = time.perf_counter() - started
                plain_passes.append(timed[id(plain)])
                instrumented_passes.append(timed[id(instrumented)])
            plain_seconds = min(plain_passes)
            instrumented_seconds = min(instrumented_passes)
            plain_total += plain_seconds
            instrumented_total += instrumented_seconds
            entries.append({
                "query": query.label,
                "keywords": query.text,
                "algorithm": algorithm,
                "plain_ms": round(plain_seconds * 1000.0, 4),
                "instrumented_ms": round(instrumented_seconds * 1000.0, 4),
            })
    counters = registry.snapshot()["counters"]
    recorded = sum(value for key, value in counters.items()
                   if key.startswith(metric_names.QUERY_COUNT))
    return {
        "dataset": dataset,
        "entries": entries,
        "plain_total_ms": round(plain_total * 1000.0, 4),
        "instrumented_total_ms": round(instrumented_total * 1000.0, 4),
        "instrumented_over_plain": (
            round(instrumented_total / plain_total, 4)
            if plain_total else None),
        "queries_recorded": recorded,
    }


def run_corpus_bench(doc_count: int = 3, publications_per_doc: int = 200,
                     algorithms: Sequence[str] = ("validrtf", "maxmatch"),
                     repetitions: int = 2, limit: Optional[int] = None,
                     verify: bool = True) -> Dict[str, object]:
    """The corpus workload row of ``BENCH_core.json``.

    Builds a ``doc_count``-document DBLP-like corpus (distinct seeds per
    document) and times the dblp workload through the corpus engine against
    the *sequential-per-document* baseline — looping the same query over one
    plain :class:`SearchEngine` per document, the retrieval a client without
    the corpus layer would have to do.  ``corpus_over_sequential`` < 1 means
    the corpus engine's shared dispatch beats the loop; ~1 means the layer is
    overhead-free.  ``verify=True`` additionally asserts the corpus answer
    equals the union of the per-document answers before timing (the
    differential fuzz contract, enforced here on the measured workload too).
    """
    trees = {f"dblp-{seed:02d}": generate_dblp(
                 DBLPConfig(publications=publications_per_doc, seed=seed))
             for seed in range(doc_count)}
    corpus_engine = CorpusSearchEngine.from_trees(trees, backend="memory")
    per_doc_engines = {doc_id: SearchEngine(tree)
                       for doc_id, tree in sorted(trees.items())}
    queries = list(dblp_workload())
    if limit is not None:
        queries = queries[:limit]
    entries: List[Dict[str, object]] = []
    corpus_total = 0.0
    sequential_total = 0.0
    for query in queries:
        for algorithm in algorithms:
            if verify:
                _verify_corpus_union(corpus_engine, per_doc_engines,
                                     query, algorithm)
            corpus_seconds = time_algorithm(corpus_engine, query.text,
                                            algorithm, repetitions)
            sequential_seconds = _average_timed_passes(
                lambda q=query.text, a=algorithm: [
                    engine.search(q, a)
                    for engine in per_doc_engines.values()],
                repetitions)
            corpus_total += corpus_seconds
            sequential_total += sequential_seconds
            entries.append({
                "query": query.label,
                "keywords": query.text,
                "algorithm": algorithm,
                "corpus_ms": round(corpus_seconds * 1000.0, 4),
                "sequential_ms": round(sequential_seconds * 1000.0, 4),
            })
    return {
        "documents": doc_count,
        "publications_per_document": publications_per_doc,
        "verified_union": bool(verify),
        "entries": entries,
        "corpus_total_ms": round(corpus_total * 1000.0, 4),
        "sequential_total_ms": round(sequential_total * 1000.0, 4),
        "corpus_over_sequential": (
            round(corpus_total / sequential_total, 4)
            if sequential_total else None),
    }


def run_ranking_bench(doc_count: int = 6, publications_per_doc: int = 120,
                      top_k: int = 5, algorithm: str = "validrtf",
                      repetitions: int = 2, limit: Optional[int] = None,
                      verify: bool = True) -> Dict[str, object]:
    """The ranked-retrieval row of ``BENCH_core.json``.

    Partitions one ``doc_count * publications_per_doc``-record DBLP
    bibliography into ``doc_count`` per-document shards (the realistic
    corpus shape: rare workload terms — plant counts of a handful across
    the whole bibliography — genuinely live in only a few shards, the
    regime where keyword-impact upper bounds have teeth) and, per workload
    query, times top-k retrieval exhaustively versus with the
    threshold-algorithm driver.

    ``verify=True`` (the bench-honesty contract) first asserts the two
    paths return the *identical* ranking — same documents, roots and
    bit-identical scores — and raises :class:`RankingEquivalenceError`
    otherwise; only then is anything timed.  ``docs_visited_over_selected``
    < 1 is the observable win: the driver answered the same top-k while
    provably skipping the remaining documents.
    """
    trees = _partitioned_dblp_corpus(doc_count, publications_per_doc)
    engine = CorpusSearchEngine.from_trees(trees, backend="memory")
    queries = list(dblp_workload())
    if limit is not None:
        queries = queries[:limit]
    entries: List[Dict[str, object]] = []
    exhaustive_total = 0.0
    early_total = 0.0
    visited_total = 0
    selected_total = 0
    for query in queries:
        if verify:
            _verify_ranking_equivalence(engine, query, algorithm, top_k)
        outcome = engine.rank_search(query.text, algorithm, top_k=top_k,
                                     early_terminate=True)
        exhaustive_seconds = _average_timed_passes(
            lambda q=query.text: engine.rank_search(q, algorithm,
                                                    top_k=top_k),
            repetitions)
        early_seconds = _average_timed_passes(
            lambda q=query.text: engine.rank_search(q, algorithm,
                                                    top_k=top_k,
                                                    early_terminate=True),
            repetitions)
        exhaustive_total += exhaustive_seconds
        early_total += early_seconds
        visited_total += outcome.docs_visited
        selected_total += outcome.docs_selected
        entries.append({
            "query": query.label,
            "keywords": query.text,
            "algorithm": algorithm,
            "exhaustive_ms": round(exhaustive_seconds * 1000.0, 4),
            "early_ms": round(early_seconds * 1000.0, 4),
            "docs_visited": outcome.docs_visited,
            "docs_selected": outcome.docs_selected,
        })
    return {
        "documents": doc_count,
        "publications_per_document": publications_per_doc,
        "top_k": top_k,
        "verified_equivalence": bool(verify),
        "entries": entries,
        "exhaustive_total_ms": round(exhaustive_total * 1000.0, 4),
        "early_total_ms": round(early_total * 1000.0, 4),
        "early_over_exhaustive": (
            round(early_total / exhaustive_total, 4)
            if exhaustive_total else None),
        "docs_visited": visited_total,
        "docs_selected": selected_total,
        "docs_visited_over_selected": (
            round(visited_total / selected_total, 4)
            if selected_total else None),
    }


def _partitioned_dblp_corpus(doc_count: int, publications_per_doc: int,
                             seed: int = 2009) -> Dict[str, "XMLTree"]:
    """One DBLP bibliography split into ``doc_count`` per-shard documents.

    Unlike generating each document independently (which plants every
    vocabulary term at least once per document), partitioning preserves the
    bibliography's global term frequencies — a term planted 3 times lands
    in at most 3 shards, so per-document keyword impacts actually differ.
    """
    whole = generate_dblp(DBLPConfig(
        publications=doc_count * publications_per_doc, seed=seed))
    records = whole.root.children
    shards: Dict[str, XMLTree] = {}
    for index in range(doc_count):
        builder = TreeBuilder("dblp", name=f"dblp-part-{index:02d}")
        start = index * publications_per_doc
        for record in records[start:start + publications_per_doc]:
            _copy_subtree(builder, record)
        shards[f"dblp-{index:02d}"] = builder.build()
    return shards


def _copy_subtree(builder: "TreeBuilder", node) -> None:
    """Re-emit one subtree under the builder's current element."""
    builder.element(node.label, text=node.text,
                    attributes=dict(node.attributes or {}))
    for child in node.children:
        _copy_subtree(builder, child)
    builder.up()


def _ranking_fingerprint(ranked) -> Tuple:
    """Everything the equivalence guard compares (order, docs, raw scores)."""
    return tuple((entry.doc_id, str(entry.fragment.root), entry.score)
                 for entry in ranked)


def _verify_ranking_equivalence(engine, query, algorithm, top_k) -> None:
    """Early-terminated and exhaustive top-k must be byte-identical."""
    exhaustive = engine.rank_search(query.text, algorithm, top_k=top_k)
    early = engine.rank_search(query.text, algorithm, top_k=top_k,
                               early_terminate=True)
    if _ranking_fingerprint(exhaustive.ranked) != \
            _ranking_fingerprint(early.ranked):
        raise RankingEquivalenceError(
            f"ranking/{algorithm}/{query.label}: early-terminated top-"
            f"{top_k} diverged from the exhaustive ranking "
            f"(visited {early.docs_visited}/{early.docs_selected} documents)")


def _verify_corpus_union(corpus_engine, per_doc_engines, query,
                         algorithm) -> None:
    """Corpus answer must equal the union of the per-document answers."""
    corpus_result = corpus_engine.search(query.text, algorithm)
    by_doc = corpus_result.by_doc()
    expected = {doc_id: result
                for doc_id, result in
                ((doc_id, engine.search(query.text, algorithm))
                 for doc_id, engine in per_doc_engines.items())
                if result.count or result.lca_nodes}
    if set(by_doc) != set(expected):
        raise RepresentationParityError(
            f"corpus/{algorithm}/{query.label}: corpus answered documents "
            f"{sorted(by_doc)} but the per-document union holds "
            f"{sorted(expected)}")
    for doc_id, reference in expected.items():
        if _result_fingerprint(by_doc[doc_id]) != _result_fingerprint(reference):
            raise RepresentationParityError(
                f"corpus/{algorithm}/{query.label}: document {doc_id!r} "
                f"disagrees with its single-document engine")


def _verify_parity(dataset, queries, algorithms, backends, representations,
                   engines) -> None:
    """All representations of one backend must answer identically."""
    for backend in backends:
        reference_repr = representations[0]
        reference_engine = engines[(backend, reference_repr)]
        for representation in representations[1:]:
            candidate_engine = engines[(backend, representation)]
            for query in queries:
                for algorithm in algorithms:
                    reference = _result_fingerprint(
                        reference_engine.search(query.text, algorithm))
                    candidate = _result_fingerprint(
                        candidate_engine.search(query.text, algorithm))
                    if reference != candidate:
                        raise RepresentationParityError(
                            f"{dataset}/{backend}/{algorithm}/{query.label}: "
                            f"{representation!r} postings disagree with "
                            f"{reference_repr!r}")


def _summaries(entries: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per (dataset, backend, algorithm) totals + packed/object ratio."""
    totals: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for entry in entries:
        key = (entry["dataset"], entry["backend"], entry["algorithm"])
        totals.setdefault(key, {})
        representation = entry["representation"]
        totals[key][representation] = (
            totals[key].get(representation, 0.0) + entry["ms"])
    summaries = []
    for (dataset, backend, algorithm), per_repr in sorted(totals.items()):
        summary: Dict[str, object] = {
            "dataset": dataset,
            "backend": backend,
            "algorithm": algorithm,
        }
        for representation, total in sorted(per_repr.items()):
            summary[f"{representation}_total_ms"] = round(total, 4)
        if "packed" in per_repr and "object" in per_repr and per_repr["object"]:
            summary["packed_over_object"] = round(
                per_repr["packed"] / per_repr["object"], 4)
        summaries.append(summary)
    return summaries
