"""Plain-text table and series rendering for the benchmark drivers."""

from __future__ import annotations

from typing import List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] = (), title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    headers = list(columns) if columns else list(rows[0].keys())
    table: List[List[str]] = [[str(header) for header in headers]]
    for row in rows:
        table.append([_cell(row.get(header, "")) for header in headers])
    widths = [max(len(line[index]) for line in table) for index in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(table[0], widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row_cells in table[1:]:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row_cells, widths)))
    return "\n".join(lines)


def format_series(name: str, labels: Sequence[str],
                  values: Sequence[float], precision: int = 3) -> str:
    """Render one figure series as ``name: label=value`` pairs."""
    pairs = ", ".join(f"{label}={value:.{precision}f}"
                      for label, value in zip(labels, values))
    return f"{name}: {pairs}"


def format_summary(summary: Mapping[str, object], title: str = "") -> str:
    """Render a key/value summary block."""
    lines = [title] if title else []
    for key, value in summary.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {value:.4f}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
