"""Exporting benchmark results: CSV / JSON files and ASCII charts.

The paper presents its evaluation as figures; this module turns the harness
measurements into artefacts a downstream user can archive or plot:

* :func:`write_csv` / :func:`write_json` — persist the per-query rows of a
  :class:`~repro.bench.harness.WorkloadRun`;
* :func:`ascii_bar_chart` — a dependency-free rendering of one series
  (e.g. per-query elapsed time, log-scaled like the paper's Figure 5 axes);
* :func:`export_run` — one call producing every artefact for one dataset.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from .figure5 import figure5_rows, figure5_summary
from .figure6 import figure6_rows, figure6_summary
from .harness import WorkloadRun

PathLike = Union[str, Path]


def write_csv(rows: Sequence[Mapping[str, object]], path: PathLike,
              columns: Sequence[str] = ()) -> Path:
    """Write table rows to a CSV file and return its path."""
    target = Path(path)
    if not rows:
        target.write_text("", encoding="utf-8")
        return target
    headers = list(columns) if columns else list(rows[0].keys())
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=headers, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({header: row.get(header, "") for header in headers})
    return target


def write_json(payload: object, path: PathLike) -> Path:
    """Write a JSON-serializable payload (rows, summaries) to a file."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True),
                      encoding="utf-8")
    return target


def ascii_bar_chart(labels: Sequence[str], values: Sequence[float],
                    title: str = "", width: int = 40,
                    log_scale: bool = False, unit: str = "") -> str:
    """Render one series as a horizontal ASCII bar chart.

    ``log_scale=True`` mimics the paper's logarithmic time axes so queries
    spanning several orders of magnitude stay readable.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    lines: List[str] = [title] if title else []
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)

    def transform(value: float) -> float:
        if not log_scale:
            return max(0.0, value)
        return math.log10(value) if value > 0 else 0.0

    transformed = [transform(value) for value in values]
    top = max(transformed) or 1.0
    label_width = max(len(label) for label in labels)
    for label, value, scaled in zip(labels, values, transformed):
        bar = "#" * max(1, round(width * scaled / top)) if value > 0 else ""
        suffix = f" {value:.3f}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def run_payload(run: WorkloadRun) -> Dict[str, object]:
    """The complete JSON payload of one dataset's run (rows + summaries)."""
    return {
        "dataset": run.dataset,
        "figure5": {"rows": figure5_rows(run), "summary": figure5_summary(run)},
        "figure6": {"rows": figure6_rows(run), "summary": figure6_summary(run)},
    }


def export_run(run: WorkloadRun, directory: PathLike,
               prefix: Optional[str] = None) -> Dict[str, Path]:
    """Write every artefact of one run into ``directory``.

    Produces ``<prefix>_figure5.csv``, ``<prefix>_figure6.csv`` and
    ``<prefix>_results.json``; returns the mapping of artefact name to path.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    stem = prefix or run.dataset
    artefacts = {
        "figure5_csv": write_csv(figure5_rows(run), base / f"{stem}_figure5.csv"),
        "figure6_csv": write_csv(figure6_rows(run), base / f"{stem}_figure6.csv"),
        "json": write_json(run_payload(run), base / f"{stem}_results.json"),
    }
    return artefacts


def require_verified_payload(payload: Dict[str, object]) -> None:
    """Refuse core-bench payloads whose verification guards did not run.

    :func:`~repro.bench.core_bench.run_core_bench` records whether the
    packed-vs-object parity sweep (and the corpus union check) ran under
    ``protocol.verified_parity``, and whether the ranking section's
    early-vs-exhaustive equality guard ran under
    ``ranking.verified_equivalence``.  An unverified payload may contain
    fast-but-wrong numbers, so persisting it as the ``BENCH_core.json``
    artefact is forbidden — re-run with verify=True.
    """
    from .core_bench import RankingEquivalenceError, RepresentationParityError

    protocol = payload.get("protocol")
    verified = isinstance(protocol, dict) and protocol.get("verified_parity")
    if not verified:
        raise RepresentationParityError(
            "refusing to persist an unverified core-bench payload "
            "(protocol.verified_parity is not set); re-run with verify=True")
    ranking = payload.get("ranking")
    if ranking is not None and not (
            isinstance(ranking, dict) and
            ranking.get("verified_equivalence")):
        raise RankingEquivalenceError(
            "refusing to persist a core-bench payload whose ranking section "
            "skipped the early-vs-exhaustive equality guard "
            "(ranking.verified_equivalence is not set); re-run with "
            "verify=True")


def write_core_bench(payload: Dict[str, object],
                     path: PathLike = "BENCH_core.json") -> Path:
    """Persist a :func:`~repro.bench.core_bench.run_core_bench` payload.

    Calls :func:`require_verified_payload` first: the artefact is only ever
    written from a parity-verified run (the bench-honesty contract the lint
    gate enforces on every ``BENCH_*.json`` writer).
    """
    require_verified_payload(payload)
    return write_json(payload, path)


def chart_figure5(run: WorkloadRun, width: int = 40) -> str:
    """ASCII rendering of the Figure 5 timing series for one dataset."""
    labels = [measurement.label for measurement in run.measurements]
    validrtf_ms = [measurement.validrtf_seconds * 1000.0
                   for measurement in run.measurements]
    maxmatch_ms = [measurement.maxmatch_seconds * 1000.0
                   for measurement in run.measurements]
    blocks = [
        ascii_bar_chart(labels, maxmatch_ms,
                        title=f"{run.dataset}: MaxMatch elapsed time (ms, log scale)",
                        width=width, log_scale=True, unit=" ms"),
        ascii_bar_chart(labels, validrtf_ms,
                        title=f"{run.dataset}: ValidRTF elapsed time (ms, log scale)",
                        width=width, log_scale=True, unit=" ms"),
    ]
    return "\n\n".join(blocks)


def chart_figure6(run: WorkloadRun, width: int = 40) -> str:
    """ASCII rendering of the Figure 6 ratio series for one dataset."""
    labels = [measurement.label for measurement in run.measurements]
    blocks = [
        ascii_bar_chart(labels, [m.report.cfr for m in run.measurements],
                        title=f"{run.dataset}: CFR", width=width),
        ascii_bar_chart(labels, [m.report.apr_prime for m in run.measurements],
                        title=f"{run.dataset}: APR'", width=width),
        ascii_bar_chart(labels, [m.report.max_apr for m in run.measurements],
                        title=f"{run.dataset}: Max APR", width=width),
    ]
    return "\n\n".join(blocks)
