"""Figure 5 driver — per-query elapsed time of MaxMatch vs ValidRTF + RTF counts.

The paper's Figure 5 has four panels (DBLP, XMark standard, data1, data2),
each plotting, per workload query, the elapsed time of the two algorithms
(bars, log scale) and the number of RTFs (line).  This driver regenerates the
same three series per dataset as rows/series of numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .harness import DatasetSpec, WorkloadRun, run_workload
from .reporting import format_series, format_table

#: Columns of the Figure 5 table, in print order.
FIGURE5_COLUMNS = ("query", "keywords", "maxmatch_ms", "validrtf_ms", "rtfs",
                   "time_ratio")


def figure5_rows(run: WorkloadRun) -> List[Dict[str, object]]:
    """The Figure 5 panel of one dataset as table rows."""
    rows: List[Dict[str, object]] = []
    for measurement in run.measurements:
        ratio = _safe_ratio(measurement.validrtf_seconds, measurement.maxmatch_seconds)
        rows.append({
            "query": measurement.label,
            "keywords": measurement.query,
            "maxmatch_ms": round(measurement.maxmatch_seconds * 1000.0, 3),
            "validrtf_ms": round(measurement.validrtf_seconds * 1000.0, 3),
            "rtfs": measurement.rtf_count,
            "time_ratio": round(ratio, 3),
        })
    return rows


def figure5_series(run: WorkloadRun) -> Dict[str, Sequence[float]]:
    """The three plotted series (MaxMatch ms, ValidRTF ms, RTF count)."""
    return {
        "labels": [m.label for m in run.measurements],
        "maxmatch_ms": [m.maxmatch_seconds * 1000.0 for m in run.measurements],
        "validrtf_ms": [m.validrtf_seconds * 1000.0 for m in run.measurements],
        "rtfs": [float(m.rtf_count) for m in run.measurements],
    }


def figure5_summary(run: WorkloadRun) -> Dict[str, float]:
    """Aggregates used to check the paper's qualitative claim ("competent
    performance"): mean/max ValidRTF-to-MaxMatch time ratio."""
    ratios = [
        _safe_ratio(m.validrtf_seconds, m.maxmatch_seconds)
        for m in run.measurements
    ]
    if not ratios:
        return {"queries": 0, "mean_time_ratio": 1.0, "max_time_ratio": 1.0}
    return {
        "queries": len(ratios),
        "mean_time_ratio": sum(ratios) / len(ratios),
        "max_time_ratio": max(ratios),
        "min_time_ratio": min(ratios),
    }


def render_figure5(run: WorkloadRun) -> str:
    """The whole panel as printable text (table + series + summary)."""
    rows = figure5_rows(run)
    series = figure5_series(run)
    parts = [
        format_table(rows, FIGURE5_COLUMNS,
                     title=f"Figure 5 — {run.dataset}: per-query elapsed time"),
        format_series("RTFs", series["labels"], series["rtfs"], precision=0),
    ]
    summary = figure5_summary(run)
    parts.append(
        f"summary: mean ValidRTF/MaxMatch time ratio "
        f"{summary['mean_time_ratio']:.3f} (max {summary['max_time_ratio']:.3f})"
    )
    return "\n\n".join(parts)


def run_figure5(spec: DatasetSpec, repetitions: int = 3,
                engine=None) -> WorkloadRun:
    """Convenience wrapper: run the workload needed for one Figure 5 panel."""
    return run_workload(spec, engine=engine, repetitions=repetitions)


def _safe_ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0:
        return 1.0
    return numerator / denominator
