"""Figure 6 driver — per-query CFR, APR' and Max APR of ValidRTF vs MaxMatch.

The paper's Figure 6 has four panels (DBLP, XMark standard, data1, data2),
each plotting three ratio series per workload query.  This driver regenerates
them and also checks the qualitative shape the paper reports:

* real-data-like corpus (DBLP): APR' ≈ 0 on every query, Max APR noticeably
  above zero, CFR < 1 on most queries;
* synthetic corpus (XMark scales): APR' > 0 on most queries and Max APR close
  to 1.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .harness import DatasetSpec, WorkloadRun, run_workload
from .reporting import format_table

#: Columns of the Figure 6 table, in print order.
FIGURE6_COLUMNS = ("query", "keywords", "rtfs", "cfr", "apr_prime", "max_apr")


def figure6_rows(run: WorkloadRun) -> List[Dict[str, object]]:
    """The Figure 6 panel of one dataset as table rows."""
    rows: List[Dict[str, object]] = []
    for measurement in run.measurements:
        rows.append({
            "query": measurement.label,
            "keywords": measurement.query,
            "rtfs": measurement.rtf_count,
            "cfr": round(measurement.report.cfr, 4),
            "apr_prime": round(measurement.report.apr_prime, 4),
            "max_apr": round(measurement.report.max_apr, 4),
        })
    return rows


def figure6_series(run: WorkloadRun) -> Dict[str, Sequence[float]]:
    """The three plotted series (CFR, APR', Max APR) plus labels."""
    return {
        "labels": [m.label for m in run.measurements],
        "cfr": [m.report.cfr for m in run.measurements],
        "apr_prime": [m.report.apr_prime for m in run.measurements],
        "max_apr": [m.report.max_apr for m in run.measurements],
    }


def figure6_summary(run: WorkloadRun) -> Dict[str, float]:
    """Aggregates used by the shape checks in the benchmark tests."""
    measurements = run.measurements
    if not measurements:
        return {"queries": 0, "mean_cfr": 1.0, "mean_apr_prime": 0.0,
                "mean_max_apr": 0.0, "queries_with_extra_pruning": 0,
                "queries_with_positive_apr_prime": 0}
    return {
        "queries": len(measurements),
        "mean_cfr": sum(m.report.cfr for m in measurements) / len(measurements),
        "mean_apr_prime": sum(m.report.apr_prime for m in measurements)
        / len(measurements),
        "mean_max_apr": sum(m.report.max_apr for m in measurements)
        / len(measurements),
        "queries_with_extra_pruning": sum(1 for m in measurements
                                          if m.report.cfr < 1.0),
        "queries_with_positive_apr_prime": sum(1 for m in measurements
                                               if m.report.apr_prime > 0.0),
    }


def render_figure6(run: WorkloadRun) -> str:
    """The whole panel as printable text."""
    rows = figure6_rows(run)
    summary = figure6_summary(run)
    lines = [
        format_table(rows, FIGURE6_COLUMNS,
                     title=f"Figure 6 — {run.dataset}: CFR / APR' / Max APR"),
        (f"summary: CFR<1 on {summary['queries_with_extra_pruning']}/"
         f"{summary['queries']} queries, mean Max APR "
         f"{summary['mean_max_apr']:.3f}, mean APR' "
         f"{summary['mean_apr_prime']:.3f}"),
    ]
    return "\n\n".join(lines)


def run_figure6(spec: DatasetSpec, repetitions: int = 1, engine=None) -> WorkloadRun:
    """Convenience wrapper: run the workload needed for one Figure 6 panel.

    Timing repetitions are irrelevant for the ratios, so the default does a
    single timing pass to keep the run fast.
    """
    return run_workload(spec, engine=engine, repetitions=repetitions)
