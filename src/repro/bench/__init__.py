"""Benchmark harness for regenerating the paper's Figures 5 and 6."""

from .harness import (
    DatasetSpec,
    QueryMeasurement,
    WorkloadRun,
    cached_engine,
    default_datasets,
    measure_query,
    run_all,
    run_workload,
    time_algorithm,
)
from .figure5 import (
    FIGURE5_COLUMNS,
    figure5_rows,
    figure5_series,
    figure5_summary,
    render_figure5,
    run_figure5,
)
from .figure6 import (
    FIGURE6_COLUMNS,
    figure6_rows,
    figure6_series,
    figure6_summary,
    render_figure6,
    run_figure6,
)
from .reporting import format_series, format_summary, format_table
from .export import (
    ascii_bar_chart,
    chart_figure5,
    chart_figure6,
    export_run,
    run_payload,
    write_csv,
    write_json,
)

__all__ = [
    "DatasetSpec",
    "QueryMeasurement",
    "WorkloadRun",
    "default_datasets",
    "cached_engine",
    "measure_query",
    "run_workload",
    "run_all",
    "time_algorithm",
    "figure5_rows",
    "figure5_series",
    "figure5_summary",
    "render_figure5",
    "run_figure5",
    "FIGURE5_COLUMNS",
    "figure6_rows",
    "figure6_series",
    "figure6_summary",
    "render_figure6",
    "run_figure6",
    "FIGURE6_COLUMNS",
    "format_table",
    "format_series",
    "format_summary",
    "write_csv",
    "write_json",
    "ascii_bar_chart",
    "run_payload",
    "export_run",
    "chart_figure5",
    "chart_figure6",
]
