"""Workload runner shared by the Figure 5 / Figure 6 benchmark drivers.

The harness mirrors the paper's measurement protocol (Section 5.1): each query
is run several times per algorithm, the first run is discarded (warm-up) and
the remaining runs are averaged.  Results are collected per query so the
drivers can print the same per-query series the paper plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import SearchEngine, effectiveness
from ..core.metrics import EffectivenessReport
from ..storage import (
    ShardedPostingSource,
    SQLitePostingSource,
    SQLiteStore,
)
from ..datasets import (
    DBLPConfig,
    WorkloadQuery,
    XMarkConfig,
    dblp_workload,
    generate_dblp,
    generate_xmark,
    xmark_workload,
)
from ..xmltree import XMLTree


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark dataset: a tree factory plus its query workload."""

    name: str
    tree_factory: Callable[[], XMLTree]
    workload: Tuple[WorkloadQuery, ...]
    description: str = ""


@dataclass(frozen=True)
class QueryMeasurement:
    """Per-query measurements for Figure 5 (timing) and Figure 6 (ratios)."""

    dataset: str
    label: str
    query: str
    rtf_count: int
    maxmatch_seconds: float
    validrtf_seconds: float
    report: EffectivenessReport

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary row shared by the reporting helpers."""
        return {
            "dataset": self.dataset,
            "query": self.label,
            "keywords": self.query,
            "rtfs": self.rtf_count,
            "maxmatch_ms": round(self.maxmatch_seconds * 1000.0, 3),
            "validrtf_ms": round(self.validrtf_seconds * 1000.0, 3),
            "cfr": round(self.report.cfr, 4),
            "apr_prime": round(self.report.apr_prime, 4),
            "max_apr": round(self.report.max_apr, 4),
        }


@dataclass
class WorkloadRun:
    """All measurements of one dataset's workload."""

    dataset: str
    measurements: List[QueryMeasurement] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [measurement.as_row() for measurement in self.measurements]


# ---------------------------------------------------------------------- #
# Default dataset registry (sizes chosen for laptop-scale runs; DESIGN.md
# documents the down-scaling from the paper's multi-hundred-MB documents).
# ---------------------------------------------------------------------- #
def default_datasets(dblp_publications: int = 600,
                     xmark_base_items: int = 80) -> Dict[str, DatasetSpec]:
    """The four datasets of the paper's evaluation, scaled down."""
    dblp_spec = DatasetSpec(
        name="dblp",
        tree_factory=lambda: generate_dblp(
            DBLPConfig(publications=dblp_publications)),
        workload=tuple(dblp_workload()),
        description="synthetic DBLP-like bibliography (real-data stand-in)",
    )
    xmark_specs = {
        scale: DatasetSpec(
            name=f"xmark-{scale}",
            tree_factory=lambda scale=scale: generate_xmark(
                XMarkConfig(scale=scale, base_items=xmark_base_items)),
            workload=tuple(xmark_workload()),
            description=f"synthetic XMark-like auction site ({scale})",
        )
        for scale in ("standard", "data1", "data2")
    }
    return {"dblp": dblp_spec, **{spec.name: spec for spec in xmark_specs.values()}}


@lru_cache(maxsize=None)
def cached_engine(dataset_name: str, dblp_publications: int = 600,
                  xmark_base_items: int = 80,
                  cache_size: int = 0) -> SearchEngine:
    """Build (once) the :class:`SearchEngine` of a default dataset.

    ``cache_size`` > 0 gives the engine a query-result cache; engines with
    different cache sizes are memoized separately.  Note the memoization means
    every caller with the same arguments shares one engine — including its
    query-cache contents and statistics.  Measurements that need a cold cache
    should build their own ``SearchEngine`` instead.
    """
    specs = default_datasets(dblp_publications, xmark_base_items)
    try:
        spec = specs[dataset_name]
    except KeyError:
        raise KeyError(f"unknown dataset {dataset_name!r}; "
                       f"expected one of {sorted(specs)}") from None
    return SearchEngine(spec.tree_factory(), cache_size=cache_size)


# ---------------------------------------------------------------------- #
# Backend selection
# ---------------------------------------------------------------------- #
#: Backends accepted by :func:`engine_for_backend` / ``run_workload``.
BACKEND_NAMES = ("memory", "sqlite", "sharded", "corpus")


def engine_for_backend(tree: XMLTree, backend: str = "memory",
                       cache_size: int = 0, shards: int = 2,
                       db_path: Optional[str] = None,
                       document: str = "bench",
                       representation: str = "packed") -> SearchEngine:
    """Build a :class:`SearchEngine` over ``tree`` for one posting backend.

    ``memory`` builds the classic in-memory inverted index (tree resident).
    ``sqlite`` shreds the document into a :class:`SQLiteStore` (an on-disk
    file when ``db_path`` is given, in-process otherwise) and searches purely
    through the disk-backed posting source — no tree resident, so the
    measured times include SQL posting retrieval and SQL-backed record
    construction, the cold-disk counterpart the Figure 5/6 drivers compare
    against hot-memory retrieval.  ``sharded`` fans the document out over
    ``shards`` sqlite stores and merge-sorts posting lists at query time.

    ``representation`` selects the physical posting form — packed flat
    columns (the default) or boxed ``DeweyCode`` lists — so the drivers can
    measure the representation ablation on every backend.
    """
    if backend == "memory":
        return SearchEngine(tree, cache_size=cache_size,
                            representation=representation)
    if backend == "sqlite":
        store = SQLiteStore(db_path if db_path else ":memory:")
        if document in store.documents():
            # Reuse an already-indexed file only when it still matches the
            # generated tree (node count is a cheap fingerprint); a stale
            # corpus would silently skew every measurement.
            if store.document_stats(document)["nodes"] != tree.size():
                store.drop_document(document)
                store.store_tree(tree, document)
        else:
            store.store_tree(tree, document)
        return SearchEngine(
            source=SQLitePostingSource(store, document,
                                       representation=representation),
            cache_size=cache_size)
    if backend == "sharded":
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        source = ShardedPostingSource.from_tree(tree, shard_count=shards,
                                                name=document,
                                                representation=representation)
        return SearchEngine(source=source, cache_size=cache_size)
    if backend == "corpus":
        from ..corpus import CorpusSearchEngine

        # A one-document corpus over the dataset: measures the corpus
        # layer's per-document dispatch overhead against the flat backends.
        return CorpusSearchEngine.from_trees(
            {document: tree}, backend="memory",
            representation=representation, cache_size=cache_size)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}")


# ---------------------------------------------------------------------- #
# Measurement
# ---------------------------------------------------------------------- #
def _average_timed_passes(run: Callable[[], object], repetitions: int) -> float:
    """The paper's protocol: ``repetitions + 1`` passes, first (warm-up)
    discarded, rest averaged."""
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    timings: List[float] = []
    for _ in range(repetitions + 1):
        started = time.perf_counter()
        run()
        timings.append(time.perf_counter() - started)
    kept = timings[1:]
    return sum(kept) / len(kept)


def time_algorithm(engine: SearchEngine, query: str, algorithm: str,
                   repetitions: int = 3) -> float:
    """Average wall-clock seconds per run, discarding the first (warm-up)."""
    return _average_timed_passes(lambda: engine.search(query, algorithm),
                                 repetitions)


def time_batch(engine: SearchEngine, queries: Sequence[str], algorithm: str,
               repetitions: int = 3) -> float:
    """Average wall-clock seconds per ``search_many`` pass over ``queries``.

    Same protocol as :func:`time_algorithm`.  On a cache-enabled engine the
    later passes measure the hot (cache-hit) path — which is exactly what the
    cache ablation wants to compare against the cold loop.
    """
    return _average_timed_passes(lambda: engine.search_many(queries, algorithm),
                                 repetitions)


def measure_query(engine: SearchEngine, dataset: str, query: WorkloadQuery,
                  repetitions: int = 3) -> QueryMeasurement:
    """Measure one workload query: timings, RTF count and effectiveness."""
    validrtf_result = engine.search(query.text, "validrtf")
    maxmatch_result = engine.search(query.text, "maxmatch")
    report = effectiveness(maxmatch_result, validrtf_result)
    return QueryMeasurement(
        dataset=dataset,
        label=query.label,
        query=query.text,
        rtf_count=validrtf_result.count,
        maxmatch_seconds=time_algorithm(engine, query.text, "maxmatch", repetitions),
        validrtf_seconds=time_algorithm(engine, query.text, "validrtf", repetitions),
        report=report,
    )


def run_workload(spec: DatasetSpec, engine: Optional[SearchEngine] = None,
                 repetitions: int = 3,
                 queries: Optional[Sequence[WorkloadQuery]] = None,
                 cache_size: int = 0, backend: str = "memory",
                 shards: int = 2,
                 db_path: Optional[str] = None,
                 representation: str = "packed") -> WorkloadRun:
    """Run a dataset's whole workload and collect every measurement.

    ``cache_size`` > 0 builds the engine with a query-result cache, so the
    timed repetitions measure the hot (cache-hit) path instead of paying full
    pipeline cost every time.  Keep it at 0 to reproduce the paper's cold
    per-repetition protocol.  ``backend`` selects the posting backend the
    engine is built over (see :func:`engine_for_backend`), so the figure
    drivers can compare cold-disk (``sqlite``/``sharded``) against hot-memory
    retrieval.  All of these are ignored when an ``engine`` is passed in.
    """
    engine = engine if engine is not None else engine_for_backend(
        spec.tree_factory(), backend, cache_size=cache_size, shards=shards,
        db_path=db_path, document=spec.name, representation=representation)
    run = WorkloadRun(dataset=spec.name)
    for query in (queries if queries is not None else spec.workload):
        run.measurements.append(measure_query(engine, spec.name, query, repetitions))
    return run


def run_all(specs: Optional[Mapping[str, DatasetSpec]] = None,
            repetitions: int = 3, cache_size: int = 0,
            backend: str = "memory") -> Dict[str, WorkloadRun]:
    """Run every dataset's workload (the full Figures 5 + 6 campaign)."""
    specs = specs if specs is not None else default_datasets()
    return {name: run_workload(spec, repetitions=repetitions,
                               cache_size=cache_size, backend=backend)
            for name, spec in specs.items()}
