"""Executable specification of Definitions 1 and 2 (ECTQ and RTF).

Definition 1 enumerates the *extended keyword node combination set*
``ECT_Q`` — every union of one non-empty subset per keyword node list.
Definition 2 keeps exactly the combinations that form Relaxed Tightest
Fragments.  Both are exponential and only usable on small inputs; they exist
as the ground truth that the efficient pipeline (``getLCA`` + ``getRTF``) is
checked against in the test suite, mirroring the paper's Section 4.3-(1)
analysis and Examples 3–4.

Reading of Definition 2 used here (guided by Example 4):

* a combination is identified with its node-set union ``U``; the per-keyword
  slot is ``U ∩ D_i`` (a node containing several keywords belongs to several
  slots);
* condition 1 — no choice of non-empty subsets of the slots has an LCA
  different from ``LCA(U)``;
* condition 2 — ``U`` is maximal: no further node of any ``D_i`` can be added
  without changing the LCA, *among nodes not already claimed by a deeper
  partition* — this is how Example 4 treats node ``r`` when accepting
  ``{n, t, a}``;
* condition 3 — no node of ``U`` lies inside a deeper partition.

"Deeper partition" means a partition rooted strictly below ``LCA(U)``.  The
paper's Definition 2 phrases this through arbitrary keyword-node subsets, but
the partitions its own pipeline materializes are exactly those rooted at the
interesting LCA (ELCA) nodes returned by ``getLCA`` — so the executable
specification identifies "deeper partitions" with subtrees of ELCA nodes
strictly below ``LCA(U)``.  With that reading the specification coincides with
``getLCA`` + ``getRTF`` (checked by tests on the figure instances, Examples 3
and 4, and random inputs).
"""

from __future__ import annotations

from itertools import product
from typing import FrozenSet, List, Mapping, Sequence

from ..lca import naive_elca
from ..xmltree import DeweyCode, lca_of_codes

NodeSet = FrozenSet[DeweyCode]


def enumerate_ectq(keyword_lists: Mapping[str, Sequence[DeweyCode]],
                   max_combinations: int = 200_000) -> List[NodeSet]:
    """The distinct node-set unions of ``ECT_Q`` (Definition 1).

    Example 3 counts these unions (11 for the "Liu keyword" query), so the
    enumeration deduplicates unions produced by different subset choices.
    ``max_combinations`` guards against accidental exponential blow-ups.
    """
    per_keyword_subsets: List[List[NodeSet]] = []
    expected = 1
    for deweys in keyword_lists.values():
        unique = sorted(set(DeweyCode.coerce(code) for code in deweys))
        if not unique:
            return []
        subsets = _non_empty_subsets(unique)
        expected *= len(subsets)
        if expected > max_combinations:
            raise ValueError(
                f"ECTQ enumeration would produce more than {max_combinations} "
                f"combinations; restrict the input"
            )
        per_keyword_subsets.append(subsets)
    unions = {frozenset().union(*choice) for choice in product(*per_keyword_subsets)}
    return sorted(unions, key=lambda nodes: (len(nodes), sorted(nodes)))


def is_rtf_combination(union_nodes: NodeSet,
                       keyword_lists: Mapping[str, Sequence[DeweyCode]]) -> bool:
    """Definition 2's three conditions for one combination (see module doc)."""
    full_lists = [
        sorted(set(DeweyCode.coerce(code) for code in deweys))
        for deweys in keyword_lists.values()
    ]
    slots = [frozenset(node for node in union_nodes if node in set(nodes))
             for nodes in full_lists]
    if any(not slot for slot in slots):
        return False
    lca = lca_of_codes(union_nodes)

    keyword_lists_by_index = {str(index): nodes
                              for index, nodes in enumerate(full_lists)}
    interesting_roots = naive_elca(keyword_lists_by_index)
    # The partition must be rooted at an interesting LCA node: Definition 2 is
    # the idealization of the partitions getRTF builds for the roots returned
    # by getLCA (Section 4.3-(1)); keyword nodes that cannot reach any
    # interesting LCA node belong to no partition.
    if lca not in interesting_roots:
        return False
    deeper_roots = [code for code in interesting_roots
                    if lca.is_ancestor_of(code)]

    # Condition 3: no keyword node of the combination belongs to a deeper
    # partition (lies under an interesting LCA node strictly below the LCA).
    for node in union_nodes:
        if any(root.is_ancestor_or_self(node) for root in deeper_roots):
            return False

    # Condition 1: every one-node-per-slot choice has the same LCA (singleton
    # choices witness any violation because adding nodes can only raise LCAs).
    for choice in product(*slots):
        if lca_of_codes(choice) != lca:
            return False

    # Condition 2: maximality among nodes not claimed by deeper partitions.
    for slot, nodes in zip(slots, full_lists):
        for extra in nodes:
            if extra in slot:
                continue
            if any(root.is_ancestor_or_self(extra) for root in deeper_roots):
                continue
            if lca_of_codes(set(union_nodes) | {extra}) == lca:
                return False
    return True


def enumerate_rtfs(keyword_lists: Mapping[str, Sequence[DeweyCode]],
                   max_combinations: int = 200_000) -> List[NodeSet]:
    """The keyword-node sets of every RTF, straight from Definitions 1 and 2."""
    unions = enumerate_ectq(keyword_lists, max_combinations=max_combinations)
    accepted = [union for union in unions
                if is_rtf_combination(union, keyword_lists)]
    return sorted(accepted, key=lambda nodes: (len(nodes), sorted(nodes)))


def rtf_roots(rtf_node_sets: Sequence[NodeSet]) -> List[DeweyCode]:
    """The LCA roots of ground-truth RTF keyword-node sets, document order."""
    return sorted(lca_of_codes(nodes) for nodes in rtf_node_sets)


def _non_empty_subsets(nodes: Sequence[DeweyCode]) -> List[NodeSet]:
    subsets: List[NodeSet] = []
    count = len(nodes)
    for mask in range(1, 1 << count):
        subsets.append(frozenset(
            nodes[index] for index in range(count) if mask & (1 << index)
        ))
    return subsets
