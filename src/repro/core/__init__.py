"""Core result model and algorithms: RTFs, MaxMatch, ValidRTF, metrics, axioms."""

from .errors import (
    EmptyQueryError,
    FragmentError,
    SearchError,
    UnknownAlgorithmError,
)
from .query import Query, QueryLike, as_query, subset_masks
from .cache import CacheKey, CacheStats, QueryResultCache
from .fragments import (
    Fragment,
    PrunedFragment,
    SearchResult,
    build_fragment,
    dewey_fragment_nodes,
    fragments_equal,
    unpruned,
)
from .ectq import (
    enumerate_ectq,
    enumerate_rtfs,
    is_rtf_combination,
    rtf_roots,
)
from .rtf import assign_keyword_nodes, build_rtfs
from .node_record import (
    CID_MODES,
    LabelGroup,
    NodeRecord,
    RecordTree,
    build_record_tree,
    build_record_tree_from_lookups,
)
from .contributor import is_contributor, prune_with_contributor
from .valid_contributor import is_valid_contributor, prune_with_valid_contributor
from .explain import (
    ComparisonExplanation,
    Decision,
    DifferenceKind,
    FragmentExplanation,
    NodeDecision,
    NodeDifference,
    classify_differences,
    explain_contributor,
    explain_valid_contributor,
    render_explanation,
)
from .pipeline import FragmentPipeline, elca_roots, slca_roots
from .maxmatch import MaxMatch, MaxMatchSLCA, run_maxmatch
from .validrtf import ValidRTF, ValidRTFSLCA, run_validrtf
from .metrics import (
    EffectivenessReport,
    FragmentComparison,
    compare_fragments,
    effectiveness,
    summarize_reports,
)
from .axioms import (
    AxiomCheck,
    AxiomReport,
    check_all_axioms,
    check_data_consistency,
    check_data_monotonicity,
    check_query_consistency,
    check_query_monotonicity,
)
from .ranking import (
    DocumentRankedFragment,
    RankedFragment,
    RankingWeights,
    merge_ranked,
    rank_fragments,
    rank_result,
)
from .engine import ALGORITHM_NAMES, ComparisonOutcome, SearchEngine

__all__ = [
    "SearchError",
    "EmptyQueryError",
    "UnknownAlgorithmError",
    "FragmentError",
    "Query",
    "QueryLike",
    "as_query",
    "subset_masks",
    "CacheKey",
    "CacheStats",
    "QueryResultCache",
    "Fragment",
    "PrunedFragment",
    "SearchResult",
    "build_fragment",
    "dewey_fragment_nodes",
    "unpruned",
    "fragments_equal",
    "enumerate_ectq",
    "enumerate_rtfs",
    "is_rtf_combination",
    "rtf_roots",
    "assign_keyword_nodes",
    "build_rtfs",
    "CID_MODES",
    "NodeRecord",
    "LabelGroup",
    "RecordTree",
    "build_record_tree",
    "build_record_tree_from_lookups",
    "is_contributor",
    "prune_with_contributor",
    "is_valid_contributor",
    "prune_with_valid_contributor",
    "Decision",
    "DifferenceKind",
    "NodeDecision",
    "NodeDifference",
    "FragmentExplanation",
    "ComparisonExplanation",
    "explain_contributor",
    "explain_valid_contributor",
    "classify_differences",
    "render_explanation",
    "FragmentPipeline",
    "elca_roots",
    "slca_roots",
    "MaxMatch",
    "MaxMatchSLCA",
    "run_maxmatch",
    "ValidRTF",
    "ValidRTFSLCA",
    "run_validrtf",
    "EffectivenessReport",
    "FragmentComparison",
    "compare_fragments",
    "effectiveness",
    "summarize_reports",
    "AxiomCheck",
    "AxiomReport",
    "check_all_axioms",
    "check_data_monotonicity",
    "check_query_monotonicity",
    "check_data_consistency",
    "check_query_consistency",
    "RankingWeights",
    "RankedFragment",
    "DocumentRankedFragment",
    "merge_ranked",
    "rank_fragments",
    "rank_result",
    "SearchEngine",
    "ComparisonOutcome",
    "ALGORITHM_NAMES",
]
