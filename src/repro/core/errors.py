"""Exception types raised by the core search layer."""

from __future__ import annotations


class SearchError(Exception):
    """Base class for errors raised by :mod:`repro.core`."""


class EmptyQueryError(SearchError):
    """Raised when a keyword query normalizes to zero keywords."""


class UnknownAlgorithmError(SearchError):
    """Raised when an algorithm name is not registered with the engine."""


class FragmentError(SearchError):
    """Raised when a fragment is structurally inconsistent (internal misuse)."""
