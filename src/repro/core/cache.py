"""Shared query-result cache for the search fast path.

Benchmark workloads (the Figure 5/6 drivers, the ablation suite, any
repeated-traffic scenario) re-execute identical queries many times.  Every
stage after ``getKeywordNodes`` is a pure function of the document, so the
complete :class:`~repro.core.fragments.SearchResult` of a query can be reused
as long as the cache key captures everything the answer depends on:

* the algorithm name (each pipeline prunes differently),
* the normalized keyword tuple (so ``"XML search"`` and ``["xml", "search"]``
  share one entry),
* the engine's ``cid_mode`` (the record-tree content features, and therefore
  the pruning decisions, depend on it),
* the backend identity (``PostingSource.source_id``), so results computed
  against one posting backend are never replayed for another (backends must
  agree — the parity suite enforces it — but distinct stores behind one
  shared cache must not mix).  Note the identity names the backend, not its
  contents: after re-ingesting a database in place, call ``clear_cache()``.

The cache is a classic LRU over an :class:`collections.OrderedDict` with
hit/miss/eviction counters so benchmarks can report exactly how much work was
skipped.

The cache is thread-safe: one lock serializes every operation, so engines
shared by the concurrent serving layer (:mod:`repro.service`) never corrupt
the recency order or lose counter increments.  The critical sections are a
handful of dictionary operations, so the serial path pays only an uncontended
lock acquire per lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from .fragments import SearchResult
from .query import Query

#: A fully-resolved cache key:
#: (algorithm, normalized keywords, cid_mode, backend identity).
CacheKey = Tuple[str, Tuple[str, ...], str, str]


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def __str__(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions} size={self.size}/{self.max_size} "
                f"hit_rate={self.hit_rate:.2%}")


class QueryResultCache:
    """LRU cache mapping ``(algorithm, keywords, cid_mode)`` -> result.

    Parameters
    ----------
    max_size:
        Maximum number of cached results; must be positive.  The least
        recently *used* (read or written) entry is evicted on overflow.
    """

    def __init__(self, max_size: int = 128):
        if max_size <= 0:
            raise ValueError(f"cache max_size must be positive, got {max_size}")
        self.max_size = max_size
        self._entries: "OrderedDict[CacheKey, SearchResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Key construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(algorithm: str, query: Query, cid_mode: str,
                backend: str = "memory") -> CacheKey:
        """The cache key of one (already parsed/normalized) query.

        ``backend`` is the serving source's ``source_id``; it defaults to the
        in-memory backend so existing three-argument callers keep their keys.
        """
        return (algorithm, query.keywords, cid_mode, backend)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, key: CacheKey) -> Optional[SearchResult]:
        """The cached result for ``key``, or ``None``; counts a hit/miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def put(self, key: CacheKey, result: SearchResult) -> None:
        """Insert (or refresh) one result, evicting the LRU entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            if len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def peek(self, key: CacheKey) -> Optional[SearchResult]:
        """Like :meth:`get` but without touching recency or the counters."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries are preserved)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the current counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self.max_size,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return f"QueryResultCache({self.stats})"
