"""MaxMatch — the baseline algorithm (Liu & Chen, VLDB 2008).

Two variants are provided:

* :class:`MaxMatchSLCA` — the original algorithm: fragments rooted at **SLCA**
  nodes only, pruned with the contributor filter.
* :class:`MaxMatch` — the paper's **revised MaxMatch**: identical filtering,
  but applied to the RTFs rooted at *all* interesting LCA (ELCA) nodes, so
  that ValidRTF and MaxMatch can be compared fragment by fragment (Section 5
  keeps the name "MaxMatch" for this revision; so do we).
"""

from __future__ import annotations

from typing import Optional

from ..index import PostingSource
from ..xmltree import XMLTree
from .contributor import prune_with_contributor
from .fragments import SearchResult
from .pipeline import FragmentPipeline, elca_roots, slca_roots
from .query import QueryLike


class MaxMatch(FragmentPipeline):
    """Revised MaxMatch over RTFs (the paper's experimental baseline)."""

    def __init__(self, tree: Optional[XMLTree], index: Optional[PostingSource] = None,
                 cid_mode: str = "minmax", analyzer=None):
        super().__init__(
            tree,
            pruner=lambda records: prune_with_contributor(records, "maxmatch"),
            index=index,
            lca_function=elca_roots,
            cid_mode=cid_mode,
            analyzer=analyzer,
            name="maxmatch",
        )


class MaxMatchSLCA(FragmentPipeline):
    """Original MaxMatch: SLCA-rooted fragments with the contributor filter."""

    def __init__(self, tree: Optional[XMLTree], index: Optional[PostingSource] = None,
                 cid_mode: str = "minmax", analyzer=None):
        super().__init__(
            tree,
            pruner=lambda records: prune_with_contributor(records, "maxmatch-slca"),
            index=index,
            lca_function=slca_roots,
            cid_mode=cid_mode,
            analyzer=analyzer,
            name="maxmatch-slca",
        )


def run_maxmatch(tree: Optional[XMLTree], query: QueryLike,
                 index: Optional[PostingSource] = None,
                 slca_only: bool = False) -> SearchResult:
    """One-shot convenience wrapper around the two MaxMatch variants."""
    algorithm = MaxMatchSLCA(tree, index) if slca_only else MaxMatch(tree, index)
    return algorithm.search(query)
