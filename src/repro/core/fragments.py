"""Result fragments: SLCA-based fragments, RTFs and their pruned forms.

A fragment is identified by its root (an interesting LCA node) and carries

* the keyword nodes assigned to that root (the partition of Definitions 1/2),
* the full node set — the union of root-to-keyword-node paths, i.e.
  ``I(ECT_Q,j)`` of Definition 2,
* after pruning, the subset of nodes kept by the filtering mechanism.

Fragments are plain immutable data; the algorithms in
:mod:`repro.core.maxmatch` and :mod:`repro.core.validrtf` produce them and the
metrics in :mod:`repro.core.metrics` compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..xmltree import DeweyCode, XMLTree
from .errors import FragmentError
from .query import Query


@dataclass(frozen=True)
class Fragment:
    """A raw (unpruned) result fragment rooted at an interesting LCA node."""

    root: DeweyCode
    keyword_nodes: Tuple[DeweyCode, ...]
    nodes: Tuple[DeweyCode, ...]
    is_slca: bool = True

    def __post_init__(self):
        for keyword_node in self.keyword_nodes:
            if not self.root.is_ancestor_or_self(keyword_node):
                raise FragmentError(
                    f"keyword node {keyword_node} is outside fragment root {self.root}"
                )
        node_set = set(self.nodes)
        if self.root not in node_set:
            raise FragmentError(f"fragment root {self.root} missing from node set")
        missing = [kn for kn in self.keyword_nodes if kn not in node_set]
        if missing:
            raise FragmentError(f"keyword nodes {missing} missing from node set")

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of nodes in the raw fragment."""
        return len(self.nodes)

    def node_set(self) -> FrozenSet[DeweyCode]:
        """The raw node set as a frozen set."""
        return frozenset(self.nodes)

    def keyword_node_set(self) -> FrozenSet[DeweyCode]:
        """The keyword nodes as a frozen set."""
        return frozenset(self.keyword_nodes)

    def contains(self, dewey: DeweyCode) -> bool:
        """True iff the node belongs to the raw fragment."""
        return dewey in set(self.nodes)

    def __repr__(self) -> str:
        kind = "SLCA" if self.is_slca else "LCA"
        return (f"Fragment(root={self.root}, {kind}, "
                f"keyword_nodes={len(self.keyword_nodes)}, nodes={len(self.nodes)})")


@dataclass(frozen=True)
class PrunedFragment:
    """A fragment together with the node subset kept by a filtering mechanism."""

    fragment: Fragment
    kept_nodes: Tuple[DeweyCode, ...]
    algorithm: str = ""

    def __post_init__(self):
        raw = self.fragment.node_set()
        stray = [node for node in self.kept_nodes if node not in raw]
        if stray:
            raise FragmentError(f"kept nodes {stray} are not part of the raw fragment")
        if self.fragment.root not in set(self.kept_nodes):
            raise FragmentError("pruning removed the fragment root")

    # ------------------------------------------------------------------ #
    @property
    def root(self) -> DeweyCode:
        """The fragment root (never pruned)."""
        return self.fragment.root

    @property
    def is_slca(self) -> bool:
        """Whether the root is an SLCA node."""
        return self.fragment.is_slca

    @property
    def size(self) -> int:
        """Number of kept nodes."""
        return len(self.kept_nodes)

    def kept_set(self) -> FrozenSet[DeweyCode]:
        """The kept nodes as a frozen set."""
        return frozenset(self.kept_nodes)

    def pruned_nodes(self) -> Tuple[DeweyCode, ...]:
        """The nodes of the raw fragment that the filter discarded."""
        kept = self.kept_set()
        return tuple(node for node in self.fragment.nodes if node not in kept)

    def pruning_ratio(self) -> float:
        """Fraction of the raw fragment's nodes that were discarded."""
        if not self.fragment.nodes:
            return 0.0
        return len(self.pruned_nodes()) / len(self.fragment.nodes)

    def kept_keyword_nodes(self) -> Tuple[DeweyCode, ...]:
        """The keyword nodes of the fragment that survived pruning."""
        kept = self.kept_set()
        return tuple(node for node in self.fragment.keyword_nodes if node in kept)

    def same_nodes_as(self, other: "PrunedFragment") -> bool:
        """True iff both prunings kept exactly the same node set."""
        return self.kept_set() == other.kept_set()

    def __repr__(self) -> str:
        return (f"PrunedFragment(root={self.root}, kept={len(self.kept_nodes)}/"
                f"{self.fragment.size}, algorithm={self.algorithm!r})")


@dataclass(frozen=True)
class SearchResult:
    """The complete answer of one algorithm run for one query."""

    query: Query
    algorithm: str
    fragments: Tuple[PrunedFragment, ...]
    elapsed_seconds: float = 0.0
    lca_nodes: Tuple[DeweyCode, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of result fragments."""
        return len(self.fragments)

    def roots(self) -> Tuple[DeweyCode, ...]:
        """The fragment roots in document order."""
        return tuple(fragment.root for fragment in self.fragments)

    def by_root(self) -> Dict[DeweyCode, PrunedFragment]:
        """Mapping root Dewey code -> fragment."""
        return {fragment.root: fragment for fragment in self.fragments}

    def total_kept_nodes(self) -> int:
        """Total number of kept nodes across all fragments."""
        return sum(fragment.size for fragment in self.fragments)

    def total_raw_nodes(self) -> int:
        """Total number of raw fragment nodes across all fragments."""
        return sum(fragment.fragment.size for fragment in self.fragments)

    def slca_fragments(self) -> Tuple[PrunedFragment, ...]:
        """Only the fragments whose root is an SLCA node."""
        return tuple(fragment for fragment in self.fragments if fragment.is_slca)

    def with_timing(self, elapsed_seconds: float) -> "SearchResult":
        """A copy of the result carrying a measured elapsed time."""
        return replace(self, elapsed_seconds=elapsed_seconds)

    def __iter__(self):
        return iter(self.fragments)

    def __len__(self) -> int:
        return len(self.fragments)


def build_fragment(tree: Optional[XMLTree], root, keyword_nodes,
                   is_slca: bool = True) -> Fragment:
    """Construct the raw fragment ``I(root, keyword nodes)``.

    ``root`` and ``keyword_nodes`` accept Dewey codes in any coercible form
    (code objects, dotted strings, int sequences).  The node set is the union
    of the paths from the root to every keyword node, sorted in document order
    (Definition 2).

    ``tree`` may be ``None``: a root-to-node path is fully determined by the
    Dewey codes themselves (every prefix of a node's code is an ancestor), so
    disk-backed searches build fragments without a resident tree.  When a
    tree *is* given it is used to resolve the paths, which also validates
    that every code exists in the document.
    """
    root_code = DeweyCode.coerce(root)
    keyword_list: List[DeweyCode] = sorted(
        {DeweyCode.coerce(code) for code in keyword_nodes})
    if tree is not None:
        node_codes = [node.dewey
                      for node in tree.fragment_nodes(root_code, keyword_list)]
        if root_code not in node_codes:
            node_codes.insert(0, root_code)
    else:
        node_codes = list(dewey_fragment_nodes(root_code, keyword_list))
    return Fragment(
        root=root_code,
        keyword_nodes=tuple(keyword_list),
        nodes=tuple(sorted(set(node_codes))),
        is_slca=is_slca,
    )


def dewey_fragment_nodes(root: DeweyCode,
                         keyword_nodes: Iterable[DeweyCode]) -> List[DeweyCode]:
    """The fragment node set computed from Dewey codes alone.

    The union of root-to-keyword-node paths, where each path is the set of
    Dewey prefixes of the keyword node at least as deep as the root —
    identical to :meth:`XMLTree.fragment_nodes` on any tree containing the
    codes, but usable when no tree is resident.
    """
    codes = {root}
    root_depth = len(root)
    for keyword_node in keyword_nodes:
        if not root.is_ancestor_or_self(keyword_node):
            raise FragmentError(
                f"keyword node {keyword_node} is outside fragment root {root}")
        components = keyword_node.components
        for size in range(root_depth, len(components) + 1):
            # Prefix slices of a validated code are valid; skip re-validation
            # on this per-fragment inner loop.
            codes.add(DeweyCode._from_tuple(components[:size]))
    return sorted(codes)


def unpruned(fragment: Fragment, algorithm: str = "raw") -> PrunedFragment:
    """Wrap a raw fragment as a "pruning" that keeps every node."""
    return PrunedFragment(fragment=fragment, kept_nodes=fragment.nodes,
                          algorithm=algorithm)


def fragments_equal(left: Sequence[PrunedFragment],
                    right: Sequence[PrunedFragment]) -> bool:
    """True iff two result lists keep exactly the same nodes per root."""
    left_map = {fragment.root: fragment.kept_set() for fragment in left}
    right_map = {fragment.root: fragment.kept_set() for fragment in right}
    return left_map == right_map
