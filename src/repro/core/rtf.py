"""RTF construction — the ``getRTF`` stage of Algorithm 1.

Given the interesting LCA nodes (ELCAs, in document order) and the keyword
posting lists ``D_1..D_k``, every keyword node is dispatched to the *last* LCA
node in document order that is its ancestor-or-self — i.e. its nearest
enclosing interesting LCA node.  The keyword nodes collected for one LCA node,
together with the paths from that node down to them, form one Relaxed Tightest
Fragment (Definition 2; see the analysis in Section 4.3-(1)).

Keyword nodes that are not descendants of any interesting LCA node belong to
no partition and are dropped (they cannot complete a fragment covering the
query).
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..index.packed import all_packed, iter_matches
from ..xmltree import DeweyCode, XMLTree
from .fragments import Fragment, build_fragment
from .query import Query


def assign_keyword_nodes(
    lca_nodes: Sequence[DeweyCode],
    keyword_lists: Mapping[str, Sequence[DeweyCode]],
) -> Dict[DeweyCode, List[DeweyCode]]:
    """Dispatch every keyword node to its nearest enclosing LCA node.

    Returns a mapping ``lca -> sorted keyword nodes``; LCA nodes with no
    assigned keyword node (possible only when the input lists are
    inconsistent) map to an empty list so callers see every requested root.
    """
    sorted_lcas = sorted(lca_nodes)
    assignment: Dict[DeweyCode, List[DeweyCode]] = {code: [] for code in sorted_lcas}
    seen: set = set()
    for deweys in keyword_lists.values():
        for dewey in deweys:
            # lint: allow(hot-loop-purity) object path's input normalization
            code = DeweyCode.coerce(dewey)
            if code in seen:
                continue
            seen.add(code)
            owner = _nearest_enclosing(sorted_lcas, code)
            if owner is not None:
                assignment[owner].append(code)
    for keyword_nodes in assignment.values():
        keyword_nodes.sort()
    return assignment


def build_rtfs(
    tree: Optional[XMLTree],
    query: Query,
    lca_nodes: Sequence[DeweyCode],
    keyword_lists: Mapping[str, Sequence[DeweyCode]],
    slca_flags: Sequence[bool] = (),
) -> List[Fragment]:
    """``getRTF``: one raw :class:`Fragment` per interesting LCA node.

    ``slca_flags`` (parallel to ``lca_nodes``) marks which roots are also SLCA
    nodes; when omitted it is derived from the node set itself (an LCA node is
    an SLCA iff no other LCA node is its strict descendant).  ``tree`` may be
    ``None``; fragments are then assembled from Dewey arithmetic alone (see
    :func:`~repro.core.fragments.build_fragment`).
    """
    sorted_lcas = sorted(lca_nodes)
    if slca_flags and len(slca_flags) == len(lca_nodes):
        # lint: allow(hot-loop-purity) boxed LCA roots are the result keys
        flag_by_code = {DeweyCode.coerce(code): flag
                        for code, flag in zip(lca_nodes, slca_flags)}
    else:
        flag_by_code = {
            code: not any(code.is_ancestor_of(other) for other in sorted_lcas)
            for code in sorted_lcas
        }

    packed = all_packed(keyword_lists.values()) if keyword_lists else None
    if packed is not None and sorted_lcas:
        return _build_rtfs_packed(sorted_lcas, flag_by_code, packed)

    assignment = assign_keyword_nodes(sorted_lcas, keyword_lists)
    fragments: List[Fragment] = []
    for root in sorted_lcas:
        keyword_nodes = assignment[root]
        if not keyword_nodes:
            continue
        fragments.append(
            build_fragment(tree, root, keyword_nodes, is_slca=flag_by_code[root])
        )
    return fragments


def _build_rtfs_packed(sorted_lcas: Sequence[DeweyCode],
                       flag_by_code: Mapping[DeweyCode, bool],
                       packed: Sequence) -> List[Fragment]:
    """``getRTF`` over flat columns: assignment and path union without objects.

    The merged document-order stream comes straight from the packed posting
    columns (deduplicated across lists by the k-way merge); each node is
    dispatched by one ``bisect_right`` over the roots' component arrays and a
    backward prefix-compare scan, and the fragment node set is the union of
    root-to-keyword-node prefix tuples.  :class:`DeweyCode` objects are
    materialized only for the fragments actually returned — dropped keyword
    nodes (outside every interesting LCA) never become objects at all.
    """
    # lint: allow(hot-loop-purity) unpacking the (small) root set once
    lca_arrays = [array("I", code.components) for code in sorted_lcas]
    assigned: List[List[Tuple[int, ...]]] = [[] for _ in sorted_lcas]
    for comps, _ in iter_matches(packed):
        position = bisect_right(lca_arrays, comps)
        for index in range(position - 1, -1, -1):
            candidate = lca_arrays[index]
            if len(candidate) <= len(comps) \
                    and comps[:len(candidate)] == candidate:
                # Among the ancestors of the node, deeper ones come later in
                # document order, so the first ancestor found scanning
                # backwards is the nearest enclosing one.
                assigned[index].append(tuple(comps))
                break
    from_tuple = DeweyCode._from_tuple
    fragments: List[Fragment] = []
    for root, keyword_tuples in zip(sorted_lcas, assigned):
        if not keyword_tuples:
            continue
        root_depth = len(root.components)  # lint: allow(hot-loop-purity) per-root, not per-node
        prefixes: set = set()
        add = prefixes.add
        for parts in keyword_tuples:
            for size in range(len(parts), root_depth - 1, -1):
                prefix = parts[:size]
                if prefix in prefixes:
                    break  # every shorter prefix is already present
                add(prefix)
        fragments.append(Fragment(
            root=root,
            # The merged stream is in document order, so per-root assignment
            # order already matches the object path's sorted keyword list.
            # lint: allow(hot-loop-purity) result boundary: only surviving
            keyword_nodes=tuple(from_tuple(parts)
                                for parts in keyword_tuples),
            # lint: allow(hot-loop-purity) fragments are ever boxed
            nodes=tuple(from_tuple(parts) for parts in sorted(prefixes)),
            is_slca=flag_by_code[root],
        ))
    return fragments


def _nearest_enclosing(sorted_lcas: Sequence[DeweyCode],
                       node: DeweyCode) -> DeweyCode:
    """The deepest LCA node that is an ancestor-or-self of ``node``.

    ``sorted_lcas`` is in document order, so every ancestor-or-self of
    ``node`` precedes (or equals) it; scanning backwards from the insertion
    point finds the nearest one — the "last RTF whose root is an ancestor of
    or the same as d" of Algorithm 1.
    """
    position = bisect_right(sorted_lcas, node)
    for index in range(position - 1, -1, -1):
        candidate = sorted_lcas[index]
        if candidate.is_ancestor_or_self(node):
            # Among the ancestors of ``node``, deeper ones come later in
            # document order, so the first ancestor found scanning backwards
            # is the nearest enclosing one.
            return candidate
    return None
