"""The *valid contributor* filtering mechanism (Definition 4) — the paper's core.

A child ``v`` of ``u`` (both in an RTF) is a **valid contributor** iff

1. ``v`` is the unique child of ``u`` carrying its label, or
2. among the same-label siblings ``v1..vm``:
   (a) no sibling's tree keyword set strictly covers ``v``'s
       (``¬∃ vi: TK_v ⊂ TK_vi``), and
   (b) among siblings with an *equal* keyword set, ``v``'s tree content is
       distinct (``TC_v ≠ TC_vi``).  Operationally (Algorithm 1, lines 21–25)
       the first sibling of each (keyword set, content feature) pair in
       document order is kept as the representative and later duplicates are
       discarded — this is how "one of them should be discarded" is realized.

Rule 1 fixes MaxMatch's false-positive problem, rule 2(a) keeps the good part
of the contributor filter and rule 2(b) fixes the redundancy problem.

Content equality uses the node record's content feature: the paper's
``(min, max)`` word pair (``cid_mode="minmax"``) or the exact tree content set
(``cid_mode="exact"``, ablation).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set

from ..xmltree import DeweyCode
from .fragments import PrunedFragment
from .node_record import ContentFeature, LabelGroup, NodeRecord, RecordTree


def is_valid_contributor(record: NodeRecord, group: Sequence[NodeRecord]) -> bool:
    """Definition 4 test for one node against its same-label siblings.

    ``group`` must be the children of the node's parent that share its label
    (including the node itself), in document order.  The duplicate-content
    rule 2(b) keeps the *first* sibling of each (key number, content feature)
    pair, so the test depends on document order for exact ties.
    """
    members = list(group)
    if len(members) <= 1:
        return True
    mask = record.keyword_mask
    for sibling in members:
        if sibling.dewey == record.dewey:
            continue
        other = sibling.keyword_mask
        # Rule 2(a): discarded when a same-label sibling strictly covers it.
        if mask != other and (mask & other) == mask:
            return False
        # Rule 2(b): equal keyword sets with identical content keep only the
        # earliest sibling in document order.
        if mask == other and sibling.content_feature == record.content_feature \
                and sibling.dewey < record.dewey:
            return False
    return True


def prune_with_valid_contributor(record_tree: RecordTree,
                                 algorithm: str = "validrtf") -> PrunedFragment:
    """The pruning step of ``pruneRTF`` (Algorithm 1, lines 16–26).

    Breadth-first traversal of the record tree; for every node, its children
    are examined per distinct label:

    * a label group with a single child keeps that child (rule 1, line 26),
    * otherwise each child is kept iff (i) its key number is not strictly
      covered by a larger key number in the group (rule 2(a)) and (ii) no
      earlier kept sibling with the same key number had the same content
      feature (rule 2(b)).

    Children that are discarded are not traversed further, so their whole
    subtrees leave the meaningful RTF.
    """
    fragment = record_tree.fragment
    kept: List[DeweyCode] = [fragment.root]
    queue = deque([record_tree.root])
    while queue:
        parent = queue.popleft()
        for group in parent.label_groups():
            for child in _select_valid_children(group):
                kept.append(child.dewey)
                queue.append(child)
    return PrunedFragment(fragment=fragment, kept_nodes=tuple(sorted(set(kept))),
                          algorithm=algorithm)


def _select_valid_children(group: LabelGroup) -> List[NodeRecord]:
    """The children of one label group that are valid contributors."""
    children = sorted(group.children, key=lambda record: record.dewey)
    if len(children) == 1:
        return children

    key_numbers = [child.key_number for child in children]
    survivors: List[NodeRecord] = []
    used_contents: Dict[int, Set[ContentFeature]] = {}
    for child in children:
        key = child.key_number
        if _is_covered(key, key_numbers):
            continue
        seen = used_contents.setdefault(key, set())
        feature = child.content_feature
        if feature in seen:
            continue
        seen.add(feature)
        survivors.append(child)
    return survivors


def _is_covered(key: int, key_numbers: Sequence[int]) -> bool:
    """True iff some other key number is a strict superset of ``key``."""
    for other in key_numbers:
        if other != key and (key & other) == key:
            return True
    return False


def valid_contributor_survivors(record_tree: RecordTree) -> List[DeweyCode]:
    """The kept node list only (convenience wrapper used in tests)."""
    return list(prune_with_valid_contributor(record_tree).kept_nodes)
