"""Ranking of meaningful RTFs — the paper's stated future-work extension.

Section 7 notes that "the ranking of the retrieved meaningful RTFs is still
needed" and leaves it as future work.  This module provides a simple,
explainable ranking so downstream users can order results:

* **specificity** — deeper fragment roots rank higher (a tighter context is
  usually more meaningful than the document root);
* **compactness** — smaller fragments rank higher;
* **coverage** — fragments whose kept keyword nodes match more distinct query
  keywords directly (rather than through shared nodes) rank higher.

The score is a weighted sum of the three components.  Every component is an
**absolute** quantity in ``[0, 1]``:

* ``specificity = root.level / bounds.max_depth``, normalized against
  :class:`ScoreBounds` — the deepest keyword-node level over the whole
  corpus (derived from the per-keyword impact metadata, see
  :func:`repro.index.source.keyword_impact`), not against the local result;
* ``compactness = 1 / size`` — no normalization needed;
* ``coverage = matched keywords / query size``.

Normalizing against shared bounds (rather than each result's own maxima, as
an earlier revision did) is what makes scores **comparable across
documents**: :func:`merge_ranked` interleaves per-document scores, which is
only meaningful when every document was scored on the same scale.  It is
also what enables threshold-style early termination — an upper bound on any
document's best score can be computed from impact metadata alone
(:func:`combine_score` with each component replaced by its upper bound),
without running the search pipeline on the document.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge as _heap_merge
from itertools import islice
from typing import Iterable, List, Mapping, Optional, Sequence

from ..text import ContentAnalyzer
from ..xmltree import XMLTree
from .fragments import PrunedFragment, SearchResult
from .query import Query


@dataclass(frozen=True)
class RankingWeights:
    """Weights of the three ranking components (normalized internally)."""

    specificity: float = 1.0
    compactness: float = 1.0
    coverage: float = 1.0

    def normalized(self) -> "RankingWeights":
        for name in ("specificity", "compactness", "coverage"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(
                    f"ranking weight {name!r} must be non-negative, got "
                    f"{value!r} (a negative weight would silently invert "
                    f"the component it scales)")
        total = self.specificity + self.compactness + self.coverage
        if total <= 0:
            raise ValueError("ranking weights must sum to a positive value")
        return RankingWeights(self.specificity / total, self.compactness / total,
                              self.coverage / total)


@dataclass(frozen=True)
class ScoreBounds:
    """Corpus-global normalization bounds shared by every scored fragment.

    ``max_depth`` is the deepest Dewey level (root = 0, floor 1) of any
    query-keyword node across the documents being ranked together — derived
    from impact metadata, **never** from the fragments themselves, so the
    exhaustive and early-terminated ranking paths normalize identically.
    """

    max_depth: int

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(
                f"ScoreBounds.max_depth must be >= 1, got {self.max_depth}")


def bounds_from_impacts(impacts: Iterable) -> ScoreBounds:
    """Build :class:`ScoreBounds` from per-keyword impact metadata.

    ``impacts`` iterates :class:`~repro.index.source.KeywordImpact` entries
    (any mix of documents and keywords); absent keywords contribute nothing.
    """
    deepest = max((impact.max_depth for impact in impacts if impact.count),
                  default=0)
    return ScoreBounds(max_depth=max(deepest, 1))


def combine_score(normalized: RankingWeights, specificity: float,
                  compactness: float, coverage: float) -> float:
    """The weighted score, in one canonical float-operation order.

    Real scores and threshold-algorithm upper bounds must flow through this
    same expression: IEEE-754 addition and multiplication by a non-negative
    weight are monotone, so a bound computed here from component-wise upper
    bounds is guaranteed ``>=`` any score computed here from the true
    component values.
    """
    return (normalized.specificity * specificity
            + normalized.compactness * compactness
            + normalized.coverage * coverage)


@dataclass(frozen=True)
class RankedFragment:
    """One fragment together with its score and component breakdown."""

    fragment: PrunedFragment
    score: float
    specificity: float
    compactness: float
    coverage: float


def rank_fragments(tree: XMLTree, query: Query,
                   fragments: Sequence[PrunedFragment],
                   weights: RankingWeights = RankingWeights(),
                   bounds: Optional[ScoreBounds] = None
                   ) -> List[RankedFragment]:
    """Rank fragments by the weighted specificity/compactness/coverage score.

    ``bounds`` carries the shared normalization scale; corpus callers derive
    it from impact metadata so scores are comparable across documents.  When
    omitted (standalone single-result use) the fragments' own deepest root
    stands in — scores are then only comparable within this one call.
    """
    if not fragments:
        return []
    normalized = weights.normalized()
    analyzer = ContentAnalyzer(tree)
    if bounds is None:
        bounds = ScoreBounds(max_depth=max(
            max(fragment.root.level for fragment in fragments), 1))

    ranked: List[RankedFragment] = []
    for fragment in fragments:
        specificity = fragment.root.level / bounds.max_depth
        compactness = 1.0 / max(fragment.size, 1)
        coverage = _coverage(tree, analyzer, query, fragment)
        score = combine_score(normalized, specificity, compactness, coverage)
        ranked.append(RankedFragment(fragment, score, specificity, compactness,
                                     coverage))
    ranked.sort(key=lambda item: (-item.score, item.fragment.root))
    return ranked


@dataclass(frozen=True)
class DocumentRankedFragment:
    """One ranked fragment tagged with the corpus document it came from."""

    doc_id: str
    ranked: RankedFragment

    @property
    def score(self) -> float:
        """The ranked fragment's score (passthrough)."""
        return self.ranked.score

    @property
    def fragment(self) -> PrunedFragment:
        """The underlying pruned fragment (passthrough)."""
        return self.ranked.fragment


def merge_ranked(per_document: Mapping[str, Sequence[RankedFragment]],
                 top_k: Optional[int] = None) -> List[DocumentRankedFragment]:
    """Corpus-level top-k merge of per-document rankings.

    Each document's list is already sorted best-first (the
    :func:`rank_fragments` order), so the corpus ranking is a k-way heap
    merge keyed on ``(-score, doc id, root)`` — deterministic across runs and
    backends, and with ``top_k`` only the first ``k`` entries are ever pulled
    off the merge.  The per-document scores must share one
    :class:`ScoreBounds` scale for this interleaving to be meaningful.
    """
    if top_k is not None and top_k < 0:
        raise ValueError(f"top_k must be >= 0, got {top_k}")

    def keyed(doc_id: str, ranked: Sequence[RankedFragment]):
        for entry in ranked:
            yield ((-entry.score, doc_id, entry.fragment.root),
                   DocumentRankedFragment(doc_id, entry))

    streams = [keyed(doc_id, ranked)
               for doc_id, ranked in sorted(per_document.items())]
    merged = _heap_merge(*streams, key=lambda pair: pair[0])
    if top_k is not None:
        merged = islice(merged, top_k)
    return [entry for _, entry in merged]


def rank_result(tree: XMLTree, result: SearchResult,
                weights: RankingWeights = RankingWeights(),
                bounds: Optional[ScoreBounds] = None) -> List[RankedFragment]:
    """Rank the fragments of a whole :class:`SearchResult`."""
    return rank_fragments(tree, result.query, result.fragments, weights,
                          bounds=bounds)


def _coverage(tree: XMLTree, analyzer: ContentAnalyzer, query: Query,
              fragment: PrunedFragment) -> float:
    matched = set()
    for dewey in fragment.kept_keyword_nodes():
        node = tree.node(dewey)
        matched |= analyzer.matched_keywords(node, query.keywords)
    return len(matched) / query.size if query.size else 0.0
