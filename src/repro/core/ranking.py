"""Ranking of meaningful RTFs — the paper's stated future-work extension.

Section 7 notes that "the ranking of the retrieved meaningful RTFs is still
needed" and leaves it as future work.  This module provides a simple,
explainable ranking so downstream users can order results:

* **specificity** — deeper fragment roots rank higher (a tighter context is
  usually more meaningful than the document root);
* **compactness** — fewer kept nodes per matched keyword rank higher;
* **coverage** — fragments whose kept keyword nodes match more distinct query
  keywords directly (rather than through shared nodes) rank higher.

The score is a weighted sum of the three normalized components; weights are
explicit so experiments can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..text import ContentAnalyzer
from ..xmltree import XMLTree
from .fragments import PrunedFragment, SearchResult
from .query import Query


@dataclass(frozen=True)
class RankingWeights:
    """Weights of the three ranking components (normalized internally)."""

    specificity: float = 1.0
    compactness: float = 1.0
    coverage: float = 1.0

    def normalized(self) -> "RankingWeights":
        total = self.specificity + self.compactness + self.coverage
        if total <= 0:
            raise ValueError("ranking weights must sum to a positive value")
        return RankingWeights(self.specificity / total, self.compactness / total,
                              self.coverage / total)


@dataclass(frozen=True)
class RankedFragment:
    """One fragment together with its score and component breakdown."""

    fragment: PrunedFragment
    score: float
    specificity: float
    compactness: float
    coverage: float


def rank_fragments(tree: XMLTree, query: Query,
                   fragments: Sequence[PrunedFragment],
                   weights: RankingWeights = RankingWeights()) -> List[RankedFragment]:
    """Rank fragments by the weighted specificity/compactness/coverage score."""
    if not fragments:
        return []
    normalized = weights.normalized()
    analyzer = ContentAnalyzer(tree)
    max_depth = max(fragment.root.level for fragment in fragments) or 1
    max_size = max(fragment.size for fragment in fragments) or 1

    ranked: List[RankedFragment] = []
    for fragment in fragments:
        specificity = fragment.root.level / max_depth if max_depth else 0.0
        compactness = 1.0 - (fragment.size - 1) / max_size
        coverage = _coverage(tree, analyzer, query, fragment)
        score = (normalized.specificity * specificity
                 + normalized.compactness * compactness
                 + normalized.coverage * coverage)
        ranked.append(RankedFragment(fragment, score, specificity, compactness,
                                     coverage))
    ranked.sort(key=lambda item: (-item.score, item.fragment.root))
    return ranked


def rank_result(tree: XMLTree, result: SearchResult,
                weights: RankingWeights = RankingWeights()) -> List[RankedFragment]:
    """Rank the fragments of a whole :class:`SearchResult`."""
    return rank_fragments(tree, result.query, result.fragments, weights)


def _coverage(tree: XMLTree, analyzer: ContentAnalyzer, query: Query,
              fragment: PrunedFragment) -> float:
    matched = set()
    for dewey in fragment.kept_keyword_nodes():
        node = tree.node(dewey)
        matched |= analyzer.matched_keywords(node, query.keywords)
    return len(matched) / query.size if query.size else 0.0
