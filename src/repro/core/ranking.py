"""Ranking of meaningful RTFs — the paper's stated future-work extension.

Section 7 notes that "the ranking of the retrieved meaningful RTFs is still
needed" and leaves it as future work.  This module provides a simple,
explainable ranking so downstream users can order results:

* **specificity** — deeper fragment roots rank higher (a tighter context is
  usually more meaningful than the document root);
* **compactness** — fewer kept nodes per matched keyword rank higher;
* **coverage** — fragments whose kept keyword nodes match more distinct query
  keywords directly (rather than through shared nodes) rank higher.

The score is a weighted sum of the three normalized components; weights are
explicit so experiments can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import merge as _heap_merge
from itertools import islice
from typing import List, Mapping, Optional, Sequence

from ..text import ContentAnalyzer
from ..xmltree import XMLTree
from .fragments import PrunedFragment, SearchResult
from .query import Query


@dataclass(frozen=True)
class RankingWeights:
    """Weights of the three ranking components (normalized internally)."""

    specificity: float = 1.0
    compactness: float = 1.0
    coverage: float = 1.0

    def normalized(self) -> "RankingWeights":
        total = self.specificity + self.compactness + self.coverage
        if total <= 0:
            raise ValueError("ranking weights must sum to a positive value")
        return RankingWeights(self.specificity / total, self.compactness / total,
                              self.coverage / total)


@dataclass(frozen=True)
class RankedFragment:
    """One fragment together with its score and component breakdown."""

    fragment: PrunedFragment
    score: float
    specificity: float
    compactness: float
    coverage: float


def rank_fragments(tree: XMLTree, query: Query,
                   fragments: Sequence[PrunedFragment],
                   weights: RankingWeights = RankingWeights()) -> List[RankedFragment]:
    """Rank fragments by the weighted specificity/compactness/coverage score."""
    if not fragments:
        return []
    normalized = weights.normalized()
    analyzer = ContentAnalyzer(tree)
    max_depth = max(fragment.root.level for fragment in fragments) or 1
    max_size = max(fragment.size for fragment in fragments) or 1

    ranked: List[RankedFragment] = []
    for fragment in fragments:
        specificity = fragment.root.level / max_depth if max_depth else 0.0
        compactness = 1.0 - (fragment.size - 1) / max_size
        coverage = _coverage(tree, analyzer, query, fragment)
        score = (normalized.specificity * specificity
                 + normalized.compactness * compactness
                 + normalized.coverage * coverage)
        ranked.append(RankedFragment(fragment, score, specificity, compactness,
                                     coverage))
    ranked.sort(key=lambda item: (-item.score, item.fragment.root))
    return ranked


@dataclass(frozen=True)
class DocumentRankedFragment:
    """One ranked fragment tagged with the corpus document it came from."""

    doc_id: str
    ranked: RankedFragment

    @property
    def score(self) -> float:
        """The ranked fragment's score (passthrough)."""
        return self.ranked.score

    @property
    def fragment(self) -> PrunedFragment:
        """The underlying pruned fragment (passthrough)."""
        return self.ranked.fragment


def merge_ranked(per_document: Mapping[str, Sequence[RankedFragment]],
                 top_k: Optional[int] = None) -> List[DocumentRankedFragment]:
    """Corpus-level top-k merge of per-document rankings.

    Each document's list is already sorted best-first (the
    :func:`rank_fragments` order), so the corpus ranking is a k-way heap
    merge keyed on ``(-score, doc id, root)`` — deterministic across runs and
    backends, and with ``top_k`` only the first ``k`` entries are ever pulled
    off the merge.
    """
    if top_k is not None and top_k < 0:
        raise ValueError(f"top_k must be >= 0, got {top_k}")

    def keyed(doc_id: str, ranked: Sequence[RankedFragment]):
        for entry in ranked:
            yield ((-entry.score, doc_id, entry.fragment.root),
                   DocumentRankedFragment(doc_id, entry))

    streams = [keyed(doc_id, ranked)
               for doc_id, ranked in sorted(per_document.items())]
    merged = _heap_merge(*streams, key=lambda pair: pair[0])
    if top_k is not None:
        merged = islice(merged, top_k)
    return [entry for _, entry in merged]


def rank_result(tree: XMLTree, result: SearchResult,
                weights: RankingWeights = RankingWeights()) -> List[RankedFragment]:
    """Rank the fragments of a whole :class:`SearchResult`."""
    return rank_fragments(tree, result.query, result.fragments, weights)


def _coverage(tree: XMLTree, analyzer: ContentAnalyzer, query: Query,
              fragment: PrunedFragment) -> float:
    matched = set()
    for dewey in fragment.kept_keyword_nodes():
        node = tree.node(dewey)
        matched |= analyzer.matched_keywords(node, query.keywords)
    return len(matched) / query.size if query.size else 0.0
