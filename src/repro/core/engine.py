"""The public search facade: one object, one call per query.

:class:`SearchEngine` owns the document, its inverted index and one instance
of each registered algorithm, so repeated queries share all per-document
work.  It is the API the examples, the CLI and the benchmark harness use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..index import (
    InvertedIndex,
    PostingSource,
    REPRESENTATIONS,
    keyword_impact,
)
from ..obs import MetricsRegistry, Trace
from ..obs import names as metric_names
from ..text import ContentAnalyzer
from ..xmltree import DeweyCode, XMLTree, parse_file, parse_string, render_nodes
from .cache import CacheStats, QueryResultCache
from .errors import SearchError, UnknownAlgorithmError
from .explain import (
    ComparisonExplanation,
    FragmentExplanation,
    classify_differences,
    explain_contributor,
    explain_valid_contributor,
)
from .fragments import SearchResult
from .maxmatch import MaxMatch, MaxMatchSLCA
from .metrics import EffectivenessReport, effectiveness
from .node_record import CID_MODES
from .pipeline import FragmentPipeline
from .query import Query, QueryLike
from .ranking import (
    RankedFragment,
    RankingWeights,
    ScoreBounds,
    bounds_from_impacts,
    rank_result,
)
from .validrtf import ValidRTF, ValidRTFSLCA

#: Names accepted by :meth:`SearchEngine.search`.
ALGORITHM_NAMES = ("validrtf", "maxmatch", "validrtf-slca", "maxmatch-slca")


@dataclass(frozen=True)
class ComparisonOutcome:
    """Result of running ValidRTF and MaxMatch side by side on one query."""

    validrtf: SearchResult
    maxmatch: SearchResult
    report: EffectivenessReport


class SearchEngine:
    """XML keyword search over one document with selectable algorithms.

    Parameters
    ----------
    tree:
        The document to search.  Optional when a ``source`` is given: the
        engine then runs every stage off the posting source's node lookups
        (disk-backed retrieval) and fragment rendering degrades gracefully
        to Dewey/label output.
    cid_mode:
        Content-feature mode forwarded to record-tree construction.
    cache_size:
        When positive, completed :class:`SearchResult` objects are kept in an
        LRU :class:`~repro.core.cache.QueryResultCache` keyed on
        ``(algorithm, normalized keywords, cid_mode, backend identity)`` and
        repeated queries are answered without re-running the pipeline.  ``0``
        (the default) disables caching, preserving the paper's measurement
        protocol where every repetition pays full cost.
    source:
        The :class:`~repro.index.source.PostingSource` serving posting lists.
        Defaults to an in-memory :class:`InvertedIndex` over ``tree``; pass a
        disk-backed or sharded source from :mod:`repro.storage` to search
        without (re)building the memory index.
    representation:
        ``"packed"`` (the default) serves posting lists as flat columnar
        :class:`~repro.index.packed.PackedDeweyList` arrays and runs the
        SLCA/RTF stages through their zero-object hot loops; ``"object"``
        keeps the classic boxed-:class:`DeweyCode` lists.  Results are
        byte-identical either way (enforced by the parity suites) — only the
        physical posting representation and therefore the speed differ.  When
        a prebuilt ``source`` is passed its own representation governs and
        must not contradict an explicit ``representation=``.
    metrics:
        An optional :class:`~repro.obs.MetricsRegistry`.  When given, every
        query reports per-stage timing histograms, candidate/fragment
        counters, posting-fetch accounting and cache hit/miss counters to
        it; when ``None`` (the default) instrumentation costs one branch.
    """

    def __init__(self, tree: Optional[XMLTree] = None, cid_mode: str = "minmax",
                 cache_size: int = 0, source: Optional[PostingSource] = None,
                 representation: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if tree is None and source is None:
            raise ValueError("SearchEngine needs a tree, a source=, or both")
        if representation is not None and representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}; "
                             f"expected one of {REPRESENTATIONS}")
        self.tree = tree
        self.cid_mode = cid_mode
        if source is None:
            source = InvertedIndex(tree,
                                   representation=representation or "packed")
        elif representation is not None and \
                getattr(source, "representation", representation) != representation:
            raise ValueError(
                f"source serves {source.representation!r} postings but "
                f"representation={representation!r} was requested")
        self.source: PostingSource = source
        self.representation: str = getattr(source, "representation", "object")
        # Legacy alias: before the PostingSource seam the engine always owned
        # an InvertedIndex under this name.
        self.index = self.source
        self._cache: Optional[QueryResultCache] = (
            QueryResultCache(cache_size) if cache_size else None)
        self.metrics: Optional[MetricsRegistry] = metrics
        self._build_algorithms()

    def _build_algorithms(self) -> None:
        tree, cid_mode = self.tree, self.cid_mode
        # One content analyzer shared by all four pipelines, so they share
        # one memoization cache instead of re-tokenizing per algorithm.
        analyzer = getattr(self.source, "analyzer", None)
        if analyzer is None and tree is not None:
            analyzer = ContentAnalyzer(tree)
        self._algorithms: Dict[str, FragmentPipeline] = {
            "validrtf": ValidRTF(tree, self.source, cid_mode=cid_mode,
                                 analyzer=analyzer),
            "maxmatch": MaxMatch(tree, self.source, cid_mode=cid_mode,
                                 analyzer=analyzer),
            "validrtf-slca": ValidRTFSLCA(tree, self.source, cid_mode=cid_mode,
                                          analyzer=analyzer),
            "maxmatch-slca": MaxMatchSLCA(tree, self.source, cid_mode=cid_mode,
                                          analyzer=analyzer),
        }
        for pipeline in self._algorithms.values():
            pipeline.metrics = self.metrics

    def set_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        """Attach (or detach) a metrics registry after construction.

        The engine pool builds worker engines lazily through zero-argument
        factories; this hook lets it hand each worker its own registry, to
        be merged at snapshot time.
        """
        self.metrics = metrics
        for pipeline in self._algorithms.values():
            pipeline.metrics = metrics

    @property
    def backend_id(self) -> str:
        """The serving source's identity (also part of every cache key)."""
        return self.source.source_id

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, document: str, **kwargs) -> "SearchEngine":
        """Build an engine from an XML string."""
        return cls(parse_string(document), **kwargs)

    @classmethod
    def from_file(cls, path, **kwargs) -> "SearchEngine":
        """Build an engine from an XML file."""
        return cls(parse_file(path), **kwargs)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def algorithm(self, name: str) -> FragmentPipeline:
        """The pipeline registered under ``name``."""
        try:
            return self._algorithms[name]
        except KeyError:
            raise UnknownAlgorithmError(
                f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}"
            ) from None

    def search(self, query: QueryLike, algorithm: str = "validrtf",
               trace: Optional[Trace] = None) -> SearchResult:
        """Run one query with the chosen algorithm (served from cache if on).

        ``trace`` attaches this query's stage spans (and a ``cache`` span
        when caching is enabled) under the trace's currently open span.
        """
        pipeline = self.algorithm(algorithm)
        if self._cache is None:
            return pipeline.search(query, trace=trace)
        parsed = Query.parse(query)
        key = QueryResultCache.key_for(algorithm, parsed, self.cid_mode,
                                       self.backend_id)
        cached = self._cache.get(key)
        hit = cached is not None
        if self.metrics is not None:
            self.metrics.counter(metric_names.CACHE_HITS if hit
                                 else metric_names.CACHE_MISSES).inc()
        if trace is not None:
            trace.current.note(cache="hit" if hit else "miss")
        if hit:
            return cached
        result = pipeline.search(parsed, trace=trace)
        self._cache.put(key, result)
        return result

    def search_traced(self, query: QueryLike, algorithm: str = "validrtf"
                      ) -> Tuple[SearchResult, Trace]:
        """Run one query under a fresh trace; returns ``(result, trace)``.

        The trace root covers the whole call, with one child span per
        pipeline stage — render it with :func:`repro.obs.render_trace`.
        """
        trace = Trace("search")
        trace.root.note(algorithm=algorithm, backend=self.backend_id)
        result = self.search(query, algorithm, trace=trace)
        trace.finish()
        return result, trace

    def search_many(self, queries: Sequence[QueryLike],
                    algorithm: str = "validrtf") -> List[SearchResult]:
        """Run a batch of queries, sharing posting-list retrieval.

        The postings for the *union* of all (uncached) queries' keywords are
        fetched from the posting source once and shared across the batch, so
        a keyword appearing in many queries pays its ``getKeywordNodes`` cost
        once instead of once per query — and a batching backend (the sqlite
        source's ``IN (...)`` fetch) serves the whole union in one round-trip.  When the
        result cache is enabled it is consulted per query first and updated
        with every freshly computed result.  Results come back in input
        order with the same answers (fragments, roots) as looping
        :meth:`search` over ``queries`` — though duplicate queries within a
        batch share one :class:`SearchResult` object, and the
        ``elapsed_seconds`` of cached or batch-computed results reflects the
        original computation, not this call.
        """
        pipeline = self.algorithm(algorithm)
        parsed_queries = [Query.parse(query) for query in queries]
        order = [QueryResultCache.key_for(algorithm, parsed, self.cid_mode,
                                          self.backend_id)
                 for parsed in parsed_queries]

        # Resolve each distinct query once: duplicates within the batch share
        # one computation (and one cache lookup at most).
        resolved: Dict[Tuple, SearchResult] = {}
        pending: Dict[Tuple, Query] = {}
        for cache_key, parsed in zip(order, parsed_queries):
            if cache_key in resolved or cache_key in pending:
                continue
            if self._cache is not None:
                cached = self._cache.get(cache_key)
                if cached is not None:
                    resolved[cache_key] = cached
                    continue
            pending[cache_key] = parsed

        if pending:
            union: List[str] = []
            seen: set = set()
            for parsed in pending.values():
                for keyword in parsed.keywords:
                    if keyword not in seen:
                        seen.add(keyword)
                        union.append(keyword)
            shared_lists = self.source.keyword_nodes(union)
            for cache_key, parsed in pending.items():
                result = pipeline.search_with_lists(parsed, shared_lists)
                if self._cache is not None:
                    self._cache.put(cache_key, result)
                resolved[cache_key] = result

        return [resolved[cache_key] for cache_key in order]

    # ------------------------------------------------------------------ #
    # Cache management
    # ------------------------------------------------------------------ #
    @property
    def cache_enabled(self) -> bool:
        """True when a result cache was configured at construction."""
        return self._cache is not None

    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters (all zero when caching is disabled)."""
        return self._cache.stats if self._cache is not None else CacheStats()

    def clear_cache(self) -> None:
        """Drop every cached result (no-op when caching is disabled)."""
        if self._cache is not None:
            self._cache.clear()

    def set_cid_mode(self, cid_mode: str) -> None:
        """Switch the content-feature mode, rebuilding the pipelines.

        Cached results are keyed by ``cid_mode``, so entries computed under
        the previous mode stay stored but can no longer be returned for the
        new mode — and become valid again if the mode is switched back.
        """
        if cid_mode not in CID_MODES:
            raise ValueError(
                f"unknown cid_mode {cid_mode!r}; expected one of {CID_MODES}")
        if cid_mode == self.cid_mode:
            return
        self.cid_mode = cid_mode
        self._build_algorithms()

    def compare(self, query: QueryLike) -> ComparisonOutcome:
        """Run ValidRTF and revised MaxMatch and compute the Figure 6 metrics."""
        validrtf_result = self.search(query, "validrtf")
        maxmatch_result = self.search(query, "maxmatch")
        report = effectiveness(maxmatch_result, validrtf_result)
        return ComparisonOutcome(validrtf=validrtf_result, maxmatch=maxmatch_result,
                                 report=report)

    def compare_traced(self, query: QueryLike
                       ) -> Tuple[ComparisonOutcome, Trace]:
        """Like :meth:`compare`, under one trace with a span per algorithm."""
        trace = Trace("compare")
        trace.root.note(backend=self.backend_id)
        with trace.span("validrtf"):
            validrtf_result = self.search(query, "validrtf", trace=trace)
        with trace.span("maxmatch"):
            maxmatch_result = self.search(query, "maxmatch", trace=trace)
        with trace.span("effectiveness"):
            report = effectiveness(maxmatch_result, validrtf_result)
        trace.finish()
        outcome = ComparisonOutcome(validrtf=validrtf_result,
                                    maxmatch=maxmatch_result, report=report)
        return outcome, trace

    def score_bounds(self, query: QueryLike) -> ScoreBounds:
        """Normalization bounds for one query, from impact metadata.

        Derived from the per-keyword impact metadata of this document's
        posting source — never from a result's fragments — so the same
        query always ranks on the same scale regardless of what matched.
        """
        parsed = Query.parse(query)
        return bounds_from_impacts(keyword_impact(self.source, keyword)
                                   for keyword in parsed.keywords)

    def rank(self, result: SearchResult,
             weights: RankingWeights = RankingWeights(),
             bounds: Optional[ScoreBounds] = None) -> List[RankedFragment]:
        """Rank a result's fragments (future-work extension, Section 7).

        ``bounds`` defaults to this document's own :meth:`score_bounds`;
        corpus callers pass the corpus-global bounds instead so per-document
        scores stay comparable across documents.
        """
        if self.tree is None:
            raise SearchError("ranking needs a resident tree; this engine is "
                              "running purely source-backed")
        if bounds is None:
            bounds = self.score_bounds(result.query)
        return rank_result(self.tree, result, weights, bounds=bounds)

    # ------------------------------------------------------------------ #
    # Explanations
    # ------------------------------------------------------------------ #
    def explain(self, query: QueryLike,
                algorithm: str = "validrtf") -> List[FragmentExplanation]:
        """Per-node keep/discard decisions of one algorithm on one query."""
        if algorithm not in ("validrtf", "maxmatch"):
            raise UnknownAlgorithmError(
                f"explanations are available for 'validrtf' and 'maxmatch', "
                f"not {algorithm!r}")
        pipeline = self.algorithm(algorithm)
        parsed = Query.parse(query)
        explanations: List[FragmentExplanation] = []
        for fragment in pipeline.raw_fragments(parsed):
            records = pipeline.record_tree(parsed, fragment)
            if algorithm == "validrtf":
                explanations.append(explain_valid_contributor(records, parsed))
            else:
                explanations.append(explain_contributor(records, parsed))
        return explanations

    def explain_comparison(self, query: QueryLike) -> ComparisonExplanation:
        """Classify every node ValidRTF and MaxMatch disagree on."""
        parsed = Query.parse(query)
        validrtf_result = self.search(parsed, "validrtf")
        maxmatch_result = self.search(parsed, "maxmatch")
        if self.tree is not None:
            labels = {node.dewey: node.label
                      for node in self.tree.iter_preorder()}
        else:
            involved = {dewey
                        for result in (validrtf_result, maxmatch_result)
                        for fragment in result.fragments
                        for dewey in fragment.fragment.nodes}
            labels = {dewey: self.source.node_label(dewey) or ""
                      for dewey in involved}
        return classify_differences(parsed, validrtf_result, maxmatch_result,
                                    labels)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by examples / CLI
    # ------------------------------------------------------------------ #
    def keyword_nodes(self, query: QueryLike) -> Dict[str, List[DeweyCode]]:
        """The ``D_i`` posting lists of a query."""
        parsed = Query.parse(query)
        return self.source.keyword_nodes(parsed.keywords)

    def lca_nodes(self, query: QueryLike, algorithm: str = "validrtf") -> List[DeweyCode]:
        """The interesting LCA roots the chosen algorithm would use."""
        return self.algorithm(algorithm).lca_nodes(query)

    def render_fragment(self, fragment, show_text: bool = True) -> str:
        """Human-readable rendering of one result fragment.

        With a resident tree this is the full XML-ish rendering.  On a purely
        source-backed engine it degrades gracefully to one ``dewey <label>``
        line per kept node (keyword nodes marked ``*``) — the fragment
        structure without the document text.
        """
        keyword_nodes = set(fragment.kept_keyword_nodes())
        if self.tree is not None:
            return render_nodes(
                self.tree,
                fragment.kept_nodes,
                show_text=show_text,
                highlight=lambda node: node.dewey in keyword_nodes,
            )
        lines = []
        root_depth = len(fragment.root)
        for dewey in fragment.kept_nodes:
            indent = "  " * (len(dewey) - root_depth)
            label = self.source.node_label(dewey) or "?"
            marker = " *" if dewey in keyword_nodes else ""
            lines.append(f"{indent}{dewey} <{label}>{marker}")
        return "\n".join(lines)

    def render_result(self, result: SearchResult, show_text: bool = True) -> str:
        """Render every fragment of a result, separated by blank lines."""
        blocks = []
        for position, fragment in enumerate(result.fragments, start=1):
            kind = "SLCA" if fragment.is_slca else "LCA"
            header = (f"[{position}] root {fragment.root} ({kind}), "
                      f"{fragment.size} nodes")
            blocks.append(header + "\n" + self.render_fragment(fragment, show_text))
        return "\n\n".join(blocks) if blocks else "(no results)"
