"""The public search facade: one object, one call per query.

:class:`SearchEngine` owns the document, its inverted index and one instance
of each registered algorithm, so repeated queries share all per-document
work.  It is the API the examples, the CLI and the benchmark harness use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..index import InvertedIndex
from ..xmltree import DeweyCode, XMLTree, parse_file, parse_string, render_nodes
from .errors import UnknownAlgorithmError
from .explain import (
    ComparisonExplanation,
    FragmentExplanation,
    classify_differences,
    explain_contributor,
    explain_valid_contributor,
)
from .fragments import SearchResult
from .maxmatch import MaxMatch, MaxMatchSLCA
from .metrics import EffectivenessReport, effectiveness
from .pipeline import FragmentPipeline
from .query import Query, QueryLike
from .ranking import RankedFragment, RankingWeights, rank_result
from .validrtf import ValidRTF, ValidRTFSLCA

#: Names accepted by :meth:`SearchEngine.search`.
ALGORITHM_NAMES = ("validrtf", "maxmatch", "validrtf-slca", "maxmatch-slca")


@dataclass(frozen=True)
class ComparisonOutcome:
    """Result of running ValidRTF and MaxMatch side by side on one query."""

    validrtf: SearchResult
    maxmatch: SearchResult
    report: EffectivenessReport


class SearchEngine:
    """XML keyword search over one document with selectable algorithms."""

    def __init__(self, tree: XMLTree, cid_mode: str = "minmax"):
        self.tree = tree
        self.cid_mode = cid_mode
        self.index = InvertedIndex(tree)
        self._algorithms: Dict[str, FragmentPipeline] = {
            "validrtf": ValidRTF(tree, self.index, cid_mode=cid_mode),
            "maxmatch": MaxMatch(tree, self.index, cid_mode=cid_mode),
            "validrtf-slca": ValidRTFSLCA(tree, self.index, cid_mode=cid_mode),
            "maxmatch-slca": MaxMatchSLCA(tree, self.index, cid_mode=cid_mode),
        }

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, document: str, **kwargs) -> "SearchEngine":
        """Build an engine from an XML string."""
        return cls(parse_string(document), **kwargs)

    @classmethod
    def from_file(cls, path, **kwargs) -> "SearchEngine":
        """Build an engine from an XML file."""
        return cls(parse_file(path), **kwargs)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def algorithm(self, name: str) -> FragmentPipeline:
        """The pipeline registered under ``name``."""
        try:
            return self._algorithms[name]
        except KeyError:
            raise UnknownAlgorithmError(
                f"unknown algorithm {name!r}; expected one of {ALGORITHM_NAMES}"
            ) from None

    def search(self, query: QueryLike, algorithm: str = "validrtf") -> SearchResult:
        """Run one query with the chosen algorithm."""
        return self.algorithm(algorithm).search(query)

    def compare(self, query: QueryLike) -> ComparisonOutcome:
        """Run ValidRTF and revised MaxMatch and compute the Figure 6 metrics."""
        validrtf_result = self.search(query, "validrtf")
        maxmatch_result = self.search(query, "maxmatch")
        report = effectiveness(maxmatch_result, validrtf_result)
        return ComparisonOutcome(validrtf=validrtf_result, maxmatch=maxmatch_result,
                                 report=report)

    def rank(self, result: SearchResult,
             weights: RankingWeights = RankingWeights()) -> List[RankedFragment]:
        """Rank a result's fragments (future-work extension, Section 7)."""
        return rank_result(self.tree, result, weights)

    # ------------------------------------------------------------------ #
    # Explanations
    # ------------------------------------------------------------------ #
    def explain(self, query: QueryLike,
                algorithm: str = "validrtf") -> List[FragmentExplanation]:
        """Per-node keep/discard decisions of one algorithm on one query."""
        if algorithm not in ("validrtf", "maxmatch"):
            raise UnknownAlgorithmError(
                f"explanations are available for 'validrtf' and 'maxmatch', "
                f"not {algorithm!r}")
        pipeline = self.algorithm(algorithm)
        parsed = Query.parse(query)
        explanations: List[FragmentExplanation] = []
        for fragment in pipeline.raw_fragments(parsed):
            records = pipeline.record_tree(parsed, fragment)
            if algorithm == "validrtf":
                explanations.append(explain_valid_contributor(records, parsed))
            else:
                explanations.append(explain_contributor(records, parsed))
        return explanations

    def explain_comparison(self, query: QueryLike) -> ComparisonExplanation:
        """Classify every node ValidRTF and MaxMatch disagree on."""
        parsed = Query.parse(query)
        validrtf_result = self.search(parsed, "validrtf")
        maxmatch_result = self.search(parsed, "maxmatch")
        labels = {node.dewey: node.label for node in self.tree.iter_preorder()}
        return classify_differences(parsed, validrtf_result, maxmatch_result,
                                    labels)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by examples / CLI
    # ------------------------------------------------------------------ #
    def keyword_nodes(self, query: QueryLike) -> Dict[str, List[DeweyCode]]:
        """The ``D_i`` posting lists of a query."""
        parsed = Query.parse(query)
        return self.index.keyword_nodes(parsed.keywords)

    def lca_nodes(self, query: QueryLike, algorithm: str = "validrtf") -> List[DeweyCode]:
        """The interesting LCA roots the chosen algorithm would use."""
        return self.algorithm(algorithm).lca_nodes(query)

    def render_fragment(self, fragment, show_text: bool = True) -> str:
        """Human-readable rendering of one result fragment."""
        keyword_nodes = set(fragment.kept_keyword_nodes())
        return render_nodes(
            self.tree,
            fragment.kept_nodes,
            show_text=show_text,
            highlight=lambda node: node.dewey in keyword_nodes,
        )

    def render_result(self, result: SearchResult, show_text: bool = True) -> str:
        """Render every fragment of a result, separated by blank lines."""
        blocks = []
        for position, fragment in enumerate(result.fragments, start=1):
            kind = "SLCA" if fragment.is_slca else "LCA"
            header = (f"[{position}] root {fragment.root} ({kind}), "
                      f"{fragment.size} nodes")
            blocks.append(header + "\n" + self.render_fragment(fragment, show_text))
        return "\n\n".join(blocks) if blocks else "(no results)"
