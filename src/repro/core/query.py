"""Keyword query representation.

A query ``Q = {w1, ..., wk}`` is an ordered list of normalized keywords.  The
order matters operationally (keyword ``i`` owns bit ``i`` of every keyword
bitmask / "key number" in the node records) even though the result semantics
is order-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple, Union

from ..text import DEFAULT_TOKENIZER, Tokenizer
from .errors import EmptyQueryError

QueryLike = Union["Query", str, Sequence[str]]


@dataclass(frozen=True)
class Query:
    """A normalized keyword query.

    Use :meth:`Query.parse` to build one from user input; the constructor
    expects already-normalized, duplicate-free keywords.
    """

    keywords: Tuple[str, ...]

    def __post_init__(self):
        if not self.keywords:
            raise EmptyQueryError("a query needs at least one keyword")
        if len(set(self.keywords)) != len(self.keywords):
            raise EmptyQueryError(f"duplicate keywords in query {self.keywords}")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, raw: QueryLike, tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> "Query":
        """Build a query from a string ("xml keyword search") or keyword list."""
        if isinstance(raw, Query):
            return raw
        if isinstance(raw, str):
            keywords = tokenizer.normalize_query(raw.split())
        else:
            keywords = tokenizer.normalize_query(raw)
        if not keywords:
            raise EmptyQueryError(f"query {raw!r} normalizes to zero keywords")
        return cls(tuple(keywords))

    def extended(self, keyword: str,
                 tokenizer: Tokenizer = DEFAULT_TOKENIZER) -> "Query":
        """A new query with one more keyword appended (query-monotonicity tests)."""
        normalized = tokenizer.normalize_keyword(keyword)
        if normalized in self.keywords:
            return self
        return Query(self.keywords + (normalized,))

    # ------------------------------------------------------------------ #
    # Bitmask helpers (the "key number" machinery of Section 4.1)
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of keywords ``k``."""
        return len(self.keywords)

    @property
    def full_mask(self) -> int:
        """Bitmask with one bit per keyword, all set."""
        return (1 << len(self.keywords)) - 1

    def bit_of(self, keyword: str) -> int:
        """The bit assigned to ``keyword``; raises ``KeyError`` if absent."""
        return 1 << self.keywords.index(keyword)

    def bit_index(self) -> Dict[str, int]:
        """Mapping keyword -> bit position."""
        return {keyword: index for index, keyword in enumerate(self.keywords)}

    def mask_of(self, keywords: Iterable[str]) -> int:
        """Bitmask ("key number") of a keyword subset; unknown words ignored."""
        mask = 0
        for keyword in keywords:
            if keyword in self.keywords:
                mask |= 1 << self.keywords.index(keyword)
        return mask

    def keywords_of(self, mask: int) -> Set[str]:
        """The keyword set encoded by a bitmask."""
        return {keyword for index, keyword in enumerate(self.keywords)
                if mask & (1 << index)}

    def covers(self, mask: int) -> bool:
        """True iff the mask has every keyword bit set."""
        return mask == self.full_mask

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[str]:
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self.keywords

    def __str__(self) -> str:
        return " ".join(self.keywords)


def as_query(raw: QueryLike) -> Query:
    """Coerce strings / keyword lists / queries into a :class:`Query`."""
    return Query.parse(raw)


def subset_masks(mask: int) -> List[int]:
    """All non-empty submasks of ``mask`` (used by the ECTQ specification)."""
    submasks: List[int] = []
    sub = mask
    while sub:
        submasks.append(sub)
        sub = (sub - 1) & mask
    return submasks
