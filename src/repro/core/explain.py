"""Explanations of pruning decisions.

The paper's discussion revolves around *why* a node is kept or discarded:
MaxMatch discards a node when a sibling's keyword set strictly covers its own
(sometimes wrongly — the false-positive problem) and keeps same-label siblings
with identical matched content (the redundancy problem); ValidRTF keeps
uniquely-labelled children and deduplicates same-content siblings.

This module makes those decisions inspectable: for one RTF it produces a
per-node decision record (kept / discarded, under which rule, because of which
sibling), and for a ValidRTF-vs-MaxMatch pair it classifies every differing
node as a *false-positive fix* (kept by ValidRTF, dropped by MaxMatch) or a
*redundancy fix* (dropped by ValidRTF, kept by MaxMatch).  The CLI ``explain``
command and the examples build on it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..xmltree import DeweyCode
from .contributor import is_contributor
from .fragments import SearchResult
from .node_record import NodeRecord, RecordTree
from .query import Query


class Decision(str, Enum):
    """Why a node was kept in, or removed from, a meaningful RTF."""

    ROOT = "root"
    UNIQUE_LABEL = "kept: unique label among siblings (rule 1)"
    NOT_COVERED = "kept: keyword set not covered by a same-label sibling (rule 2a)"
    DISTINCT_CONTENT = "kept: same keyword set but distinct content (rule 2b)"
    CONTRIBUTOR = "kept: no sibling strictly covers its keyword set (contributor)"
    COVERED = "discarded: keyword set strictly covered by a sibling"
    DUPLICATE_CONTENT = "discarded: duplicates an earlier sibling's matched content"
    ANCESTOR_DISCARDED = "discarded: an ancestor was discarded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DifferenceKind(str, Enum):
    """How ValidRTF's meaningful RTF differs from MaxMatch's on one node."""

    FALSE_POSITIVE_FIX = "false-positive fix (ValidRTF keeps, MaxMatch drops)"
    REDUNDANCY_FIX = "redundancy fix (ValidRTF drops, MaxMatch keeps)"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class NodeDecision:
    """The pruning decision for one fragment node."""

    dewey: DeweyCode
    label: str
    kept: bool
    decision: Decision
    keywords: Tuple[str, ...] = ()
    because_of: Optional[DeweyCode] = None


@dataclass(frozen=True)
class FragmentExplanation:
    """All decisions of one fragment under one filtering mechanism."""

    root: DeweyCode
    algorithm: str
    decisions: Tuple[NodeDecision, ...]

    def kept(self) -> List[NodeDecision]:
        return [decision for decision in self.decisions if decision.kept]

    def discarded(self) -> List[NodeDecision]:
        return [decision for decision in self.decisions if not decision.kept]

    def decision_for(self, dewey: DeweyCode) -> NodeDecision:
        for decision in self.decisions:
            if decision.dewey == dewey:
                return decision
        raise KeyError(f"no decision recorded for {dewey}")

    def summary(self) -> Dict[str, int]:
        """Histogram of decision kinds."""
        histogram: Dict[str, int] = {}
        for decision in self.decisions:
            key = decision.decision.name
            histogram[key] = histogram.get(key, 0) + 1
        return histogram


@dataclass(frozen=True)
class NodeDifference:
    """One node on which ValidRTF and MaxMatch disagree."""

    dewey: DeweyCode
    label: str
    kind: DifferenceKind
    keywords: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ComparisonExplanation:
    """Classified differences between the two algorithms on one query."""

    query: str
    differences: Tuple[NodeDifference, ...]

    def false_positive_fixes(self) -> List[NodeDifference]:
        return [difference for difference in self.differences
                if difference.kind is DifferenceKind.FALSE_POSITIVE_FIX]

    def redundancy_fixes(self) -> List[NodeDifference]:
        return [difference for difference in self.differences
                if difference.kind is DifferenceKind.REDUNDANCY_FIX]

    def summary(self) -> Dict[str, int]:
        return {
            "false_positive_fixes": len(self.false_positive_fixes()),
            "redundancy_fixes": len(self.redundancy_fixes()),
        }


# ---------------------------------------------------------------------- #
# Per-fragment explanations
# ---------------------------------------------------------------------- #
def explain_valid_contributor(record_tree: RecordTree,
                              query: Query) -> FragmentExplanation:
    """Per-node decisions of the valid-contributor filter (Definition 4)."""
    decisions: Dict[DeweyCode, NodeDecision] = {}
    root = record_tree.root
    decisions[root.dewey] = NodeDecision(
        dewey=root.dewey, label=root.label, kept=True, decision=Decision.ROOT,
        keywords=_keywords(root, query))

    queue = deque([root])
    while queue:
        parent = queue.popleft()
        parent_kept = decisions[parent.dewey].kept
        for group in parent.label_groups():
            children = sorted(group.children, key=lambda record: record.dewey)
            key_numbers = [child.key_number for child in children]
            seen_contents: Dict[int, Dict[object, DeweyCode]] = {}
            for child in children:
                if not parent_kept:
                    decision = NodeDecision(
                        dewey=child.dewey, label=child.label, kept=False,
                        decision=Decision.ANCESTOR_DISCARDED,
                        keywords=_keywords(child, query),
                        because_of=parent.dewey)
                elif len(children) == 1:
                    decision = NodeDecision(
                        dewey=child.dewey, label=child.label, kept=True,
                        decision=Decision.UNIQUE_LABEL,
                        keywords=_keywords(child, query))
                else:
                    decision = _valid_contributor_decision(
                        child, children, key_numbers, seen_contents, query)
                decisions[child.dewey] = decision
                queue.append(child)

    ordered = tuple(decisions[dewey] for dewey in sorted(decisions))
    return FragmentExplanation(root=record_tree.fragment.root,
                               algorithm="validrtf", decisions=ordered)


def explain_contributor(record_tree: RecordTree,
                        query: Query) -> FragmentExplanation:
    """Per-node decisions of MaxMatch's contributor filter."""
    decisions: Dict[DeweyCode, NodeDecision] = {}
    root = record_tree.root
    decisions[root.dewey] = NodeDecision(
        dewey=root.dewey, label=root.label, kept=True, decision=Decision.ROOT,
        keywords=_keywords(root, query))

    queue = deque([root])
    while queue:
        parent = queue.popleft()
        parent_kept = decisions[parent.dewey].kept
        children = parent.children
        for child in children:
            if not parent_kept:
                decision = NodeDecision(
                    dewey=child.dewey, label=child.label, kept=False,
                    decision=Decision.ANCESTOR_DISCARDED,
                    keywords=_keywords(child, query), because_of=parent.dewey)
            elif is_contributor(child, children):
                decision = NodeDecision(
                    dewey=child.dewey, label=child.label, kept=True,
                    decision=Decision.CONTRIBUTOR,
                    keywords=_keywords(child, query))
            else:
                coverer = _covering_sibling(child, children)
                decision = NodeDecision(
                    dewey=child.dewey, label=child.label, kept=False,
                    decision=Decision.COVERED,
                    keywords=_keywords(child, query), because_of=coverer)
            decisions[child.dewey] = decision
            queue.append(child)

    ordered = tuple(decisions[dewey] for dewey in sorted(decisions))
    return FragmentExplanation(root=record_tree.fragment.root,
                               algorithm="maxmatch", decisions=ordered)


# ---------------------------------------------------------------------- #
# ValidRTF vs MaxMatch differences
# ---------------------------------------------------------------------- #
def classify_differences(query: Query, validrtf_result: SearchResult,
                         maxmatch_result: SearchResult,
                         labels: Dict[DeweyCode, str]) -> ComparisonExplanation:
    """Classify every node the two algorithms disagree on.

    ``labels`` maps Dewey codes to element labels (callers usually pass
    ``{node.dewey: node.label for node in tree.iter_preorder()}`` or derive it
    lazily via :func:`explain_comparison`).
    """
    differences: List[NodeDifference] = []
    maxmatch_by_root = maxmatch_result.by_root()
    for fragment in validrtf_result:
        other = maxmatch_by_root.get(fragment.root)
        if other is None:
            continue
        v_nodes = fragment.kept_set()
        m_nodes = other.kept_set()
        for dewey in sorted(v_nodes - m_nodes):
            differences.append(NodeDifference(
                dewey=dewey, label=labels.get(dewey, ""),
                kind=DifferenceKind.FALSE_POSITIVE_FIX))
        for dewey in sorted(m_nodes - v_nodes):
            differences.append(NodeDifference(
                dewey=dewey, label=labels.get(dewey, ""),
                kind=DifferenceKind.REDUNDANCY_FIX))
    return ComparisonExplanation(query=str(query), differences=tuple(differences))


def render_explanation(explanation: FragmentExplanation,
                       show_kept: bool = True) -> str:
    """Human-readable rendering of one fragment's decisions."""
    lines = [f"fragment rooted at {explanation.root} ({explanation.algorithm}):"]
    for decision in explanation.decisions:
        if decision.kept and not show_kept:
            continue
        keywords = f" keywords={sorted(decision.keywords)}" if decision.keywords else ""
        blame = f" (because of {decision.because_of})" if decision.because_of else ""
        lines.append(f"  {decision.dewey} <{decision.label}> — "
                     f"{decision.decision.value}{keywords}{blame}")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Internal helpers
# ---------------------------------------------------------------------- #
def _keywords(record: NodeRecord, query: Query) -> Tuple[str, ...]:
    return tuple(sorted(query.keywords_of(record.keyword_mask)))


def _valid_contributor_decision(child: NodeRecord,
                                children: Sequence[NodeRecord],
                                key_numbers: Sequence[int],
                                seen_contents: Dict[int, Dict[object, DeweyCode]],
                                query: Query) -> NodeDecision:
    key = child.key_number
    coverer = _strictly_covering_same_label_sibling(child, children)
    if coverer is not None:
        return NodeDecision(dewey=child.dewey, label=child.label, kept=False,
                            decision=Decision.COVERED,
                            keywords=_keywords(child, query),
                            because_of=coverer)
    contents = seen_contents.setdefault(key, {})
    feature = child.content_feature
    if feature in contents:
        return NodeDecision(dewey=child.dewey, label=child.label, kept=False,
                            decision=Decision.DUPLICATE_CONTENT,
                            keywords=_keywords(child, query),
                            because_of=contents[feature])
    contents[feature] = child.dewey
    duplicate_key = any(other.key_number == key and other.dewey != child.dewey
                        for other in children)
    decision = Decision.DISTINCT_CONTENT if duplicate_key else Decision.NOT_COVERED
    return NodeDecision(dewey=child.dewey, label=child.label, kept=True,
                        decision=decision, keywords=_keywords(child, query))


def _strictly_covering_same_label_sibling(
        child: NodeRecord, children: Sequence[NodeRecord]) -> Optional[DeweyCode]:
    for other in children:
        if other.dewey == child.dewey:
            continue
        if other.key_number != child.key_number and \
                (child.key_number & other.key_number) == child.key_number:
            return other.dewey
    return None


def _covering_sibling(child: NodeRecord,
                      children: Sequence[NodeRecord]) -> Optional[DeweyCode]:
    for other in children:
        if other.dewey == child.dewey:
            continue
        if other.keyword_mask != child.keyword_mask and \
                (child.keyword_mask & other.keyword_mask) == child.keyword_mask:
            return other.dewey
    return None


# ---------------------------------------------------------------------- #
# Score explanations (Lucene-``explain``-style component breakdown)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScoreComponent:
    """One additive term of a ranked fragment's score.

    ``contribution`` is exactly ``weight * value`` — the float the scoring
    expression added for this component.
    """

    name: str
    value: float
    weight: float
    contribution: float


@dataclass(frozen=True)
class ScoreExplanation:
    """A served score reconstructed from its components.

    The components appear in scoring order (specificity, compactness,
    coverage); summing their contributions left to right reproduces
    ``score`` bit for bit, because :func:`explain_score` computes them with
    the same expression :func:`~repro.core.ranking.combine_score` uses.
    """

    score: float
    components: Tuple[ScoreComponent, ...]


def explain_score(ranked: "RankedFragment",
                  weights: Optional["RankingWeights"] = None
                  ) -> ScoreExplanation:
    """Break one ranked fragment's score into verifiable components."""
    from .ranking import RankingWeights
    normalized = (weights or RankingWeights()).normalized()
    components = tuple(
        ScoreComponent(name=name, value=value, weight=weight,
                       contribution=weight * value)
        for name, value, weight in (
            ("specificity", ranked.specificity, normalized.specificity),
            ("compactness", ranked.compactness, normalized.compactness),
            ("coverage", ranked.coverage, normalized.coverage),
        ))
    return ScoreExplanation(score=ranked.score, components=components)


def render_score_explanation(explanation: ScoreExplanation,
                             indent: str = "") -> str:
    """Human-readable rendering of one score breakdown."""
    lines = [f"{indent}score = {explanation.score:.6f}"]
    for component in explanation.components:
        lines.append(f"{indent}  {component.contribution:.6f} = "
                     f"{component.weight:.4f} (weight) x "
                     f"{component.value:.6f} ({component.name})")
    return "\n".join(lines)
