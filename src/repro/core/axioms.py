"""Executable checkers for the four axiomatic XKS properties.

Liu & Chen (VLDB 2008) deduce four properties an XKS technique should satisfy
and the paper argues in Section 4.3-(2) that ValidRTF satisfies them:

* **data monotonicity** — inserting a node never decreases the number of query
  results;
* **query monotonicity** — adding a keyword to the query never increases the
  number of query results;
* **data consistency** — after an insertion, every *additional* result subtree
  contains the newly inserted node;
* **query consistency** — after adding a keyword, every *additional* result
  subtree contains at least one match to the new keyword.

The checkers run an algorithm factory before/after a mutation and report any
violation; they are used both in the unit/property tests and in the
``benchmarks/test_axiom_checks.py`` harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..text import DEFAULT_TOKENIZER
from ..xmltree import DeweyCode, SubtreeSpec, XMLTree
from .fragments import SearchResult
from .query import Query, QueryLike

#: An algorithm factory: given a (possibly mutated) tree, return a callable
#: that evaluates a query on it.  A fresh factory call per tree keeps indexes
#: consistent with the mutated data.
AlgorithmFactory = Callable[[XMLTree], Callable[[QueryLike], SearchResult]]


@dataclass(frozen=True)
class AxiomCheck:
    """Outcome of one axiomatic property check."""

    property_name: str
    satisfied: bool
    detail: str = ""
    before_count: int = 0
    after_count: int = 0


@dataclass(frozen=True)
class AxiomReport:
    """Outcome of all four checks for one scenario."""

    checks: Tuple[AxiomCheck, ...]

    @property
    def all_satisfied(self) -> bool:
        return all(check.satisfied for check in self.checks)

    def failed(self) -> List[AxiomCheck]:
        return [check for check in self.checks if not check.satisfied]


# ---------------------------------------------------------------------- #
# Individual properties
# ---------------------------------------------------------------------- #
def check_data_monotonicity(factory: AlgorithmFactory, tree: XMLTree,
                            query: QueryLike, parent: DeweyCode,
                            insertion: SubtreeSpec) -> AxiomCheck:
    """Number of results must not decrease after inserting ``insertion``."""
    before = factory(tree)(query)
    mutated = tree.with_inserted_subtree(parent, insertion)
    after = factory(mutated)(query)
    satisfied = after.count >= before.count
    return AxiomCheck(
        property_name="data monotonicity",
        satisfied=satisfied,
        detail="" if satisfied else
        f"results dropped from {before.count} to {after.count} after insertion",
        before_count=before.count,
        after_count=after.count,
    )


def check_query_monotonicity(factory: AlgorithmFactory, tree: XMLTree,
                             query: QueryLike, extra_keyword: str) -> AxiomCheck:
    """Number of results must not increase after adding a keyword."""
    parsed = Query.parse(query)
    extended = parsed.extended(extra_keyword)
    algorithm = factory(tree)
    before = algorithm(parsed)
    after = algorithm(extended)
    satisfied = after.count <= before.count
    return AxiomCheck(
        property_name="query monotonicity",
        satisfied=satisfied,
        detail="" if satisfied else
        f"results grew from {before.count} to {after.count} after adding "
        f"{extra_keyword!r}",
        before_count=before.count,
        after_count=after.count,
    )


def check_data_consistency(factory: AlgorithmFactory, tree: XMLTree,
                           query: QueryLike, parent: DeweyCode,
                           insertion: SubtreeSpec) -> AxiomCheck:
    """Every additional result subtree must contain the inserted node."""
    before = factory(tree)(query)
    mutated = tree.with_inserted_subtree(parent, insertion)
    after = factory(mutated)(query)

    inserted_root = DeweyCode.coerce(parent).child(tree.node(parent).child_count())
    before_roots = set(before.roots())
    offending: List[DeweyCode] = []
    for fragment in after.fragments:
        if fragment.root in before_roots:
            continue
        contains_new = any(
            inserted_root.is_ancestor_or_self(node) for node in fragment.kept_nodes
        )
        if not contains_new:
            offending.append(fragment.root)
    satisfied = not offending
    return AxiomCheck(
        property_name="data consistency",
        satisfied=satisfied,
        detail="" if satisfied else
        f"additional fragments {offending} do not contain the inserted subtree "
        f"{inserted_root}",
        before_count=before.count,
        after_count=after.count,
    )


def check_query_consistency(factory: AlgorithmFactory, tree: XMLTree,
                            query: QueryLike, extra_keyword: str) -> AxiomCheck:
    """Every additional result subtree must match the new keyword."""
    parsed = Query.parse(query)
    extended = parsed.extended(extra_keyword)
    algorithm = factory(tree)
    before = algorithm(parsed)
    after = algorithm(extended)

    normalized = DEFAULT_TOKENIZER.normalize_keyword(extra_keyword)
    before_roots = set(before.roots())
    offending: List[DeweyCode] = []
    for fragment in after.fragments:
        if fragment.root in before_roots:
            continue
        if not _fragment_matches_keyword(tree, fragment.kept_nodes, normalized):
            offending.append(fragment.root)
    satisfied = not offending
    return AxiomCheck(
        property_name="query consistency",
        satisfied=satisfied,
        detail="" if satisfied else
        f"additional fragments {offending} contain no match for {normalized!r}",
        before_count=before.count,
        after_count=after.count,
    )


def _fragment_matches_keyword(tree: XMLTree, nodes: Sequence[DeweyCode],
                              keyword: str) -> bool:
    for dewey in nodes:
        node = tree.node(dewey)
        words = DEFAULT_TOKENIZER.word_set(node.raw_strings())
        if keyword in words:
            return True
    return False


# ---------------------------------------------------------------------- #
# Combined scenario
# ---------------------------------------------------------------------- #
def check_all_axioms(factory: AlgorithmFactory, tree: XMLTree, query: QueryLike,
                     parent: DeweyCode, insertion: SubtreeSpec,
                     extra_keyword: str) -> AxiomReport:
    """Run the four checks for one (tree, query, insertion, keyword) scenario."""
    checks = (
        check_data_monotonicity(factory, tree, query, parent, insertion),
        check_query_monotonicity(factory, tree, query, extra_keyword),
        check_data_consistency(factory, tree, query, parent, insertion),
        check_query_consistency(factory, tree, query, extra_keyword),
    )
    return AxiomReport(checks=checks)
