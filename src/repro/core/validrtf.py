"""ValidRTF — the paper's algorithm (Algorithm 1).

Pipeline: ``getKeywordNodes`` → ``getLCA`` (Indexed Stack / ELCA semantics) →
``getRTF`` → ``pruneRTF`` where the pruning step keeps only the nodes that are
*valid contributors* to their parents (Definition 4).

The result is the set of **meaningful RTFs**: one per interesting LCA node,
containing all of the query's relevant keyword nodes for that root but none of
the uninteresting siblings the contributor filter of MaxMatch would either
wrongly keep (redundancy problem) or wrongly drop (false-positive problem).
"""

from __future__ import annotations

from typing import Optional

from ..index import PostingSource
from ..xmltree import XMLTree
from .fragments import SearchResult
from .pipeline import FragmentPipeline, elca_roots, slca_roots
from .query import QueryLike
from .valid_contributor import prune_with_valid_contributor


class ValidRTF(FragmentPipeline):
    """The paper's ValidRTF algorithm over all interesting LCA nodes."""

    def __init__(self, tree: Optional[XMLTree], index: Optional[PostingSource] = None,
                 cid_mode: str = "minmax", analyzer=None):
        super().__init__(
            tree,
            pruner=lambda records: prune_with_valid_contributor(records, "validrtf"),
            index=index,
            lca_function=elca_roots,
            cid_mode=cid_mode,
            analyzer=analyzer,
            name="validrtf",
        )


class ValidRTFSLCA(FragmentPipeline):
    """ValidRTF restricted to SLCA roots (used by ablation benchmarks)."""

    def __init__(self, tree: Optional[XMLTree], index: Optional[PostingSource] = None,
                 cid_mode: str = "minmax", analyzer=None):
        super().__init__(
            tree,
            pruner=lambda records: prune_with_valid_contributor(records,
                                                                "validrtf-slca"),
            index=index,
            lca_function=slca_roots,
            cid_mode=cid_mode,
            analyzer=analyzer,
            name="validrtf-slca",
        )


def run_validrtf(tree: Optional[XMLTree], query: QueryLike,
                 index: Optional[PostingSource] = None,
                 slca_only: bool = False,
                 cid_mode: str = "minmax") -> SearchResult:
    """One-shot convenience wrapper around the two ValidRTF variants."""
    if slca_only:
        algorithm: FragmentPipeline = ValidRTFSLCA(tree, index, cid_mode=cid_mode)
    else:
        algorithm = ValidRTF(tree, index, cid_mode=cid_mode)
    return algorithm.search(query)
