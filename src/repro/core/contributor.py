"""The *contributor* filtering mechanism of MaxMatch (Liu & Chen, VLDB 2008).

A node ``n`` of a fragment is a **contributor** when it has no sibling ``n2``
(within the fragment, any label) such that ``dMatch(n) ⊂ dMatch(n2)`` — i.e.
its matched-keyword set is not strictly covered by a sibling's.  MaxMatch
keeps a fragment node iff the node and all its fragment ancestors are
contributors, which the pruning below realizes with a top-down traversal
(descendants of discarded nodes are discarded too).

The paper shows this filter commits the *false positive problem* (it can
discard interesting uniquely-labelled children, e.g. a paper ``title`` whose
keywords are subsumed by the ``abstract``) and the *redundancy problem* (it
keeps same-label siblings whose matched content is identical).
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence

from ..xmltree import DeweyCode
from .fragments import PrunedFragment
from .node_record import NodeRecord, RecordTree


def _strictly_covered(mask: int, masks: Sequence[int], skip: int = -1) -> bool:
    """Whether some mask other than position ``skip`` strictly covers ``mask``.

    The single contributor kernel: both :func:`is_contributor` (the
    definitional API, used by the explanations) and the pruning loop below
    decide through this test, so the rule can never diverge between
    explaining and pruning.
    """
    for position, other in enumerate(masks):
        if position != skip and mask != other and (mask & other) == mask:
            return True
    return False


def is_contributor(record: NodeRecord, siblings: Sequence[NodeRecord]) -> bool:
    """MaxMatch's contributor test for one node against its siblings.

    ``siblings`` are the other children of the node's parent within the
    fragment (any label).  The node fails iff some sibling's keyword mask is a
    strict superset of its own.
    """
    return not _strictly_covered(
        record.keyword_mask,
        [sibling.keyword_mask for sibling in siblings
         if sibling.dewey != record.dewey])


def prune_with_contributor(record_tree: RecordTree,
                           algorithm: str = "maxmatch") -> PrunedFragment:
    """Apply MaxMatch's contributor filter to one RTF / SLCA fragment.

    Top-down breadth-first traversal from the fragment root: a child is kept
    iff it is a contributor among its parent's children; subtrees of discarded
    children are never visited (so they are discarded wholesale), matching the
    pruneMatches behaviour of MaxMatch.
    """
    fragment = record_tree.fragment
    kept: List[DeweyCode] = [fragment.root]
    queue = deque([record_tree.root])
    while queue:
        parent = queue.popleft()
        children = parent.children
        # The shared kernel on the raw mask ints; positions distinguish
        # siblings, so no per-pair Dewey comparison is needed.
        masks = [child.keyword_mask for child in children]
        for index, child in enumerate(children):
            if not _strictly_covered(masks[index], masks, skip=index):
                kept.append(child.dewey)
                queue.append(child)
    return PrunedFragment(fragment=fragment, kept_nodes=tuple(sorted(set(kept))),
                          algorithm=algorithm)


def contributor_survivors(record_tree: RecordTree) -> List[DeweyCode]:
    """The kept node list only (convenience wrapper used in tests)."""
    return list(prune_with_contributor(record_tree).kept_nodes)
