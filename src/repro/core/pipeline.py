"""The shared four-stage XKS pipeline of Algorithm 1.

Both MaxMatch (revised for RTFs, the paper's baseline) and ValidRTF share the
first three stages — ``getKeywordNodes``, ``getLCA`` and ``getRTF`` — and
differ only in the pruning stage.  This module implements the shared pipeline
once; :mod:`repro.core.maxmatch` and :mod:`repro.core.validrtf` plug in their
filtering mechanism.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..index import InvertedIndex, PostingSource
from ..lca import elca_is_slca, indexed_stack_elca, indexed_lookup_eager_slca
from ..obs import MetricsRegistry, Trace
from ..obs import names as metric_names
from ..text import ContentAnalyzer
from ..xmltree import DeweyCode, XMLTree
from .fragments import Fragment, PrunedFragment, SearchResult
from .node_record import RecordTree, build_record_tree, build_record_tree_from_lookups
from .query import Query, QueryLike
from .rtf import build_rtfs

#: Signature of a ``getLCA`` stage: posting lists -> interesting LCA roots.
LcaFunction = Callable[[Mapping[str, Sequence[DeweyCode]]], List[DeweyCode]]

#: Signature of a pruning stage: record tree -> pruned fragment.
Pruner = Callable[[RecordTree], PrunedFragment]


def slca_roots(lists: Mapping[str, Sequence[DeweyCode]]) -> List[DeweyCode]:
    """``getLCA`` restricted to SLCA nodes (the original MaxMatch setting)."""
    return indexed_lookup_eager_slca(lists)


def elca_roots(lists: Mapping[str, Sequence[DeweyCode]]) -> List[DeweyCode]:
    """``getLCA`` returning all interesting LCA nodes (Indexed Stack / ELCA)."""
    return indexed_stack_elca(lists)


class FragmentPipeline:
    """The four-stage pipeline with a pluggable pruning mechanism.

    Parameters
    ----------
    tree:
        The document, or ``None`` for a purely source-backed pipeline (every
        stage then runs off the posting source's node lookups).
    index:
        Any :class:`~repro.index.source.PostingSource` serving stage 1 —
        the in-memory :class:`InvertedIndex`, a disk-backed source, or a
        sharded one.  Built on demand (as an inverted index) when omitted
        and a tree is given.
    lca_function:
        The ``getLCA`` stage; defaults to the ELCA (Indexed Stack) semantics
        used by the paper.
    pruner:
        The filtering mechanism applied to every RTF's record tree.
    cid_mode:
        Content-feature mode forwarded to the record-tree construction.
    name:
        Algorithm name recorded on results.
    analyzer:
        A prebuilt :class:`ContentAnalyzer` to share across pipelines (the
        engine passes one so all four algorithms share a memoization cache);
        derived from the source or the tree when omitted.
    """

    def __init__(
        self,
        tree: Optional[XMLTree],
        pruner: Pruner,
        index: Optional[PostingSource] = None,
        lca_function: LcaFunction = elca_roots,
        cid_mode: str = "minmax",
        name: str = "pipeline",
        analyzer: Optional[ContentAnalyzer] = None,
    ):
        if index is None:
            if tree is None:
                raise ValueError(
                    "FragmentPipeline needs a tree, a posting source, or both")
            index = InvertedIndex(tree)
        self.tree = tree
        self.index = index
        self.source: PostingSource = index
        # Record-tree construction prefers the resident tree (authoritative
        # and memoized); without one it falls back to the source's lookups.
        if analyzer is None:
            analyzer = getattr(index, "analyzer", None)
            if analyzer is None and tree is not None:
                analyzer = ContentAnalyzer(tree)
        self.analyzer: Optional[ContentAnalyzer] = analyzer
        self.lca_function = lca_function
        self.pruner = pruner
        self.cid_mode = cid_mode
        self.name = name
        # Metrics are opt-in: the owning engine assigns a shared registry
        # after construction; ``None`` keeps every report behind one branch.
        self.metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------ #
    # Stage helpers (also exposed individually for tests and examples)
    # ------------------------------------------------------------------ #
    def keyword_nodes(self, query: QueryLike) -> Dict[str, List[DeweyCode]]:
        """Stage 1 — ``getKeywordNodes`` (served by the posting source)."""
        parsed = Query.parse(query)
        return self.source.keyword_nodes(parsed.keywords)

    def lca_nodes(self, query: QueryLike) -> List[DeweyCode]:
        """Stage 2 — ``getLCA`` on this pipeline's LCA semantics."""
        return self.lca_function(self.keyword_nodes(query))

    def raw_fragments(self, query: QueryLike) -> List[Fragment]:
        """Stages 1–3 — the raw (unpruned) RTFs."""
        parsed = Query.parse(query)
        lists = self.source.keyword_nodes(parsed.keywords)
        roots = self.lca_function(lists)
        if not roots:
            return []
        flags = elca_is_slca(roots)
        return build_rtfs(self.tree, parsed, roots, lists, flags)

    def record_tree(self, query: QueryLike, fragment: Fragment) -> RecordTree:
        """The constructing step of ``pruneRTF`` for one fragment."""
        parsed = Query.parse(query)
        if self.tree is not None:
            return build_record_tree(self.tree, self.analyzer, parsed, fragment,
                                     cid_mode=self.cid_mode)
        # Batching sources warm their node caches in one round-trip per
        # fragment instead of one per node.
        prefetch = getattr(self.source, "prefetch_nodes", None)
        if prefetch is not None:
            prefetch(fragment.nodes, fragment.keyword_nodes)
        return build_record_tree_from_lookups(
            self.source.node_label, self.source.node_words, parsed, fragment,
            cid_mode=self.cid_mode)

    # ------------------------------------------------------------------ #
    # Full run
    # ------------------------------------------------------------------ #
    def search(self, query: QueryLike,
               trace: Optional[Trace] = None) -> SearchResult:
        """Run all four stages and return the pruned fragments.

        ``trace`` attaches one span per stage under the caller's open span;
        metrics (when the engine enabled them) are recorded either way.
        """
        observing = self.metrics is not None or trace is not None
        if not observing:
            parsed = Query.parse(query)
            started = time.perf_counter()
            lists = self.source.keyword_nodes(parsed.keywords)
            return self._run_stages(parsed, lists, started)

        read_stats = getattr(self.source, "read_stats", None)
        reads_before = read_stats() if read_stats is not None else None
        started = time.perf_counter()
        parsed = Query.parse(query)
        tokenized = time.perf_counter()
        lists = self.source.keyword_nodes(parsed.keywords)
        fetched = time.perf_counter()
        rows = sum(len(postings) for postings in lists.values())
        if trace is not None:
            trace.record("tokenize", started, tokenized,
                         keywords=len(parsed.keywords))
            span = trace.record("postings", tokenized, fetched,
                                keywords=len(lists), rows=rows)
            if reads_before is not None and read_stats is not None:
                for key, value in read_stats().items():
                    delta = value - reads_before.get(key, 0)
                    if delta:
                        span.note(**{key: delta})
        if self.metrics is not None:
            registry = self.metrics
            registry.histogram(
                metric_names.STAGE_TOKENIZE_SECONDS).observe(tokenized - started)
            registry.histogram(
                metric_names.STAGE_POSTINGS_SECONDS).observe(fetched - tokenized)
            registry.counter(metric_names.POSTING_KEYWORDS).inc(len(lists))
            registry.counter(metric_names.POSTING_ROWS).inc(rows)
            if reads_before is not None and read_stats is not None:
                self._record_read_deltas(registry, reads_before, read_stats())
        return self._run_stages(parsed, lists, started, trace=trace)

    #: Posting-source ``read_stats()`` keys folded into registry counters.
    _READ_COUNTERS = {
        "lru_hits": metric_names.POSTING_LRU_HITS,
        "lru_misses": metric_names.POSTING_LRU_MISSES,
        "bytes": metric_names.POSTING_BYTES,
        "packed_fetches": metric_names.POSTING_PACKED_FETCHES,
        "fallback_fetches": metric_names.POSTING_FALLBACK_FETCHES,
        "segment_reads": metric_names.SEGMENT_READS,
        "base_reads": metric_names.SEGMENT_BASE_READS,
        "merged_cursors": metric_names.SEGMENT_MERGED_CURSORS,
        "tombstone_hits": metric_names.SEGMENT_TOMBSTONE_HITS,
    }

    def _record_read_deltas(self, registry: MetricsRegistry,
                            before: Mapping[str, int],
                            after: Mapping[str, int]) -> None:
        """Fold one fetch's posting-source counter deltas into the registry."""
        for key, name in self._READ_COUNTERS.items():
            delta = after.get(key, 0) - before.get(key, 0)
            if delta > 0:
                # name iterates the _READ_COUNTERS mapping, whose values are
                # catalogue constants
                registry.counter(name).inc(delta)  # lint: allow(metrics-discipline)

    def search_with_lists(self, query: QueryLike,
                          lists: Mapping[str, Sequence[DeweyCode]]) -> SearchResult:
        """Run stages 2–4 on precomputed ``D_i`` posting lists.

        This is the batch fast path used by ``SearchEngine.search_many``: the
        caller fetches the postings for the union of several queries' keywords
        once and shares them across the batch, so ``getKeywordNodes`` is not
        re-run per query.  ``lists`` must map each normalized query keyword to
        its sorted Dewey list (missing keywords mean an empty result, exactly
        as in :meth:`search`).  The lists are never mutated.
        """
        parsed = Query.parse(query)
        started = time.perf_counter()
        per_query = {keyword: lists.get(keyword, ())
                     for keyword in parsed.keywords}
        return self._run_stages(parsed, per_query, started)

    def _run_stages(self, parsed: Query,
                    lists: Mapping[str, Sequence[DeweyCode]],
                    started: float,
                    trace: Optional[Trace] = None) -> SearchResult:
        """Stages 2–4 (``getLCA``, ``getRTF``, ``pruneRTF``) on ready lists.

        The LCA hot loop and the fragment loop report through *pre-aggregated*
        values stamped around each stage — never a per-iteration callback —
        so ``hot-loop-purity`` holds and the untraced path stays branch-cheap.
        """
        observing = self.metrics is not None or trace is not None
        lca_started = time.perf_counter() if observing else 0.0
        roots = self.lca_function(lists)
        lca_ended = time.perf_counter() if observing else 0.0
        fragments: List[PrunedFragment] = []
        if roots:
            flags = elca_is_slca(roots)
            for fragment in build_rtfs(self.tree, parsed, roots, lists, flags):
                fragments.append(self.pruner(self.record_tree(parsed, fragment)))
        elapsed = time.perf_counter() - started
        if observing:
            fragments_ended = time.perf_counter()
            if trace is not None:
                trace.record("lca", lca_started, lca_ended,
                             algorithm=self.name, candidates=len(roots))
                trace.record("fragments", lca_ended, fragments_ended,
                             fragments=len(fragments))
            if self.metrics is not None:
                registry = self.metrics
                labels = {"algorithm": self.name}
                registry.counter(metric_names.QUERY_COUNT, labels).inc()
                registry.histogram(metric_names.QUERY_SECONDS,
                                   labels).observe(elapsed)
                registry.histogram(metric_names.STAGE_LCA_SECONDS,
                                   labels).observe(lca_ended - lca_started)
                registry.histogram(
                    metric_names.STAGE_FRAGMENTS_SECONDS,
                    labels).observe(fragments_ended - lca_ended)
                registry.counter(metric_names.LCA_CANDIDATES).inc(len(roots))
                registry.counter(metric_names.QUERY_FRAGMENTS).inc(
                    len(fragments))
        return SearchResult(
            query=parsed,
            algorithm=self.name,
            fragments=tuple(fragments),
            elapsed_seconds=elapsed,
            lca_nodes=tuple(roots),
        )
