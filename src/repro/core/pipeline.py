"""The shared four-stage XKS pipeline of Algorithm 1.

Both MaxMatch (revised for RTFs, the paper's baseline) and ValidRTF share the
first three stages — ``getKeywordNodes``, ``getLCA`` and ``getRTF`` — and
differ only in the pruning stage.  This module implements the shared pipeline
once; :mod:`repro.core.maxmatch` and :mod:`repro.core.validrtf` plug in their
filtering mechanism.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..index import InvertedIndex, PostingSource
from ..lca import elca_is_slca, indexed_stack_elca, indexed_lookup_eager_slca
from ..text import ContentAnalyzer
from ..xmltree import DeweyCode, XMLTree
from .fragments import Fragment, PrunedFragment, SearchResult
from .node_record import RecordTree, build_record_tree, build_record_tree_from_lookups
from .query import Query, QueryLike
from .rtf import build_rtfs

#: Signature of a ``getLCA`` stage: posting lists -> interesting LCA roots.
LcaFunction = Callable[[Mapping[str, Sequence[DeweyCode]]], List[DeweyCode]]

#: Signature of a pruning stage: record tree -> pruned fragment.
Pruner = Callable[[RecordTree], PrunedFragment]


def slca_roots(lists: Mapping[str, Sequence[DeweyCode]]) -> List[DeweyCode]:
    """``getLCA`` restricted to SLCA nodes (the original MaxMatch setting)."""
    return indexed_lookup_eager_slca(lists)


def elca_roots(lists: Mapping[str, Sequence[DeweyCode]]) -> List[DeweyCode]:
    """``getLCA`` returning all interesting LCA nodes (Indexed Stack / ELCA)."""
    return indexed_stack_elca(lists)


class FragmentPipeline:
    """The four-stage pipeline with a pluggable pruning mechanism.

    Parameters
    ----------
    tree:
        The document, or ``None`` for a purely source-backed pipeline (every
        stage then runs off the posting source's node lookups).
    index:
        Any :class:`~repro.index.source.PostingSource` serving stage 1 —
        the in-memory :class:`InvertedIndex`, a disk-backed source, or a
        sharded one.  Built on demand (as an inverted index) when omitted
        and a tree is given.
    lca_function:
        The ``getLCA`` stage; defaults to the ELCA (Indexed Stack) semantics
        used by the paper.
    pruner:
        The filtering mechanism applied to every RTF's record tree.
    cid_mode:
        Content-feature mode forwarded to the record-tree construction.
    name:
        Algorithm name recorded on results.
    analyzer:
        A prebuilt :class:`ContentAnalyzer` to share across pipelines (the
        engine passes one so all four algorithms share a memoization cache);
        derived from the source or the tree when omitted.
    """

    def __init__(
        self,
        tree: Optional[XMLTree],
        pruner: Pruner,
        index: Optional[PostingSource] = None,
        lca_function: LcaFunction = elca_roots,
        cid_mode: str = "minmax",
        name: str = "pipeline",
        analyzer: Optional[ContentAnalyzer] = None,
    ):
        if index is None:
            if tree is None:
                raise ValueError(
                    "FragmentPipeline needs a tree, a posting source, or both")
            index = InvertedIndex(tree)
        self.tree = tree
        self.index = index
        self.source: PostingSource = index
        # Record-tree construction prefers the resident tree (authoritative
        # and memoized); without one it falls back to the source's lookups.
        if analyzer is None:
            analyzer = getattr(index, "analyzer", None)
            if analyzer is None and tree is not None:
                analyzer = ContentAnalyzer(tree)
        self.analyzer: Optional[ContentAnalyzer] = analyzer
        self.lca_function = lca_function
        self.pruner = pruner
        self.cid_mode = cid_mode
        self.name = name

    # ------------------------------------------------------------------ #
    # Stage helpers (also exposed individually for tests and examples)
    # ------------------------------------------------------------------ #
    def keyword_nodes(self, query: QueryLike) -> Dict[str, List[DeweyCode]]:
        """Stage 1 — ``getKeywordNodes`` (served by the posting source)."""
        parsed = Query.parse(query)
        return self.source.keyword_nodes(parsed.keywords)

    def lca_nodes(self, query: QueryLike) -> List[DeweyCode]:
        """Stage 2 — ``getLCA`` on this pipeline's LCA semantics."""
        return self.lca_function(self.keyword_nodes(query))

    def raw_fragments(self, query: QueryLike) -> List[Fragment]:
        """Stages 1–3 — the raw (unpruned) RTFs."""
        parsed = Query.parse(query)
        lists = self.source.keyword_nodes(parsed.keywords)
        roots = self.lca_function(lists)
        if not roots:
            return []
        flags = elca_is_slca(roots)
        return build_rtfs(self.tree, parsed, roots, lists, flags)

    def record_tree(self, query: QueryLike, fragment: Fragment) -> RecordTree:
        """The constructing step of ``pruneRTF`` for one fragment."""
        parsed = Query.parse(query)
        if self.tree is not None:
            return build_record_tree(self.tree, self.analyzer, parsed, fragment,
                                     cid_mode=self.cid_mode)
        # Batching sources warm their node caches in one round-trip per
        # fragment instead of one per node.
        prefetch = getattr(self.source, "prefetch_nodes", None)
        if prefetch is not None:
            prefetch(fragment.nodes, fragment.keyword_nodes)
        return build_record_tree_from_lookups(
            self.source.node_label, self.source.node_words, parsed, fragment,
            cid_mode=self.cid_mode)

    # ------------------------------------------------------------------ #
    # Full run
    # ------------------------------------------------------------------ #
    def search(self, query: QueryLike) -> SearchResult:
        """Run all four stages and return the pruned fragments."""
        parsed = Query.parse(query)
        started = time.perf_counter()
        lists = self.source.keyword_nodes(parsed.keywords)
        return self._run_stages(parsed, lists, started)

    def search_with_lists(self, query: QueryLike,
                          lists: Mapping[str, Sequence[DeweyCode]]) -> SearchResult:
        """Run stages 2–4 on precomputed ``D_i`` posting lists.

        This is the batch fast path used by ``SearchEngine.search_many``: the
        caller fetches the postings for the union of several queries' keywords
        once and shares them across the batch, so ``getKeywordNodes`` is not
        re-run per query.  ``lists`` must map each normalized query keyword to
        its sorted Dewey list (missing keywords mean an empty result, exactly
        as in :meth:`search`).  The lists are never mutated.
        """
        parsed = Query.parse(query)
        started = time.perf_counter()
        per_query = {keyword: lists.get(keyword, ())
                     for keyword in parsed.keywords}
        return self._run_stages(parsed, per_query, started)

    def _run_stages(self, parsed: Query,
                    lists: Mapping[str, Sequence[DeweyCode]],
                    started: float) -> SearchResult:
        """Stages 2–4 (``getLCA``, ``getRTF``, ``pruneRTF``) on ready lists."""
        roots = self.lca_function(lists)
        fragments: List[PrunedFragment] = []
        if roots:
            flags = elca_is_slca(roots)
            for fragment in build_rtfs(self.tree, parsed, roots, lists, flags):
                fragments.append(self.pruner(self.record_tree(parsed, fragment)))
        elapsed = time.perf_counter() - started
        return SearchResult(
            query=parsed,
            algorithm=self.name,
            fragments=tuple(fragments),
            elapsed_seconds=elapsed,
            lca_nodes=tuple(roots),
        )
