"""The node data structure of Section 4.1 and the RTF "constructing step".

For every node of an RTF the paper keeps:

* *Self Info*: Dewey code, label, keyword list ``kList`` (the tree keyword set
  ``TK_v``, stored as a bitmask whose integer value is the "key number") and
  the content id ``cID`` — the ``(min, max)`` word pair of the tree content
  set ``TC_v`` under lexical order.
* *Children Info*: the children grouped by distinct label (``chlList``); each
  label item records the child count, the children's key numbers
  (``chkList``), their cIDs (``chcIDList``) and references to the child
  records (``chList``).

The constructing step of ``pruneRTF`` (Algorithm 1, lines 1–15) builds this
record tree bottom-up from the RTF's keyword nodes: every keyword node's
information is propagated to all its ancestors within the fragment.

Two content-feature modes are supported:

* ``"minmax"`` — the paper's approximate ``(min, max)`` pair;
* ``"exact"`` — the full tree content set.  Used by the ablation benchmark to
  quantify how often the approximation misidentifies duplicate content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple, Union

from ..text import ContentAnalyzer
from ..xmltree import DeweyCode, XMLTree
from .fragments import Fragment
from .query import Query

ContentFeature = Union[Tuple[str, str], FrozenSet[str]]

#: Content-feature modes accepted by the record builder.
CID_MODES = ("minmax", "exact")


@dataclass
class LabelGroup:
    """One ``chlList`` entry: the children of a node sharing one label."""

    label: str
    children: List["NodeRecord"] = field(default_factory=list)

    @property
    def counter(self) -> int:
        """Number of children with this label."""
        return len(self.children)

    def key_numbers(self) -> List[int]:
        """The children's key numbers (``chkList``), sorted ascending."""
        return sorted(child.key_number for child in self.children)

    def content_features(self) -> List[ContentFeature]:
        """The children's content features (``chcIDList``)."""
        return [child.content_feature for child in self.children]


@dataclass
class NodeRecord:
    """The per-node record of Section 4.1."""

    dewey: DeweyCode
    label: str
    keyword_mask: int = 0
    content_words: FrozenSet[str] = frozenset()
    is_keyword_node: bool = False
    cid_mode: str = "minmax"
    children: List["NodeRecord"] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Self info
    # ------------------------------------------------------------------ #
    @property
    def key_number(self) -> int:
        """The integer value of ``kList`` (the paper's key number)."""
        return self.keyword_mask

    @property
    def content_feature(self) -> ContentFeature:
        """The ``cID``: the ``(min, max)`` word pair, or the exact set."""
        if self.cid_mode == "exact":
            return self.content_words
        if not self.content_words:
            return ("", "")
        ordered = sorted(self.content_words)
        return (ordered[0], ordered[-1])

    def tree_keyword_set(self, query: Query) -> FrozenSet[str]:
        """``TK_v`` decoded back into keyword strings."""
        return frozenset(query.keywords_of(self.keyword_mask))

    # ------------------------------------------------------------------ #
    # Children info
    # ------------------------------------------------------------------ #
    def label_groups(self) -> List[LabelGroup]:
        """The ``chlList``: children grouped by distinct label, document order."""
        groups: Dict[str, LabelGroup] = {}
        for child in self.children:
            groups.setdefault(child.label, LabelGroup(child.label)).children.append(child)
        return list(groups.values())

    def group_for(self, label: str) -> Optional[LabelGroup]:
        """The label group of ``label``, or ``None``."""
        for group in self.label_groups():
            if group.label == label:
                return group
        return None

    def iter_records(self):
        """Yield this record and all descendant records in document order."""
        yield self
        for child in self.children:
            yield from child.iter_records()

    def __repr__(self) -> str:
        return (f"NodeRecord({self.dewey} {self.label!r} key={self.key_number} "
                f"cid={self.content_feature!r})")


@dataclass(frozen=True)
class RecordTree:
    """The record tree of one RTF built by the constructing step."""

    fragment: Fragment
    root: NodeRecord
    by_dewey: Dict[DeweyCode, NodeRecord]

    def record(self, dewey: DeweyCode) -> NodeRecord:
        """The record of one fragment node."""
        return self.by_dewey[dewey]

    def size(self) -> int:
        """Number of records (equals the raw fragment size)."""
        return len(self.by_dewey)


def build_record_tree(
    tree: XMLTree,
    analyzer: ContentAnalyzer,
    query: Query,
    fragment: Fragment,
    cid_mode: str = "minmax",
) -> RecordTree:
    """The constructing step of ``pruneRTF`` (Algorithm 1, lines 1–15).

    Builds one :class:`NodeRecord` per fragment node.  A node's keyword mask
    and content words are the union over the *fragment's own keyword nodes*
    located in its subtree — the restriction the paper's line 11/12 fix is
    about: keyword-node information must reach every ancestor within the RTF,
    but keyword nodes belonging to other (deeper) RTFs never contribute.
    """
    return build_record_tree_from_lookups(
        label_of=lambda dewey: tree.node(dewey).label,
        words_of=lambda dewey: analyzer.node_content(tree.node(dewey)),
        query=query,
        fragment=fragment,
        cid_mode=cid_mode,
    )


def build_record_tree_from_lookups(
    label_of: Callable[[DeweyCode], Optional[str]],
    words_of: Callable[[DeweyCode], FrozenSet[str]],
    query: Query,
    fragment: Fragment,
    cid_mode: str = "minmax",
) -> RecordTree:
    """The constructing step driven by node lookups instead of a tree.

    ``label_of`` and ``words_of`` resolve a fragment node's label and content
    word set; any :class:`~repro.index.source.PostingSource` provides both
    (``node_label`` / ``node_words``), which is how disk-backed searches run
    the pruning stage without the document resident in memory.  Semantics are
    identical to :func:`build_record_tree` (which delegates here).
    """
    if cid_mode not in CID_MODES:
        raise ValueError(f"unknown cid_mode {cid_mode!r}; expected one of {CID_MODES}")

    # Wire parent/child links within the fragment in ONE document-order pass.
    # ``fragment.nodes`` is sorted, so a node's nearest fragment ancestor is on
    # the path stack when the node arrives (prefix compares on raw component
    # tuples — no ``parent()`` chains, no per-step code materialization), and
    # children are appended in document order, so no per-parent sort is needed.
    records: Dict[DeweyCode, NodeRecord] = {}
    order: List[NodeRecord] = []
    parents: List[Optional[NodeRecord]] = []
    stack: List[Tuple[Tuple[int, ...], NodeRecord]] = []
    root = fragment.root
    for dewey in fragment.nodes:
        # lint: allow(hot-loop-purity) fragment nodes arrive boxed; unbox once
        comps = dewey.components
        record = NodeRecord(
            dewey=dewey,
            label=label_of(dewey) or "",
            cid_mode=cid_mode,
        )
        records[dewey] = record
        while stack:
            top = stack[-1][0]
            if len(top) < len(comps) and comps[:len(top)] == top:
                break
            stack.pop()
        if stack:
            parent = stack[-1][1]
            parent.children.append(record)
        elif dewey != root:
            raise ValueError(f"fragment node {dewey} is not connected to the root")
        else:
            parent = None
        order.append(record)
        parents.append(parent)
        stack.append((comps, record))
    root_record = records[root]

    # Propagate every keyword node's information to all its fragment ancestors
    # (the paper's lines 5–12: "transfer the information ... to all its
    # ancestors").  Keyword nodes are seeded first, then one bottom-up pass in
    # reverse document order folds each record into its parent — the same
    # union, computed once per fragment edge instead of once per
    # (keyword node, ancestor) pair.
    query_keywords = set(query.keywords)
    for keyword_dewey in fragment.keyword_nodes:
        content = words_of(keyword_dewey)
        mask = query.mask_of(keyword for keyword in query_keywords if keyword in content)
        record = records[keyword_dewey]
        record.is_keyword_node = True
        record.keyword_mask |= mask
        record.content_words = record.content_words | content
    for record, parent in zip(reversed(order), reversed(parents)):
        if parent is None:
            continue
        if record.keyword_mask:
            parent.keyword_mask |= record.keyword_mask
        if record.content_words:
            parent.content_words = parent.content_words | record.content_words

    return RecordTree(fragment=fragment, root=root_record, by_dewey=records)
