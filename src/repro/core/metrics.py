"""Effectiveness metrics of Section 5.1: CFR, APR, APR' and Max APR.

Given, for one query, the meaningful RTFs ``V`` computed by ValidRTF and the
fragments ``X`` computed by (revised) MaxMatch — both indexed by their common
LCA roots ``A`` — the paper defines:

* **CFR** (common fragment ratio) ``= |V ∩ X| / |A|`` where two fragments are
  "the same" when they keep exactly the same node set;
* per root ``a``: the pruning ratio ``|x_a − v_a| / |x_a|`` — the fraction of
  MaxMatch's kept nodes that ValidRTF additionally discards;
* **APR** (average pruning ratio) — the mean of the per-root ratios over the
  roots where the fragments differ (``|V − V ∩ X|``);
* **Max APR** — the largest per-root ratio (the "extreme" fragment, usually
  rooted near the document root);
* **APR'** — the APR recomputed after discarding that extreme fragment,
  highlighting the pruning behaviour on *regular* fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..xmltree import DeweyCode
from .fragments import PrunedFragment, SearchResult


@dataclass(frozen=True)
class FragmentComparison:
    """Per-root comparison between the ValidRTF and MaxMatch fragments."""

    root: DeweyCode
    maxmatch_size: int
    validrtf_size: int
    extra_pruned: int
    ratio: float
    identical: bool


@dataclass(frozen=True)
class EffectivenessReport:
    """The Figure 6 numbers for one query on one dataset."""

    query: str
    lca_count: int
    common_fragments: int
    differing_fragments: int
    cfr: float
    apr: float
    apr_prime: float
    max_apr: float
    comparisons: Tuple[FragmentComparison, ...] = ()

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary row for the reporting tables."""
        return {
            "query": self.query,
            "rtfs": self.lca_count,
            "cfr": round(self.cfr, 4),
            "apr": round(self.apr, 4),
            "apr_prime": round(self.apr_prime, 4),
            "max_apr": round(self.max_apr, 4),
        }


def compare_fragments(maxmatch: PrunedFragment,
                      validrtf: PrunedFragment) -> FragmentComparison:
    """Compare the two prunings of the same RTF."""
    if maxmatch.root != validrtf.root:
        raise ValueError(
            f"cannot compare fragments with different roots "
            f"({maxmatch.root} vs {validrtf.root})"
        )
    x_nodes = maxmatch.kept_set()
    v_nodes = validrtf.kept_set()
    extra = len(x_nodes - v_nodes)
    ratio = extra / len(x_nodes) if x_nodes else 0.0
    return FragmentComparison(
        root=maxmatch.root,
        maxmatch_size=len(x_nodes),
        validrtf_size=len(v_nodes),
        extra_pruned=extra,
        ratio=ratio,
        identical=x_nodes == v_nodes,
    )


def effectiveness(maxmatch_result: SearchResult,
                  validrtf_result: SearchResult) -> EffectivenessReport:
    """Compute CFR / APR / APR' / Max APR for one query.

    Both results must come from the same query on the same document (so the
    LCA root sets coincide); roots present in only one result (which the
    paper's setting rules out) are counted as differing fragments.
    """
    x_by_root = maxmatch_result.by_root()
    v_by_root = validrtf_result.by_root()
    all_roots = sorted(set(x_by_root) | set(v_by_root))

    comparisons: List[FragmentComparison] = []
    for root in all_roots:
        x_fragment = x_by_root.get(root)
        v_fragment = v_by_root.get(root)
        if x_fragment is None or v_fragment is None:
            size_x = x_fragment.size if x_fragment else 0
            size_v = v_fragment.size if v_fragment else 0
            comparisons.append(FragmentComparison(
                root=root, maxmatch_size=size_x, validrtf_size=size_v,
                extra_pruned=size_x, ratio=1.0 if size_x else 0.0,
                identical=False,
            ))
            continue
        comparisons.append(compare_fragments(x_fragment, v_fragment))

    lca_count = len(all_roots)
    common = sum(1 for comparison in comparisons if comparison.identical)
    differing = [comparison for comparison in comparisons if not comparison.identical]
    cfr = common / lca_count if lca_count else 1.0

    ratios = [comparison.ratio for comparison in differing]
    apr = sum(ratios) / len(ratios) if ratios else 0.0
    max_apr = max((comparison.ratio for comparison in comparisons), default=0.0)
    apr_prime = _apr_without_extreme(ratios)

    return EffectivenessReport(
        query=str(maxmatch_result.query),
        lca_count=lca_count,
        common_fragments=common,
        differing_fragments=len(differing),
        cfr=cfr,
        apr=apr,
        apr_prime=apr_prime,
        max_apr=max_apr,
        comparisons=tuple(comparisons),
    )


def _apr_without_extreme(ratios: Sequence[float]) -> float:
    """APR after discarding one occurrence of the maximum ratio (APR')."""
    if len(ratios) <= 1:
        return 0.0
    remaining = list(ratios)
    remaining.remove(max(remaining))
    return sum(remaining) / len(remaining)


def summarize_reports(reports: Sequence[EffectivenessReport]) -> Dict[str, float]:
    """Aggregate Figure 6 style numbers over a whole workload."""
    if not reports:
        return {"queries": 0, "mean_cfr": 1.0, "mean_apr_prime": 0.0,
                "mean_max_apr": 0.0, "queries_with_extra_pruning": 0}
    return {
        "queries": len(reports),
        "mean_cfr": sum(report.cfr for report in reports) / len(reports),
        "mean_apr_prime": sum(report.apr_prime for report in reports) / len(reports),
        "mean_max_apr": sum(report.max_apr for report in reports) / len(reports),
        "queries_with_extra_pruning": sum(1 for report in reports if report.cfr < 1.0),
    }
