"""Exception types raised by the XML tree substrate.

Keeping a small, explicit exception hierarchy lets callers distinguish
structural problems (malformed Dewey codes, detached nodes) from parsing
problems without catching broad built-in exceptions.
"""

from __future__ import annotations


class XMLTreeError(Exception):
    """Base class for every error raised by :mod:`repro.xmltree`."""


class InvalidDeweyCode(XMLTreeError):
    """Raised when a Dewey code string or component sequence is malformed."""


class NodeNotFound(XMLTreeError):
    """Raised when a Dewey code does not identify a node in the tree."""


class DuplicateNode(XMLTreeError):
    """Raised when a node with an already-used Dewey code is inserted."""


class ParseError(XMLTreeError):
    """Raised when an XML document cannot be parsed into a tree."""
