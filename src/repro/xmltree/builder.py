"""Programmatic construction of :class:`~repro.xmltree.tree.XMLTree` objects.

Two construction styles are provided:

* :class:`TreeBuilder` — an imperative builder with ``element`` /
  ``text_element`` / ``up`` calls, convenient for dataset generators that emit
  large documents node by node.
* :func:`tree_from_spec` — build a whole tree from a nested
  :class:`~repro.xmltree.tree.SubtreeSpec`, convenient for compact test
  fixtures and the paper's figure instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .dewey import DeweyCode
from .errors import XMLTreeError
from .node import XMLNode
from .tree import SubtreeSpec, XMLTree


class TreeBuilder:
    """Incrementally build an XML tree in document order.

    Example
    -------
    >>> builder = TreeBuilder("publications")
    >>> builder.element("article")
    >>> builder.text_element("title", "XML keyword search")
    >>> builder.up()
    >>> tree = builder.build()
    """

    def __init__(self, root_label: str, root_text: Optional[str] = None,
                 attributes: Optional[Dict[str, str]] = None, name: str = ""):
        self._name = name
        self._root = XMLNode(DeweyCode.root(), root_label, root_text, attributes)
        self._stack: List[XMLNode] = [self._root]
        self._built = False

    # ------------------------------------------------------------------ #
    @property
    def current(self) -> XMLNode:
        """The node new elements are currently appended under."""
        return self._stack[-1]

    @property
    def depth(self) -> int:
        """Current nesting depth (the root is depth 1)."""
        return len(self._stack)

    def element(self, label: str, text: Optional[str] = None,
                attributes: Optional[Dict[str, str]] = None) -> XMLNode:
        """Open a new child element and descend into it."""
        self._ensure_open()
        parent = self._stack[-1]
        dewey = parent.dewey.child(parent.child_count())
        node = XMLNode(dewey, label, text, attributes)
        parent.attach_child(node)
        self._stack.append(node)
        return node

    def text_element(self, label: str, text: str,
                     attributes: Optional[Dict[str, str]] = None) -> XMLNode:
        """Add a leaf child element carrying ``text`` without descending."""
        node = self.element(label, text, attributes)
        self._stack.pop()
        return node

    def up(self, levels: int = 1) -> None:
        """Close the ``levels`` innermost open elements."""
        self._ensure_open()
        if levels < 1:
            raise XMLTreeError("up() needs a positive number of levels")
        if levels >= len(self._stack):
            raise XMLTreeError("cannot move above the root element")
        del self._stack[-levels:]

    def build(self) -> XMLTree:
        """Finish and return the tree.  The builder cannot be reused after."""
        self._ensure_open()
        self._built = True
        return XMLTree(self._root, name=self._name)

    def _ensure_open(self) -> None:
        if self._built:
            raise XMLTreeError("this builder has already produced its tree")


def tree_from_spec(spec: SubtreeSpec, name: str = "") -> XMLTree:
    """Materialize a nested :class:`SubtreeSpec` into a full tree."""
    root = _materialize(spec, DeweyCode.root())
    return XMLTree(root, name=name)


def spec(label: str, text: Optional[str] = None, *children: SubtreeSpec,
         attributes: Optional[Dict[str, str]] = None) -> SubtreeSpec:
    """Shorthand factory for :class:`SubtreeSpec` literals in fixtures."""
    node = SubtreeSpec(label, text, attributes, list(children))
    return node


def _materialize(subtree: SubtreeSpec, dewey: DeweyCode) -> XMLNode:
    node = XMLNode(dewey, subtree.label, subtree.text, subtree.attributes)
    for index, child in enumerate(subtree.children):
        node.attach_child(_materialize(child, dewey.child(index)))
    return node
