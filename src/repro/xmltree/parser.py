"""Parsing XML documents into :class:`~repro.xmltree.tree.XMLTree` objects.

The paper's system parses documents with Xerces; this substrate uses the
standard-library :mod:`xml.etree.ElementTree` parser, assigning Dewey codes in
document order during a single pre-order walk.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Union

from .dewey import DeweyCode
from .errors import ParseError
from .node import XMLNode
from .tree import XMLTree


def parse_string(document: str, name: str = "") -> XMLTree:
    """Parse an XML document given as a string."""
    try:
        element = ET.fromstring(document)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML document: {exc}") from exc
    return _convert(element, name)


def parse_file(path: Union[str, Path], name: str = "") -> XMLTree:
    """Parse an XML document stored in a file."""
    file_path = Path(path)
    try:
        element = ET.parse(str(file_path)).getroot()
    except (ET.ParseError, OSError) as exc:
        raise ParseError(f"cannot parse {file_path}: {exc}") from exc
    return _convert(element, name or file_path.stem)


def to_xml_string(tree: XMLTree, indent: str = "  ") -> str:
    """Serialize a whole tree back to an XML string (round-trip helper)."""
    element = _to_element(tree.root)
    _indent_element(element, indent)
    return ET.tostring(element, encoding="unicode")


def write_xml_file(tree: XMLTree, path: Union[str, Path], indent: str = "  ") -> None:
    """Write a tree to a file as XML."""
    Path(path).write_text(to_xml_string(tree, indent=indent), encoding="utf-8")


# ---------------------------------------------------------------------- #
# Internal conversion helpers
# ---------------------------------------------------------------------- #
def _convert(element: ET.Element, name: str) -> XMLTree:
    root = _convert_element(element, DeweyCode.root())
    return XMLTree(root, name=name)


def _convert_element(element: ET.Element, dewey: DeweyCode) -> XMLNode:
    text = element.text.strip() if element.text and element.text.strip() else None
    node = XMLNode(dewey, _local_name(element.tag), text, dict(element.attrib))
    for index, child in enumerate(element):
        node.attach_child(_convert_element(child, dewey.child(index)))
        tail = child.tail.strip() if child.tail and child.tail.strip() else None
        if tail:
            # Mixed content: append the tail text to the parent's text so no
            # words are lost for keyword matching.
            node.text = f"{node.text} {tail}" if node.text else tail
    return node


def _local_name(tag: str) -> str:
    # Strip any XML namespace prefix of the form "{uri}local".
    if tag.startswith("{"):
        return tag.split("}", 1)[1]
    return tag


def _to_element(node: XMLNode) -> ET.Element:
    element = ET.Element(node.label, dict(node.attributes))
    if node.text:
        element.text = node.text
    for child in node.children:
        element.append(_to_element(child))
    return element


def _indent_element(element: ET.Element, indent: str, level: int = 0) -> None:
    pad = "\n" + indent * (level + 1)
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad
        for child in element:
            _indent_element(child, indent, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad
        last = element[-1]
        last.tail = "\n" + indent * level
