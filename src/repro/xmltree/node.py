"""The node model of the XML tree substrate.

The paper models an XML document as a tree ``T = (r, V, E, Sigma, lambda)``
where every node carries a label, leaf nodes carry a text value, and nodes may
carry attributes.  The *content* ``C_v`` of a node is the word set implied by
its label, text and attributes (Section 1), which is what keyword matching is
evaluated against.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .dewey import DeweyCode


class XMLNode:
    """A single node of an :class:`~repro.xmltree.tree.XMLTree`.

    Nodes are created and wired by :class:`~repro.xmltree.builder.TreeBuilder`
    or the parser; user code normally only reads them.

    Attributes
    ----------
    dewey:
        The node's Dewey code (unique within its tree).
    label:
        The element name ("tag") of the node.
    text:
        The text value of the node, or ``None``.  In the paper's model only
        leaf nodes carry text, but mixed content is tolerated.
    attributes:
        Attribute name/value mapping (possibly empty).
    """

    __slots__ = ("dewey", "label", "text", "attributes", "_parent", "_children")

    def __init__(
        self,
        dewey: DeweyCode,
        label: str,
        text: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
    ):
        self.dewey = dewey
        self.label = label
        self.text = text
        self.attributes: Dict[str, str] = dict(attributes) if attributes else {}
        self._parent: Optional["XMLNode"] = None
        self._children: List["XMLNode"] = []

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def parent(self) -> Optional["XMLNode"]:
        """The parent node, or ``None`` for the root."""
        return self._parent

    @property
    def children(self) -> List["XMLNode"]:
        """The node's children in document order (read-only copy)."""
        return list(self._children)

    @property
    def is_leaf(self) -> bool:
        """True iff the node has no children."""
        return not self._children

    @property
    def is_root(self) -> bool:
        """True iff the node has no parent."""
        return self._parent is None

    @property
    def depth(self) -> int:
        """Zero-based depth (the root is at depth 0)."""
        return self.dewey.level

    def child_count(self) -> int:
        """Number of children."""
        return len(self._children)

    def attach_child(self, child: "XMLNode") -> None:
        """Wire ``child`` as the last child of this node (builder use only)."""
        child._parent = self
        self._children.append(child)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield this node and every descendant in pre-order."""
        stack: List[XMLNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield every strict descendant in pre-order."""
        iterator = self.iter_subtree()
        next(iterator)  # skip self
        return iterator

    def iter_ancestors(self, include_self: bool = False) -> Iterator["XMLNode"]:
        """Yield ancestors from the parent (or self) up to the root."""
        node = self if include_self else self._parent
        while node is not None:
            yield node
            node = node._parent

    def find_children(self, label: str) -> List["XMLNode"]:
        """All direct children carrying ``label``."""
        return [child for child in self._children if child.label == label]

    # ------------------------------------------------------------------ #
    # Content
    # ------------------------------------------------------------------ #
    def raw_strings(self) -> List[str]:
        """The raw strings that define this node's content ``C_v``.

        Following the paper (Section 1 and 5.2) the content of a node is the
        word set implied by its *label*, its *text* and its *attributes*
        (both names and values).
        """
        pieces = [self.label]
        if self.text:
            pieces.append(self.text)
        for name, value in self.attributes.items():
            pieces.append(name)
            if value:
                pieces.append(value)
        return pieces

    def subtree_strings(self) -> List[str]:
        """Raw content strings of this node and all descendants."""
        strings: List[str] = []
        for node in self.iter_subtree():
            strings.extend(node.raw_strings())
        return strings

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        text = f" text={self.text!r}" if self.text else ""
        return f"XMLNode({self.dewey} {self.label!r}{text})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, XMLNode):
            return self.dewey == other.dewey and self.label == other.label
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.dewey, self.label))
