"""XML tree substrate: Dewey codes, node/tree model, parsing and rendering."""

from .dewey import DeweyCode, lca_of_codes, sort_document_order
from .errors import (
    DuplicateNode,
    InvalidDeweyCode,
    NodeNotFound,
    ParseError,
    XMLTreeError,
)
from .node import XMLNode
from .tree import SubtreeSpec, XMLTree
from .builder import TreeBuilder, spec, tree_from_spec
from .parser import parse_file, parse_string, to_xml_string, write_xml_file
from .serializer import (
    fragment_summary,
    render_fragment_xml,
    render_nodes,
    render_tree,
)

__all__ = [
    "DeweyCode",
    "lca_of_codes",
    "sort_document_order",
    "XMLTreeError",
    "InvalidDeweyCode",
    "NodeNotFound",
    "DuplicateNode",
    "ParseError",
    "XMLNode",
    "XMLTree",
    "SubtreeSpec",
    "TreeBuilder",
    "spec",
    "tree_from_spec",
    "parse_string",
    "parse_file",
    "to_xml_string",
    "write_xml_file",
    "render_tree",
    "render_nodes",
    "render_fragment_xml",
    "fragment_summary",
]
