"""Dewey codes: hierarchical node identifiers for XML trees.

A Dewey code identifies a node by the path of child ordinals from the root,
e.g. ``0.2.0.1`` is the second child of the first child of the third child of
the root ``0``.  Dewey codes are the backbone of the paper's algorithms:

* they are compatible with pre-order document order (lexicographic comparison
  of the component tuples equals pre-order comparison of nodes),
* ancestor/descendant tests are prefix tests,
* the LCA of two nodes is the longest common prefix of their codes.

The class is an immutable value object so codes can be used as dictionary
keys, set members and sort keys throughout the library.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from .errors import InvalidDeweyCode

DeweyLike = Union["DeweyCode", str, Sequence[int]]


class DeweyCode:
    """An immutable Dewey code.

    Parameters
    ----------
    components:
        The integer components of the code, e.g. ``(0, 2, 0, 1)`` for
        ``"0.2.0.1"``.  Every component must be a non-negative integer and the
        sequence must be non-empty.
    """

    __slots__ = ("_components", "_hash")

    def __init__(self, components: Iterable[int]):
        parts = tuple(components)
        if not parts:
            raise InvalidDeweyCode("a Dewey code needs at least one component")
        for part in parts:
            if not isinstance(part, int) or isinstance(part, bool):
                raise InvalidDeweyCode(f"Dewey component {part!r} is not an integer")
            if part < 0:
                raise InvalidDeweyCode(f"Dewey component {part!r} is negative")
        self._components: Tuple[int, ...] = parts
        self._hash = hash(parts)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_tuple(cls, parts: Tuple[int, ...]) -> "DeweyCode":
        """Validation-free constructor for components known to be well formed.

        Every derived code (parent, child, ancestor prefix, common prefix) is
        built from the components of an already-validated code, so the
        per-component checks of ``__init__`` would only re-prove what is
        already known — and those checks dominate the cost of the millions of
        codes the SLCA/RTF inner loops materialize.
        """
        code = object.__new__(cls)
        code._components = parts
        code._hash = hash(parts)
        return code

    @classmethod
    def parse(cls, text: str) -> "DeweyCode":
        """Parse the dotted string form, e.g. ``"0.2.0.1"``."""
        if not isinstance(text, str) or not text:
            raise InvalidDeweyCode(f"cannot parse Dewey code from {text!r}")
        try:
            return cls(int(piece) for piece in text.split("."))
        except ValueError as exc:
            raise InvalidDeweyCode(f"cannot parse Dewey code from {text!r}") from exc

    @classmethod
    def coerce(cls, value: DeweyLike) -> "DeweyCode":
        """Convert a :class:`DeweyCode`, string or int sequence into a code."""
        if isinstance(value, DeweyCode):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        return cls(value)

    @classmethod
    def root(cls) -> "DeweyCode":
        """The conventional root code ``0``."""
        return cls((0,))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def components(self) -> Tuple[int, ...]:
        """The tuple of integer components."""
        return self._components

    @property
    def depth(self) -> int:
        """Number of components; the root has depth 1."""
        return len(self._components)

    @property
    def level(self) -> int:
        """Zero-based tree level (root is level 0)."""
        return len(self._components) - 1

    @property
    def ordinal(self) -> int:
        """The last component: the index of this node among its siblings."""
        return self._components[-1]

    def parent(self) -> Optional["DeweyCode"]:
        """The parent code, or ``None`` for the root-level code."""
        if len(self._components) == 1:
            return None
        return DeweyCode._from_tuple(self._components[:-1])

    def child(self, ordinal: int) -> "DeweyCode":
        """The code of the ``ordinal``-th child of this node."""
        if not isinstance(ordinal, int) or isinstance(ordinal, bool):
            raise InvalidDeweyCode(f"child ordinal {ordinal!r} is not an integer")
        if ordinal < 0:
            raise InvalidDeweyCode(f"child ordinal {ordinal} is negative")
        return DeweyCode._from_tuple(self._components + (ordinal,))

    def ancestors(self, include_self: bool = False) -> Iterator["DeweyCode"]:
        """Yield ancestor codes from the root down to the parent (or self)."""
        stop = len(self._components) if include_self else len(self._components) - 1
        for size in range(1, stop + 1):
            yield DeweyCode._from_tuple(self._components[:size])

    def ancestors_bottom_up(self, include_self: bool = False) -> Iterator["DeweyCode"]:
        """Yield ancestor codes from the parent (or self) up to the root."""
        start = len(self._components) if include_self else len(self._components) - 1
        for size in range(start, 0, -1):
            yield DeweyCode._from_tuple(self._components[:size])

    # ------------------------------------------------------------------ #
    # Relationships
    # ------------------------------------------------------------------ #
    def is_ancestor_of(self, other: "DeweyCode") -> bool:
        """True iff ``self`` is a strict ancestor of ``other``."""
        return (
            len(self._components) < len(other._components)
            and other._components[: len(self._components)] == self._components
        )

    def is_descendant_of(self, other: "DeweyCode") -> bool:
        """True iff ``self`` is a strict descendant of ``other``."""
        return other.is_ancestor_of(self)

    def is_ancestor_or_self(self, other: "DeweyCode") -> bool:
        """True iff ``self`` is ``other`` or an ancestor of it."""
        return (
            len(self._components) <= len(other._components)
            and other._components[: len(self._components)] == self._components
        )

    def is_sibling_of(self, other: "DeweyCode") -> bool:
        """True iff the two codes share a parent and differ."""
        if self == other:
            return False
        return self._components[:-1] == other._components[:-1]

    def common_prefix(self, other: "DeweyCode") -> "DeweyCode":
        """The Dewey code of the lowest common ancestor of the two nodes.

        Raises :class:`InvalidDeweyCode` if the codes share no prefix (they
        then belong to different trees / different roots).
        """
        mine = self._components
        theirs = other._components
        limit = min(len(mine), len(theirs))
        shared = 0
        while shared < limit and mine[shared] == theirs[shared]:
            shared += 1
        if not shared:
            raise InvalidDeweyCode(
                f"{self} and {other} share no common prefix (different roots)"
            )
        return DeweyCode._from_tuple(mine[:shared])

    def relative_to(self, ancestor: "DeweyCode") -> Tuple[int, ...]:
        """The component suffix of ``self`` below ``ancestor``.

        ``ancestor`` must be ``self`` or one of its ancestors.
        """
        if not ancestor.is_ancestor_or_self(self):
            raise InvalidDeweyCode(f"{ancestor} is not an ancestor of {self}")
        return self._components[len(ancestor._components):]

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, DeweyCode):
            return self._components == other._components
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if isinstance(other, DeweyCode):
            return self._components != other._components
        return NotImplemented

    # The four ordering dunders are written out by hand (instead of
    # ``functools.total_ordering``) because the wrapper indirection is
    # measurable in the SLCA/RTF inner loops, where Dewey comparison is the
    # single hottest operation.
    def __lt__(self, other: "DeweyCode") -> bool:
        if not isinstance(other, DeweyCode):
            return NotImplemented
        return self._components < other._components

    def __le__(self, other: "DeweyCode") -> bool:
        if not isinstance(other, DeweyCode):
            return NotImplemented
        return self._components <= other._components

    def __gt__(self, other: "DeweyCode") -> bool:
        if not isinstance(other, DeweyCode):
            return NotImplemented
        return self._components > other._components

    def __ge__(self, other: "DeweyCode") -> bool:
        if not isinstance(other, DeweyCode):
            return NotImplemented
        return self._components >= other._components

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __getitem__(self, index):
        return self._components[index]

    def __str__(self) -> str:
        return ".".join(str(part) for part in self._components)

    def __repr__(self) -> str:
        return f"DeweyCode({str(self)!r})"


def lca_of_codes(codes: Iterable[DeweyLike]) -> DeweyCode:
    """Lowest common ancestor (longest common prefix) of a set of codes.

    Raises :class:`InvalidDeweyCode` when the iterable is empty.
    """
    iterator = iter(codes)
    try:
        first = DeweyCode.coerce(next(iterator))
    except StopIteration:
        raise InvalidDeweyCode("cannot compute the LCA of zero codes") from None
    result = first
    for raw in iterator:
        result = result.common_prefix(DeweyCode.coerce(raw))
    return result


def sort_document_order(codes: Iterable[DeweyLike]) -> list:
    """Return the codes sorted in pre-order (document) order."""
    return sorted(DeweyCode.coerce(code) for code in codes)
