"""Rendering of trees and search-result fragments for humans.

The search algorithms return fragments as node sets; this module renders them
as indented text trees or as XML snippets, mirroring the fragment figures of
the paper (Figures 2 and 3).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from .dewey import DeweyCode, DeweyLike
from .node import XMLNode
from .tree import XMLTree


def render_tree(tree: XMLTree, max_nodes: Optional[int] = None,
                show_text: bool = True) -> str:
    """Render a whole tree as an indented outline."""
    return render_nodes(tree, (node.dewey for node in tree.iter_preorder()),
                        max_nodes=max_nodes, show_text=show_text)


def render_nodes(tree: XMLTree, deweys: Iterable[DeweyLike],
                 max_nodes: Optional[int] = None, show_text: bool = True,
                 highlight: Optional[Callable[[XMLNode], bool]] = None) -> str:
    """Render the given node set (a fragment) as an indented outline.

    The fragment is rendered relative to its shallowest node so the output
    matches the fragment drawings in the paper.  ``highlight`` may mark nodes
    (e.g. keyword nodes) with a trailing ``*``.
    """
    codes = sorted(DeweyCode.coerce(code) for code in deweys)
    if not codes:
        return "(empty fragment)"
    if max_nodes is not None:
        codes = codes[:max_nodes]
    base_level = min(code.level for code in codes)
    lines: List[str] = []
    for code in codes:
        node = tree.node(code)
        indent = "  " * (code.level - base_level)
        text = f' "{_truncate(node.text)}"' if show_text and node.text else ""
        marker = " *" if highlight is not None and highlight(node) else ""
        lines.append(f"{indent}{code} {node.label}{text}{marker}")
    return "\n".join(lines)


def render_fragment_xml(tree: XMLTree, deweys: Sequence[DeweyLike]) -> str:
    """Render a fragment as a nested XML snippet containing only its nodes."""
    codes = sorted(DeweyCode.coerce(code) for code in deweys)
    if not codes:
        return ""
    keep = set(codes)
    root_code = codes[0]
    lines: List[str] = []
    _render_xml_node(tree.node(root_code), keep, lines, 0)
    return "\n".join(lines)


def fragment_summary(tree: XMLTree, deweys: Sequence[DeweyLike]) -> str:
    """A one-line summary of a fragment: root label, node count, leaf labels."""
    codes = sorted(DeweyCode.coerce(code) for code in deweys)
    if not codes:
        return "empty fragment"
    root = tree.node(codes[0])
    leaf_labels = sorted({tree.node(code).label for code in codes[1:]})
    return (f"fragment rooted at {root.dewey} ({root.label}) with "
            f"{len(codes)} nodes; labels: {', '.join(leaf_labels) or '-'}")


def _render_xml_node(node: XMLNode, keep: set, lines: List[str], level: int) -> None:
    if node.dewey not in keep:
        return
    indent = "  " * level
    kept_children = [child for child in node.children if child.dewey in keep]
    attrs = "".join(f' {name}="{value}"' for name, value in node.attributes.items())
    if not kept_children and node.text:
        lines.append(f"{indent}<{node.label}{attrs}>{node.text}</{node.label}>")
        return
    if not kept_children:
        lines.append(f"{indent}<{node.label}{attrs}/>")
        return
    lines.append(f"{indent}<{node.label}{attrs}>")
    if node.text:
        lines.append(f"{indent}  {node.text}")
    for child in kept_children:
        _render_xml_node(child, keep, lines, level + 1)
    lines.append(f"{indent}</{node.label}>")


def _truncate(text: Optional[str], limit: int = 60) -> str:
    if not text:
        return ""
    return text if len(text) <= limit else text[: limit - 3] + "..."
