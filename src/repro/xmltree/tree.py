"""The XML tree model used across the library.

An :class:`XMLTree` is an immutable-ish container of :class:`XMLNode` objects
indexed by their Dewey codes.  It provides the navigation primitives the
paper's algorithms need: node lookup by Dewey code, LCA of node sets, path
extraction (the function ``I(u, v)`` in Definition 2), and copy-with-insertion
used by the axiomatic property checkers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .dewey import DeweyCode, DeweyLike, lca_of_codes
from .errors import DuplicateNode, NodeNotFound
from .node import XMLNode


class XMLTree:
    """A rooted, ordered, labelled tree with Dewey-coded nodes."""

    def __init__(self, root: XMLNode, name: str = ""):
        self.name = name
        self._root = root
        self._nodes: Dict[DeweyCode, XMLNode] = {}
        self._register_subtree(root)

    def _register_subtree(self, node: XMLNode) -> None:
        for member in node.iter_subtree():
            if member.dewey in self._nodes:
                raise DuplicateNode(f"duplicate Dewey code {member.dewey}")
            self._nodes[member.dewey] = member

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> XMLNode:
        """The root node."""
        return self._root

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, dewey: DeweyLike) -> bool:
        return DeweyCode.coerce(dewey) in self._nodes

    def __iter__(self) -> Iterator[XMLNode]:
        return self.iter_preorder()

    def node(self, dewey: DeweyLike) -> XMLNode:
        """Return the node with the given Dewey code.

        Raises :class:`NodeNotFound` when the code is absent.
        """
        code = DeweyCode.coerce(dewey)
        try:
            return self._nodes[code]
        except KeyError:
            raise NodeNotFound(f"no node with Dewey code {code}") from None

    def get(self, dewey: DeweyLike) -> Optional[XMLNode]:
        """Like :meth:`node` but returns ``None`` instead of raising."""
        return self._nodes.get(DeweyCode.coerce(dewey))

    def iter_preorder(self) -> Iterator[XMLNode]:
        """Yield every node in pre-order (document order)."""
        return self._root.iter_subtree()

    def iter_leaves(self) -> Iterator[XMLNode]:
        """Yield every leaf node in document order."""
        return (node for node in self.iter_preorder() if node.is_leaf)

    def labels(self) -> List[str]:
        """The distinct labels appearing in the tree, sorted."""
        return sorted({node.label for node in self.iter_preorder()})

    def size(self) -> int:
        """Total number of nodes."""
        return len(self._nodes)

    def max_depth(self) -> int:
        """The maximum zero-based node depth."""
        return max(node.depth for node in self.iter_preorder())

    # ------------------------------------------------------------------ #
    # LCA and path helpers
    # ------------------------------------------------------------------ #
    def lca(self, deweys: Iterable[DeweyLike]) -> XMLNode:
        """The LCA node of a non-empty set of nodes (by Dewey prefix)."""
        code = lca_of_codes(deweys)
        return self.node(code)

    def path_nodes(self, ancestor: DeweyLike, descendant: DeweyLike) -> List[XMLNode]:
        """The nodes on the path from ``ancestor`` down to ``descendant``.

        This is the paper's ``I(u, v)`` (Definition 2, footnote 3): the path
        node set between two nodes when a path exists.  Both endpoints are
        included.  Raises :class:`NodeNotFound` if either code is absent and
        ``ValueError`` if ``ancestor`` is not an ancestor-or-self of
        ``descendant``.
        """
        top = DeweyCode.coerce(ancestor)
        bottom = DeweyCode.coerce(descendant)
        if not top.is_ancestor_or_self(bottom):
            raise ValueError(f"{top} is not an ancestor of {bottom}")
        nodes = []
        for size in range(len(top), len(bottom) + 1):
            nodes.append(self.node(DeweyCode(bottom.components[:size])))
        return nodes

    def fragment_nodes(
        self, root_dewey: DeweyLike, keyword_deweys: Iterable[DeweyLike]
    ) -> List[XMLNode]:
        """All nodes of the fragment rooted at ``root_dewey``.

        The fragment is the union of the paths from the fragment root to every
        keyword node — the ``I(ECT_Q,j)`` construction of Definition 2.  The
        result is sorted in document order and contains no duplicates.
        """
        seen: Dict[DeweyCode, XMLNode] = {}
        for keyword_dewey in keyword_deweys:
            for node in self.path_nodes(root_dewey, keyword_dewey):
                seen[node.dewey] = node
        return [seen[code] for code in sorted(seen)]

    def descendants_of(self, dewey: DeweyLike) -> List[XMLNode]:
        """All strict descendants of a node, in document order."""
        return list(self.node(dewey).iter_descendants())

    # ------------------------------------------------------------------ #
    # Structural statistics
    # ------------------------------------------------------------------ #
    def label_histogram(self) -> Dict[str, int]:
        """Mapping label -> number of nodes carrying it."""
        histogram: Dict[str, int] = {}
        for node in self.iter_preorder():
            histogram[node.label] = histogram.get(node.label, 0) + 1
        return histogram

    # ------------------------------------------------------------------ #
    # Copy / mutation used by the axiomatic property checkers
    # ------------------------------------------------------------------ #
    def copy(self) -> "XMLTree":
        """A deep structural copy of the tree."""
        new_root = _copy_subtree(self._root)
        return XMLTree(new_root, name=self.name)

    def with_inserted_subtree(
        self, parent_dewey: DeweyLike, subtree_spec: "SubtreeSpec"
    ) -> "XMLTree":
        """Return a new tree with ``subtree_spec`` appended under a parent.

        The new subtree is appended as the last child of the parent; the new
        child receives the next free ordinal so existing Dewey codes are
        unchanged — exactly the "data insertion" operation the axiomatic
        properties (data monotonicity / data consistency) quantify over.
        """
        parent_code = DeweyCode.coerce(parent_dewey)
        copied = self.copy()
        parent = copied.node(parent_code)
        ordinal = parent.child_count()
        new_child = _materialize_spec(subtree_spec, parent_code.child(ordinal))
        parent.attach_child(new_child)
        copied._register_subtree(new_child)
        return copied

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"XMLTree({label} nodes={len(self._nodes)})"


class SubtreeSpec:
    """A declarative description of a subtree to insert into a tree.

    Used by the axiomatic property checkers and the dataset generators, where
    subtrees must be described before their Dewey codes are known.
    """

    __slots__ = ("label", "text", "attributes", "children")

    def __init__(
        self,
        label: str,
        text: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
        children: Optional[Sequence["SubtreeSpec"]] = None,
    ):
        self.label = label
        self.text = text
        self.attributes = dict(attributes) if attributes else {}
        self.children = list(children) if children else []

    def add(self, child: "SubtreeSpec") -> "SubtreeSpec":
        """Append a child spec and return ``self`` for chaining."""
        self.children.append(child)
        return self

    def node_count(self) -> int:
        """Number of nodes this spec will materialize into."""
        return 1 + sum(child.node_count() for child in self.children)

    def __repr__(self) -> str:
        return f"SubtreeSpec({self.label!r}, children={len(self.children)})"


def _copy_subtree(node: XMLNode) -> XMLNode:
    clone = XMLNode(node.dewey, node.label, node.text, node.attributes)
    for child in node.children:
        clone.attach_child(_copy_subtree(child))
    return clone


def _materialize_spec(spec: SubtreeSpec, dewey: DeweyCode) -> XMLNode:
    node = XMLNode(dewey, spec.label, spec.text, spec.attributes)
    for index, child_spec in enumerate(spec.children):
        node.attach_child(_materialize_spec(child_spec, dewey.child(index)))
    return node
