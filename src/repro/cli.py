"""Command-line front end (installed as ``repro-xks``).

Sub-commands
------------
``index``
    Shred XML file(s) (or a built-in dataset) into a sqlite database so later
    queries can run disk-backed without re-parsing the document.  Several
    files build a multi-document corpus database (grow it later with
    ``--add``, absorb new document versions with ``--update``, tombstone
    documents with ``--delete``).
``compact``
    Fold the delta segments written by ``index --update`` / ``--delete``
    into the database's base generation.
``verify``
    Run the storage integrity checks (mutation journal, catalog, liveness,
    posting blobs) against an indexed database; exits nonzero when any
    check fails, so scripts can gate on a clean store.
``search``
    Run a keyword query against an XML file, a built-in dataset, an indexed
    sqlite store (``--db file.db --backend sqlite``), or a whole corpus
    (``--backend corpus``, results tagged with doc ids) with ValidRTF or
    MaxMatch and print the resulting fragments.
``compare``
    Run both algorithms on one query and print the CFR / APR' / Max APR
    metrics together with the differing fragments.
``bench``
    Regenerate the Figure 5 / Figure 6 panels for the built-in datasets,
    optionally over the disk-backed (``--backend sqlite``) or sharded
    posting backend.
``datasets``
    Generate and describe the built-in synthetic datasets (optionally writing
    them to XML files).
``serve``
    Run the concurrent query-serving front end (newline-delimited JSON over
    TCP) with an engine pool, request batching and admission control.
    ``--fault-plan`` injects deterministic storage faults for chaos
    testing; ``--compact-segments`` starts the background compactor.
``loadtest``
    Drive a server (self-hosted by default) with an open- or closed-loop
    load generator and report throughput + p50/p95/p99 latency, exporting
    ``BENCH_service.json`` (``--stats`` folds the server's own counters and
    metrics snapshot into the report).
``metrics``
    Render a metrics-registry snapshot — scraped live from a server
    (``--address``) or read from a JSON artefact (``--input``) — as
    Prometheus exposition text.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .bench import (
    BACKEND_NAMES,
    default_datasets,
    render_figure5,
    render_figure6,
    run_workload,
)
from .core import SearchEngine
from .corpus import CorpusSearchEngine
from .storage import SegmentedStore, source_for_store
from .storage.errors import DocumentNotFound
from .datasets import (
    DBLPConfig,
    PAPER_QUERIES,
    XMarkConfig,
    generate_dblp,
    generate_xmark,
    publications_tree,
    team_tree,
)
from .index import InvertedIndex, document_profile
from .xmltree import XMLTree, parse_file, write_xml_file

_BUILTIN_TREES = {
    "figure-1a": publications_tree,
    "figure-1b": team_tree,
    "dblp": lambda: generate_dblp(DBLPConfig()),
    "xmark-standard": lambda: generate_xmark(XMarkConfig(scale="standard")),
    "xmark-data1": lambda: generate_xmark(XMarkConfig(scale="data1")),
    "xmark-data2": lambda: generate_xmark(XMarkConfig(scale="data2")),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-xks`` console script."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    handler = arguments.handler
    try:
        return handler(arguments)
    except CliError as error:
        print(error, file=sys.stderr)
        return 2


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xks",
        description="XML keyword search with ValidRTF / MaxMatch (EDBT 2009 "
                    "reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    index = subparsers.add_parser(
        "index", help="shred document(s) into a sqlite store for disk-backed "
                      "(or corpus) search")
    index.add_argument("documents", nargs="*", default=[], metavar="document",
                       help="path(s) to XML file(s); several files build a "
                            "multi-document corpus database (or use "
                            "--dataset)")
    index.add_argument("--dataset", default=None, choices=sorted(_BUILTIN_TREES),
                       help="index a built-in dataset instead of a file")
    index.add_argument("--db", required=True, help="sqlite database file")
    index.add_argument("--name", default=None,
                       help="stored document name (default: file stem or "
                            "dataset name; only with a single document)")
    index.add_argument("--add", action="store_true",
                       help="incrementally add to a database that already "
                            "holds other documents (guards against "
                            "accidentally mixing corpora)")
    index.add_argument("--force", action="store_true",
                       help="replace documents that are already stored")
    index.add_argument("--update", action="store_true",
                       help="absorb the document(s) as immutable delta "
                            "segments (new or changed versions) instead of "
                            "rewriting base rows; serve them immediately, "
                            "fold them later with `repro-xks compact`")
    index.add_argument("--delete", action="append", default=None,
                       metavar="DOC_ID",
                       help="tombstone a stored document (repeatable); "
                            "consulted at read time, removed by `compact`")
    index.set_defaults(handler=_command_index)

    compact = subparsers.add_parser(
        "compact", help="fold index --update/--delete delta segments into "
                        "the base generation")
    compact.add_argument("--db", required=True, help="sqlite database file")
    compact.set_defaults(handler=_command_compact)

    verify = subparsers.add_parser(
        "verify", help="check a database's integrity (journal, catalog, "
                       "liveness, posting blobs)")
    verify.add_argument("--db", required=True, help="sqlite database file")
    verify.add_argument("--json", action="store_true",
                        help="emit the typed findings as JSON instead of "
                             "the human-readable report")
    verify.set_defaults(handler=_command_verify)

    search = subparsers.add_parser("search", help="run one keyword query")
    _add_document_arguments(search)
    _add_backend_arguments(search)
    search.add_argument("query", help="keyword query, e.g. 'xml keyword search' "
                                      "or a paper query name like Q3")
    search.add_argument("--algorithm", default="validrtf",
                        choices=("validrtf", "maxmatch", "validrtf-slca",
                                 "maxmatch-slca"))
    search.add_argument("--no-text", action="store_true",
                        help="hide node text in the rendering")
    search.add_argument("--trace", action="store_true",
                        help="print the per-stage span tree (tokenize → "
                             "postings → lca → fragments) with wall times")
    search.add_argument("--top-k", type=int, default=None, metavar="K",
                        help="rank the fragments (corpus-comparable scores) "
                             "and print only the K best")
    search.add_argument("--early-terminate", action="store_true",
                        help="with --top-k on a corpus backend: visit "
                             "documents in score-upper-bound order and stop "
                             "once the K-th score provably cannot be beaten "
                             "(same answer, fewer documents searched)")
    search.set_defaults(handler=_command_search)

    compare = subparsers.add_parser("compare",
                                    help="run ValidRTF and MaxMatch side by side")
    _add_document_arguments(compare)
    _add_backend_arguments(compare)
    compare.add_argument("query", help="keyword query or paper query name")
    compare.add_argument("--trace", action="store_true",
                         help="print the span tree of both algorithm runs")
    compare.set_defaults(handler=_command_compare)

    explain = subparsers.add_parser(
        "explain", help="show per-node keep/discard decisions and the "
                        "classified differences between the two algorithms")
    _add_document_arguments(explain)
    explain.add_argument("query", help="keyword query or paper query name")
    explain.add_argument("--algorithm", default="validrtf",
                         choices=("validrtf", "maxmatch"))
    explain.add_argument("--discarded-only", action="store_true",
                         help="only list discarded nodes")
    explain.set_defaults(handler=_command_explain)

    bench = subparsers.add_parser("bench", help="regenerate Figure 5 / Figure 6")
    bench.add_argument("--dataset", default="dblp",
                       choices=sorted(default_datasets()),
                       help="benchmark dataset")
    bench.add_argument("--figure", default="both", choices=("5", "6", "both"))
    bench.add_argument("--repetitions", type=int, default=2,
                       help="timed repetitions per query (first run discarded)")
    bench.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="enable the query-result cache, so repetitions "
                            "after the first measure the hot (cache-hit) path; "
                            "--no-cache (the default) reproduces the paper's "
                            "cold per-repetition protocol")
    bench.add_argument("--cache-size", type=int, default=256,
                       help="LRU capacity of the query-result cache "
                            "(only with --cache)")
    bench.add_argument("--backend", default="memory", choices=BACKEND_NAMES,
                       help="posting backend: hot in-memory index, disk-backed "
                            "sqlite, or sharded stores (default: memory)")
    bench.add_argument("--db", default=None,
                       help="sqlite database file for --backend sqlite "
                            "(default: in-process database)")
    bench.add_argument("--shards", type=int, default=2,
                       help="shard count for --backend sharded")
    bench.add_argument("--representation", default="packed",
                       choices=("packed", "object"),
                       help="posting representation the timed engine serves "
                            "(default: packed)")
    bench.set_defaults(handler=_command_bench)

    bench_export = subparsers.add_parser(
        "bench-export",
        help="write BENCH_core.json: per-algorithm / per-backend / "
             "per-representation timings with a packed-vs-object parity guard")
    bench_export.add_argument("--dataset", action="append", default=None,
                              choices=sorted(default_datasets()),
                              help="dataset(s) to measure (repeatable; "
                                   "default: dblp)")
    bench_export.add_argument("--backend", action="append", default=None,
                              choices=BACKEND_NAMES,
                              help="backend(s) to measure (repeatable; "
                                   "default: memory)")
    bench_export.add_argument("--algorithm", action="append", default=None,
                              choices=("validrtf", "maxmatch",
                                       "validrtf-slca", "maxmatch-slca"),
                              help="algorithm(s) to time (repeatable; "
                                   "default: validrtf + maxmatch)")
    bench_export.add_argument("--repetitions", type=int, default=2,
                              help="timed repetitions per query "
                                   "(first run discarded)")
    bench_export.add_argument("--limit", type=int, default=None,
                              help="only the first N workload queries per "
                                   "dataset (smoke runs use 1)")
    bench_export.add_argument("--shards", type=int, default=2,
                              help="shard count for --backend sharded")
    bench_export.add_argument("--no-verify", action="store_true",
                              help="skip the packed-vs-object result parity "
                                   "check before timing")
    bench_export.add_argument("--output", default="BENCH_core.json",
                              help="artefact path ('-' prints to stdout only)")
    bench_export.set_defaults(handler=_command_bench_export)

    datasets = subparsers.add_parser("datasets",
                                     help="describe / export the built-in datasets")
    datasets.add_argument("--name", default=None, choices=sorted(_BUILTIN_TREES),
                          help="restrict to one dataset")
    datasets.add_argument("--output", default=None,
                          help="write the dataset(s) to XML file(s) with this prefix")
    datasets.set_defaults(handler=_command_datasets)

    serve = subparsers.add_parser(
        "serve", help="serve keyword search concurrently (JSON over TCP)")
    _add_document_arguments(serve)
    _add_backend_arguments(serve)
    _add_service_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (0 picks a free one)")
    serve.set_defaults(handler=_command_serve)

    loadtest = subparsers.add_parser(
        "loadtest", help="measure serving throughput and latency percentiles")
    _add_document_arguments(loadtest)
    _add_backend_arguments(loadtest)
    _add_service_arguments(loadtest)
    loadtest.add_argument("--address", default=None, metavar="HOST:PORT",
                          help="drive an already-running server instead of "
                               "self-hosting one in-process")
    loadtest.add_argument("--mode", default="closed",
                          choices=("closed", "open"),
                          help="closed: N users back-to-back; open: fixed "
                               "arrival rate (default: closed)")
    loadtest.add_argument("--requests", type=int, default=200,
                          help="total requests (closed loop)")
    loadtest.add_argument("--concurrency", type=int, default=4,
                          help="simulated users / client connections")
    loadtest.add_argument("--rate", type=float, default=100.0,
                          help="target aggregate requests/second (open loop)")
    loadtest.add_argument("--duration", type=float, default=2.0,
                          help="run length in seconds (open loop)")
    loadtest.add_argument("--algorithm", default="validrtf",
                          choices=("validrtf", "maxmatch", "validrtf-slca",
                                   "maxmatch-slca"))
    loadtest.add_argument("--query", action="append", default=None,
                          help="add a query to the mix (repeatable; default: "
                               "the dataset's workload / paper queries)")
    loadtest.add_argument("--output", default="BENCH_service.json",
                          help="write the JSON report here ('-' disables)")
    loadtest.add_argument("--retries", type=int, default=0,
                          help="client-side retries per request on "
                               "overloaded/timeout/degraded answers "
                               "(default: 0 — fail fast)")
    loadtest.add_argument("--stats", action="store_true",
                          help="fetch the server's stats + metrics snapshot "
                               "after the run and fold them into the report "
                               "(self-hosted runs always capture them)")
    loadtest.set_defaults(handler=_command_loadtest)

    metrics = subparsers.add_parser(
        "metrics", help="render a metrics snapshot as Prometheus text")
    source = metrics.add_mutually_exclusive_group(required=True)
    source.add_argument("--address", default=None, metavar="HOST:PORT",
                        help="scrape a running server's merged registry")
    source.add_argument("--input", default=None, metavar="FILE",
                        help="read a snapshot from a JSON file (a raw "
                             "snapshot, or a loadtest report carrying "
                             "server_metrics)")
    metrics.set_defaults(handler=_command_metrics)

    return parser


def _add_document_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--file", help="path to an XML document")
    group.add_argument("--dataset", default="figure-1a",
                       choices=sorted(_BUILTIN_TREES),
                       help="use a built-in dataset (default: figure-1a)")


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None, choices=BACKEND_NAMES,
                        help="posting backend (default: memory, or sqlite "
                             "when --db is given)")
    parser.add_argument("--db", default=None,
                        help="sqlite database created with `repro-xks index`; "
                             "queries then run disk-backed, no XML parse")
    parser.add_argument("--doc", default=None,
                        help="document name inside --db (default: the only "
                             "stored document)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for --backend sharded")
    parser.add_argument("--representation", default="packed",
                        choices=("packed", "object"),
                        help="physical posting-list form: packed flat columns "
                             "(default, zero-object hot loops) or boxed "
                             "DeweyCode lists; results are identical")


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=4,
                        help="engine-pool worker threads (default: 4)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="per-worker query-result cache capacity "
                             "(0 disables caching)")
    parser.add_argument("--batch-size", type=int, default=16,
                        help="flush a request batch at this size")
    parser.add_argument("--batch-window", type=float, default=2.0,
                        help="max milliseconds a request waits to be batched")
    parser.add_argument("--max-inflight", type=int, default=64,
                        help="admission bound: concurrent requests past the "
                             "front door before load shedding")
    parser.add_argument("--request-timeout", type=float, default=None,
                        help="per-request deadline in seconds (default: none)")
    parser.add_argument("--cid-mode", default="minmax",
                        help="default content-feature mode (per-request "
                             "override via the protocol)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log (to stderr) and count requests slower than "
                             "this many milliseconds (default: off)")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="inject deterministic storage faults, e.g. "
                             "'seed=7,error=0.05,torn=0.01,latency=0.1,"
                             "latency-ms=2,delay=100,max-faults=25' "
                             "(needs a store-backed backend)")
    parser.add_argument("--compact-segments", type=int, default=None,
                        metavar="N",
                        help="background-compact once N delta segments "
                             "accumulate (needs --backend corpus --db; "
                             "default: off)")
    parser.add_argument("--compact-interval-ms", type=float, default=500.0,
                        help="poll period of the background compactor's "
                             "trigger check in milliseconds (default: 500)")


# ---------------------------------------------------------------------- #
# Commands
# ---------------------------------------------------------------------- #
def _command_index(arguments: argparse.Namespace) -> int:
    if arguments.delete:
        return _command_index_delete(arguments)
    if arguments.documents and arguments.dataset:
        print("give XML file(s) or --dataset, not both", file=sys.stderr)
        return 2
    if arguments.update and arguments.force:
        print("--update and --force are different write paths: --update "
              "shadows the old version in a delta segment, --force rewrites "
              "base rows; pick one", file=sys.stderr)
        return 2
    if arguments.name and len(arguments.documents) > 1:
        print("--name only applies to a single document; corpus ingestion "
              "names each document after its file stem", file=sys.stderr)
        return 2
    # (name, tree factory) pairs: parsing is deferred so a naming clash is
    # reported before any XML is read.
    pending: List[tuple] = []
    if arguments.documents:
        for path in arguments.documents:
            name = (arguments.name if len(arguments.documents) == 1
                    and arguments.name else Path(path).stem)
            pending.append((name, lambda p=path: parse_file(p)))
    elif arguments.dataset:
        dataset = arguments.dataset
        pending.append((arguments.name or dataset,
                        _BUILTIN_TREES[dataset]))
    else:
        print("nothing to index: give XML file(s) or --dataset",
              file=sys.stderr)
        return 2
    names = [name for name, _ in pending]
    clashes = sorted({name for name in names if names.count(name) > 1})
    if clashes:
        print(f"duplicate document name(s): {', '.join(clashes)} "
              f"(rename the files or index them separately with --name)",
              file=sys.stderr)
        return 2
    store = SegmentedStore(arguments.db)
    stored = store.documents()
    if arguments.update:
        # Delta-segment path: new and changed versions land as immutable
        # segments; nothing existing is rewritten, so no guard applies.
        for name, tree_factory in pending:
            segment = store.update_document(tree_factory(), name)
            stats = store.document_stats(name)
            verb = "updated" if name in stored else "added"
            print(f"{verb} {name!r} in {arguments.db} (delta segment "
                  f"{segment}): {stats['nodes']} element rows, "
                  f"{stats['values']} value rows, {stats['labels']} labels")
        print(f"{arguments.db} now carries {store.segment_count()} delta "
              f"segment(s); fold them with `repro-xks compact "
              f"--db {arguments.db}`")
        return 0
    foreign = sorted(set(stored) - set(names))
    growing = [name for name in names if name not in stored]
    # --force only governs replacing same-named documents; adding *new*
    # documents next to existing ones grows a corpus and needs an explicit
    # --add so corpora are never mixed by accident.
    if foreign and growing and not arguments.add:
        print(f"{arguments.db} already holds other document(s): "
              f"{', '.join(foreign)} (use --add to grow the corpus)",
              file=sys.stderr)
        return 1
    # Every conflict is decidable up front; report before ingesting anything
    # so a failed run never leaves the database partially grown.
    replaced = [name for name in names if name in stored]
    if replaced and not arguments.force:
        print(f"document(s) {', '.join(replaced)} already stored in "
              f"{arguments.db} (use --force to replace)", file=sys.stderr)
        return 1
    for name, tree_factory in pending:
        if name in stored:
            store.drop_document(name)
        store.store_tree(tree_factory(), name)
        stats = store.document_stats(name)
        print(f"indexed {name!r} into {arguments.db}: {stats['nodes']} "
              f"element rows, {stats['values']} value rows, "
              f"{stats['labels']} labels")
    documents = store.documents()
    if len(documents) > 1:
        print(f"{arguments.db} now holds {len(documents)} documents "
              f"({', '.join(documents)}); search them together with "
              f"--backend corpus")
    return 0


def _command_index_delete(arguments: argparse.Namespace) -> int:
    """``index --delete DOC_ID``: tombstone stored document(s)."""
    if arguments.documents or arguments.dataset:
        print("--delete removes stored documents; it takes no XML file or "
              "--dataset", file=sys.stderr)
        return 2
    if arguments.update or arguments.force or arguments.add:
        print("--delete cannot be combined with --update/--force/--add",
              file=sys.stderr)
        return 2
    if not Path(arguments.db).exists():
        print(f"no such database file: {arguments.db}", file=sys.stderr)
        return 2
    store = SegmentedStore(arguments.db)
    for name in arguments.delete:
        try:
            segment = store.delete_document(name)
        except DocumentNotFound:
            stored = store.documents()
            print(f"no document {name!r} in {arguments.db}"
                  + (f"; stored: {', '.join(stored)}" if stored else ""),
                  file=sys.stderr)
            return 1
        print(f"deleted {name!r} from {arguments.db} (tombstone segment "
              f"{segment})")
    remaining = store.documents()
    print(f"{arguments.db} now holds {len(remaining)} live document(s)"
          + (f" ({', '.join(remaining)})" if remaining else "")
          + f"; reclaim space with `repro-xks compact --db {arguments.db}`")
    return 0


def _command_compact(arguments: argparse.Namespace) -> int:
    """``compact --db``: fold delta segments into the base generation."""
    if not Path(arguments.db).exists():
        raise CliError(f"no such database file: {arguments.db} "
                       f"(create it with `repro-xks index`)")
    store = SegmentedStore(arguments.db)
    stats = store.compact()
    documents = store.documents()
    print(f"compacted {arguments.db}: folded {stats['folded']} updated "
          f"document(s), dropped {stats['dropped']} deleted document(s), "
          f"absorbed {stats['segments']} delta segment(s); "
          f"{len(documents)} live document(s) remain")
    return 0


def _command_verify(arguments: argparse.Namespace) -> int:
    """``verify --db``: run the integrity checks, exit nonzero when dirty."""
    import json

    from .storage import verify_database

    if not Path(arguments.db).exists():
        raise CliError(f"no such database file: {arguments.db} "
                       f"(create it with `repro-xks index`)")
    report = verify_database(arguments.db)
    if arguments.json:
        print(json.dumps(report.payload(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _command_search(arguments: argparse.Namespace) -> int:
    engine = _build_engine(arguments)
    query = _resolve_query(arguments.query)
    if arguments.top_k is not None:
        return _ranked_search(engine, query, arguments)
    if arguments.early_terminate:
        raise CliError("--early-terminate needs --top-k")
    if arguments.trace:
        from .obs import render_trace

        result, trace = engine.search_traced(query, arguments.algorithm)
    else:
        result = engine.search(query, arguments.algorithm)
    print(f"query: {result.query}  algorithm: {result.algorithm}  "
          f"backend: {engine.backend_id}  fragments: {result.count}")
    print(engine.render_result(result, show_text=not arguments.no_text))
    if arguments.trace:
        print()
        print(render_trace(trace))
    return 0


def _ranked_search(engine, query: str, arguments: argparse.Namespace) -> int:
    """``search --top-k``: corpus-comparable ranked retrieval."""
    from .core import SearchError, explain_score, render_score_explanation

    if arguments.top_k < 0:
        raise CliError("--top-k must be non-negative")
    try:
        if isinstance(engine, CorpusSearchEngine):
            outcome = engine.rank_search(
                query, arguments.algorithm, top_k=arguments.top_k,
                early_terminate=arguments.early_terminate)
            rows = [(entry.doc_id, entry.ranked) for entry in outcome.ranked]
            visit_note = (f"  documents visited: {outcome.docs_visited}"
                          f"/{outcome.docs_selected}")
        else:
            if arguments.early_terminate:
                raise CliError("--early-terminate needs a corpus backend "
                               "(serve several documents with "
                               "--backend corpus)")
            ranked = engine.rank(engine.search(query, arguments.algorithm))
            rows = [(None, fragment)
                    for fragment in ranked[:arguments.top_k]]
            visit_note = ""
    except SearchError as error:
        raise CliError(str(error)) from None
    print(f"query: {query}  algorithm: {arguments.algorithm}  "
          f"backend: {engine.backend_id}  top-k: {arguments.top_k}"
          f"{visit_note}")
    for position, (doc_id, fragment) in enumerate(rows, start=1):
        where = f"[{doc_id}] " if doc_id is not None else ""
        print(f"{position:3d}. {where}root {fragment.fragment.root}")
        print(render_score_explanation(explain_score(fragment),
                                       indent="     "))
    return 0


def _command_compare(arguments: argparse.Namespace) -> int:
    engine = _build_engine(arguments)
    query = _resolve_query(arguments.query)
    trace = None
    if arguments.trace:
        outcome, trace = engine.compare_traced(query)
    else:
        outcome = engine.compare(query)
    print(f"query: {query}")
    if isinstance(engine, CorpusSearchEngine):
        summary = outcome.summary
        print(f"documents: {len(outcome.documents)}  "
              f"mean CFR: {summary['mean_cfr']:.3f}  "
              f"mean APR': {summary['mean_apr_prime']:.3f}  "
              f"mean Max APR: {summary['mean_max_apr']:.3f}")
        for doc_id, document_outcome in outcome.documents:
            _print_comparison_report(document_outcome.report,
                                     prefix=f"[{doc_id}] ")
        _print_trace(trace)
        return 0
    _print_comparison_report(outcome.report)
    _print_trace(trace)
    return 0


def _print_trace(trace) -> None:
    """Render a finished trace after a command's main output (if traced)."""
    if trace is not None:
        from .obs import render_trace

        print()
        print(render_trace(trace))


def _print_comparison_report(report, prefix: str = "") -> None:
    print(f"{prefix}RTFs: {report.lca_count}  CFR: {report.cfr:.3f}  "
          f"APR': {report.apr_prime:.3f}  Max APR: {report.max_apr:.3f}")
    for comparison in report.comparisons:
        marker = "=" if comparison.identical else "≠"
        print(f"{prefix}  root {comparison.root} {marker}  MaxMatch keeps "
              f"{comparison.maxmatch_size}, ValidRTF keeps "
              f"{comparison.validrtf_size} (extra pruned "
              f"{comparison.extra_pruned})")


def _command_explain(arguments: argparse.Namespace) -> int:
    from .core import render_explanation  # local import keeps startup light

    tree = _load_tree(arguments)
    query = _resolve_query(arguments.query)
    engine = SearchEngine(tree)
    explanations = engine.explain(query, arguments.algorithm)
    print(f"query: {query}  algorithm: {arguments.algorithm}  "
          f"fragments: {len(explanations)}")
    for explanation in explanations:
        print()
        print(render_explanation(explanation,
                                 show_kept=not arguments.discarded_only))
    comparison = engine.explain_comparison(query)
    summary = comparison.summary()
    print()
    print(f"ValidRTF vs MaxMatch: {summary['false_positive_fixes']} "
          f"false-positive fix(es), {summary['redundancy_fixes']} "
          f"redundancy fix(es)")
    for difference in comparison.differences:
        print(f"  {difference.dewey} <{difference.label}> — {difference.kind.value}")
    return 0


def _command_bench(arguments: argparse.Namespace) -> int:
    from .bench import engine_for_backend

    specs = default_datasets()
    spec = specs[arguments.dataset]
    cache_size = arguments.cache_size if arguments.cache else 0
    if arguments.cache and arguments.cache_size <= 0:
        print("--cache requires a positive --cache-size", file=sys.stderr)
        return 2
    try:
        engine = engine_for_backend(spec.tree_factory(), arguments.backend,
                                    cache_size=cache_size,
                                    shards=arguments.shards,
                                    db_path=arguments.db, document=spec.name,
                                    representation=arguments.representation)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    run = run_workload(spec, engine=engine, repetitions=arguments.repetitions)
    if arguments.figure in ("5", "both"):
        print(render_figure5(run))
        print()
    if arguments.figure in ("6", "both"):
        print(render_figure6(run))
    if arguments.cache:
        print()
        print(f"query cache: {engine.cache_stats()}")
    return 0


def _command_bench_export(arguments: argparse.Namespace) -> int:
    from .bench import (
        RepresentationParityError,
        run_core_bench,
        write_core_bench,
    )

    datasets = arguments.dataset or ["dblp"]
    backends = arguments.backend or ["memory"]
    algorithms = tuple(arguments.algorithm or ("validrtf", "maxmatch"))
    try:
        payload = run_core_bench(
            datasets=datasets,
            backends=backends,
            algorithms=algorithms,
            repetitions=arguments.repetitions,
            limit=arguments.limit,
            shards=arguments.shards,
            verify=not arguments.no_verify,
        )
    except RepresentationParityError as error:
        print(f"representation parity violated: {error}", file=sys.stderr)
        return 1
    for summary in payload["summary"]:
        ratio = summary.get("packed_over_object")
        ratio_text = f"  packed/object: {ratio:.3f}" if ratio else ""
        print(f"{summary['dataset']}/{summary['backend']}/"
              f"{summary['algorithm']}: "
              f"packed {summary.get('packed_total_ms', 0.0):.2f} ms, "
              f"object {summary.get('object_total_ms', 0.0):.2f} ms"
              f"{ratio_text}")
    corpus = payload.get("corpus")
    if corpus:
        ratio = corpus.get("corpus_over_sequential")
        ratio_text = f"  corpus/sequential: {ratio:.3f}" if ratio else ""
        print(f"corpus[{corpus['documents']} docs]: "
              f"corpus {corpus['corpus_total_ms']:.2f} ms, "
              f"sequential-per-doc {corpus['sequential_total_ms']:.2f} ms"
              f"{ratio_text}")
    if arguments.output and arguments.output != "-":
        try:
            path = write_core_bench(payload, arguments.output)
        except RepresentationParityError as error:
            # --no-verify runs can print summaries but never persist the
            # artefact: BENCH_core.json is only written from verified runs.
            print(f"artefact not written: {error}", file=sys.stderr)
            return 1
        print(f"artefact written to {path}")
    return 0


def _command_datasets(arguments: argparse.Namespace) -> int:
    names = [arguments.name] if arguments.name else sorted(_BUILTIN_TREES)
    for name in names:
        tree = _BUILTIN_TREES[name]()
        profile = document_profile(tree, InvertedIndex(tree), name=name)
        print(f"{name}: {profile.node_count} nodes, depth {profile.max_depth}, "
              f"{profile.distinct_labels} labels, vocabulary "
              f"{profile.vocabulary_size}")
        if arguments.output:
            path = f"{arguments.output}{name}.xml"
            write_xml_file(tree, path)
            print(f"  written to {path}")
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    import asyncio

    from .service import SearchServer

    config, tree = _service_setup(arguments)
    try:
        service = config.build(tree)
    except ValueError as error:
        raise CliError(str(error)) from None
    server = SearchServer(service, arguments.host, arguments.port)

    async def main() -> None:
        host, port = await server.start()
        print(f"serving backend={config.backend} workers={config.workers} "
              f"batch={config.max_batch_size}/"
              f"{config.batch_window_seconds * 1000:g}ms "
              f"on {host}:{port} (Ctrl-C stops)")
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _command_loadtest(arguments: argparse.Namespace) -> int:
    from .service import RetryPolicy, loadtest, write_service_bench

    address = None
    if arguments.address:
        host, _, port = arguments.address.rpartition(":")
        if not host or not port.isdigit():
            raise CliError(f"--address must be HOST:PORT, got "
                           f"{arguments.address!r}")
        address = (host, int(port))
    if arguments.retries < 0:
        raise CliError(f"--retries must be >= 0, got {arguments.retries}")
    retry = (RetryPolicy(attempts=arguments.retries + 1)
             if arguments.retries else None)
    # Driving a remote server needs no local document or database at all.
    config, tree = _service_setup(arguments, remote=address is not None)
    queries = arguments.query or _default_query_mix(arguments)
    try:
        report = loadtest(config, queries, tree=tree, address=address,
                          mode=arguments.mode, requests=arguments.requests,
                          concurrency=arguments.concurrency,
                          rate=arguments.rate, duration=arguments.duration,
                          algorithm=arguments.algorithm,
                          fetch_stats=arguments.stats, retry=retry)
    except ValueError as error:
        raise CliError(str(error)) from None
    print(report.summary())
    if arguments.stats and report.server_stats:
        batcher = report.server_stats.get("batcher", {})
        admission = report.server_stats.get("admission", {})
        print(f"server: batches={batcher.get('batches', 0)} "
              f"mean_batch={batcher.get('mean_batch_size', 0.0):.2f} "
              f"queue_wait_ms={batcher.get('mean_queue_wait_ms', 0.0):.3f}  "
              f"shed={admission.get('rejected', 0)} "
              f"timed_out={admission.get('timed_out', 0)} "
              f"peak_inflight={admission.get('peak_inflight', 0)}")
    if arguments.output and arguments.output != "-":
        path = write_service_bench(report, arguments.output)
        print(f"report written to {path}")
    return 0


def _command_metrics(arguments: argparse.Namespace) -> int:
    """Render a registry snapshot (live server or JSON file) as Prometheus
    exposition text."""
    import json

    from .obs import render_prometheus

    if arguments.address:
        from .service import ServiceClient

        host, _, port = arguments.address.rpartition(":")
        if not host or not port.isdigit():
            raise CliError(f"--address must be HOST:PORT, got "
                           f"{arguments.address!r}")
        try:
            with ServiceClient(host, int(port)) as client:
                snapshot = client.metrics()
        except (ConnectionError, OSError) as error:
            raise CliError(f"cannot scrape {arguments.address}: "
                           f"{error}") from None
    else:
        if not Path(arguments.input).exists():
            raise CliError(f"no such file: {arguments.input}")
        with open(arguments.input, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        snapshot = _snapshot_from_payload(payload)
        if snapshot is None:
            raise CliError(
                f"{arguments.input} carries no metrics snapshot (expected a "
                f"raw counters/gauges/histograms object, a loadtest report "
                f"with server_metrics, or a BENCH_service.json artefact)")
    print(render_prometheus(snapshot), end="")
    return 0


def _snapshot_from_payload(payload: object):
    """Find a registry snapshot inside a JSON payload, or ``None``."""
    if not isinstance(payload, dict):
        return None
    if "counters" in payload and "histograms" in payload:
        return payload
    if isinstance(payload.get("server_metrics"), dict) and \
            payload["server_metrics"]:
        return payload["server_metrics"]
    reports = payload.get("service_bench")
    if isinstance(reports, list):
        # The newest report with a captured snapshot wins.
        for report in reversed(reports):
            found = _snapshot_from_payload(report)
            if found is not None:
                return found
    return None


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _resolve_stored_document(arguments: argparse.Namespace) -> str:
    """The document name a ``--db`` invocation should serve.

    Shared by ``search``/``compare`` (:func:`_build_engine`) and
    ``serve``/``loadtest`` (:func:`_service_setup`): validates the database
    file exists and holds documents, and resolves ``--doc`` (defaulting to
    the only stored document).
    """
    if arguments.file:
        raise CliError("--db and --file are different documents; give "
                       "one or the other")
    if not Path(arguments.db).exists():
        raise CliError(f"no such database file: {arguments.db} "
                       f"(create it with `repro-xks index`)")
    store = SegmentedStore(arguments.db)
    documents = store.documents()
    store.close()
    if not documents:
        raise CliError(f"{arguments.db} holds no indexed documents "
                       f"(run `repro-xks index` first)")
    document = arguments.doc or (
        documents[0] if len(documents) == 1 else None)
    if document is None:
        raise CliError(f"{arguments.db} holds several documents "
                       f"({', '.join(documents)}); pick one with --doc")
    if document not in documents:
        raise CliError(f"no document {document!r} in {arguments.db}; "
                       f"stored: {', '.join(documents)}")
    return document


def _resolve_corpus_documents(arguments: argparse.Namespace):
    """The document subset a corpus ``--db`` invocation should serve.

    ``None`` means every stored document; ``--doc`` restricts to one (doc ids
    can also be filtered per request through the service's ``doc_filter``).
    """
    if arguments.file:
        raise CliError("--db and --file are different documents; give "
                       "one or the other")
    if not Path(arguments.db).exists():
        raise CliError(f"no such database file: {arguments.db} "
                       f"(create it with `repro-xks index`)")
    store = SegmentedStore(arguments.db)
    documents = store.documents()
    store.close()
    if not documents:
        raise CliError(f"{arguments.db} holds no indexed documents "
                       f"(run `repro-xks index` first)")
    if arguments.doc:
        if arguments.doc not in documents:
            raise CliError(f"no document {arguments.doc!r} in {arguments.db}; "
                           f"stored: {', '.join(documents)}")
        return [arguments.doc]
    return None


def _service_setup(arguments: argparse.Namespace, remote: bool = False):
    """The (ServiceConfig, tree) pair of a serve/loadtest invocation.

    Mirrors :func:`_build_engine`'s backend resolution: ``--db`` serves an
    already-indexed sqlite file without parsing any XML; otherwise the
    document is loaded/generated and handed to the pool builder.  With
    ``remote=True`` (load-testing an already-running server) no document is
    loaded or probed at all — the config only annotates the report.
    """
    from .core.node_record import CID_MODES
    from .service import ServiceConfig

    backend = arguments.backend or ("sqlite" if arguments.db else "memory")
    tree = None
    document = "service"
    documents = None
    if remote:
        pass  # the serving process owns the document
    elif backend == "sqlite" and arguments.db:
        document = _resolve_stored_document(arguments)
    elif backend == "corpus" and arguments.db:
        # Validates the database; --doc restricts the served subset.
        resolved = _resolve_corpus_documents(arguments)
        documents = tuple(resolved) if resolved else None
    else:
        if arguments.db:
            raise CliError(f"--db needs --backend sqlite or corpus, "
                           f"not {backend!r}")
        tree = _load_tree(arguments)
        document = getattr(arguments, "dataset", None) or "service"
    if arguments.workers < 1:
        raise CliError(f"--workers must be positive, got {arguments.workers}")
    if arguments.shards < 1:
        raise CliError(f"--shards must be positive, got {arguments.shards}")
    if arguments.batch_size < 1:
        raise CliError(f"--batch-size must be positive, got "
                       f"{arguments.batch_size}")
    if arguments.batch_window < 0:
        raise CliError(f"--batch-window must be >= 0, got "
                       f"{arguments.batch_window}")
    if arguments.max_inflight < 1:
        raise CliError(f"--max-inflight must be positive, got "
                       f"{arguments.max_inflight}")
    if arguments.request_timeout is not None and arguments.request_timeout <= 0:
        raise CliError(f"--request-timeout must be positive, got "
                       f"{arguments.request_timeout}")
    if arguments.cid_mode not in CID_MODES:
        raise CliError(f"unknown --cid-mode {arguments.cid_mode!r}; "
                       f"expected one of {list(CID_MODES)}")
    if arguments.slow_query_ms is not None and arguments.slow_query_ms < 0:
        raise CliError(f"--slow-query-ms must be >= 0, got "
                       f"{arguments.slow_query_ms}")
    if arguments.fault_plan and not remote:
        from .faults import FaultPlan
        try:
            FaultPlan.parse(arguments.fault_plan)
        except ValueError as error:
            raise CliError(f"bad --fault-plan: {error}") from None
        if backend not in ("sqlite", "sharded", "corpus") or \
                (backend == "corpus" and not arguments.db):
            raise CliError("--fault-plan needs a store-backed backend "
                           "(--backend sqlite/sharded, or corpus with --db)")
    if arguments.compact_segments is not None and not remote:
        if arguments.compact_segments < 1:
            raise CliError(f"--compact-segments must be positive, got "
                           f"{arguments.compact_segments}")
        if backend != "corpus" or not arguments.db or documents is not None:
            raise CliError("--compact-segments needs a mutable corpus "
                           "backend (--backend corpus --db, without --doc)")
    if arguments.compact_interval_ms <= 0:
        raise CliError(f"--compact-interval-ms must be positive, got "
                       f"{arguments.compact_interval_ms}")
    config = ServiceConfig(
        backend=backend,
        workers=arguments.workers,
        cache_size=max(0, arguments.cache_size),
        shards=arguments.shards,
        db_path=arguments.db,
        document=document,
        cid_mode=arguments.cid_mode,
        max_batch_size=arguments.batch_size,
        batch_window_seconds=arguments.batch_window / 1000.0,
        max_inflight=arguments.max_inflight,
        timeout_seconds=arguments.request_timeout,
        representation=getattr(arguments, "representation", "packed"),
        documents=documents,
        slow_query_seconds=(arguments.slow_query_ms / 1000.0
                            if arguments.slow_query_ms is not None else None),
        fault_plan=None if remote else arguments.fault_plan,
        compact_segments=None if remote else arguments.compact_segments,
        compact_interval_seconds=arguments.compact_interval_ms / 1000.0,
    )
    return config, tree


def _default_query_mix(arguments: argparse.Namespace) -> List[str]:
    """The loadtest query mix: the dataset's workload, or the paper queries."""
    from .datasets import workload_for

    dataset = getattr(arguments, "dataset", None)
    if dataset:
        try:
            return [query.text for query in workload_for(dataset)]
        except ValueError:
            pass
    return list(PAPER_QUERIES.values())


def _load_tree(arguments: argparse.Namespace) -> XMLTree:
    if getattr(arguments, "file", None):
        return parse_file(arguments.file)
    return _BUILTIN_TREES[arguments.dataset]()


class CliError(RuntimeError):
    """Raised by helpers when a command cannot proceed; printed, exit 2."""


def _build_engine(arguments: argparse.Namespace) -> SearchEngine:
    """The engine for a search/compare invocation, per the chosen backend.

    ``--backend memory`` (the default) parses/generates the document and
    searches the in-memory index.  ``--backend sqlite`` with ``--db`` opens an
    indexed store and searches **disk-backed, without the document in RAM**
    (rendering degrades to Dewey/label output); without ``--db`` the document
    is shredded into an in-process store first.  ``--backend sharded`` fans
    the document out over ``--shards`` in-process stores.
    """
    from .bench import engine_for_backend

    backend = arguments.backend or ("sqlite" if arguments.db else "memory")
    representation = getattr(arguments, "representation", "packed")
    if backend == "corpus" and arguments.db:
        # Corpus path: serve every document of the database (or the --doc
        # subset) with doc-id-tagged answers, no XML parse at all.  The
        # segmented store serves documents living in delta segments
        # (index --update) exactly like base-generation ones.
        documents = _resolve_corpus_documents(arguments)
        store = SegmentedStore(arguments.db)
        return CorpusSearchEngine.from_store(store, documents=documents,
                                             representation=representation)
    if backend == "sqlite" and arguments.db:
        # Disk-backed path: open an indexed database, no XML parse at all.
        document = _resolve_stored_document(arguments)
        store = SegmentedStore(arguments.db)
        return SearchEngine(source=source_for_store(
            store, document, representation=representation))
    if arguments.db:
        raise CliError(f"--db needs --backend sqlite or corpus, "
                       f"not {backend!r}")
    try:
        return engine_for_backend(_load_tree(arguments), backend,
                                  shards=arguments.shards, document="cli",
                                  representation=representation)
    except ValueError as error:
        raise CliError(str(error)) from None


def _resolve_query(raw: str) -> str:
    return PAPER_QUERIES.get(raw.upper(), raw)


if __name__ == "__main__":
    sys.exit(main())
