"""Command-line front end (installed as ``repro-xks``).

Sub-commands
------------
``search``
    Run a keyword query against an XML file (or a built-in dataset) with
    ValidRTF or MaxMatch and print the resulting fragments.
``compare``
    Run both algorithms on one query and print the CFR / APR' / Max APR
    metrics together with the differing fragments.
``bench``
    Regenerate the Figure 5 / Figure 6 panels for the built-in datasets.
``datasets``
    Generate and describe the built-in synthetic datasets (optionally writing
    them to XML files).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .bench import (
    default_datasets,
    render_figure5,
    render_figure6,
    run_workload,
)
from .core import SearchEngine
from .datasets import (
    DBLPConfig,
    PAPER_QUERIES,
    XMarkConfig,
    generate_dblp,
    generate_xmark,
    publications_tree,
    team_tree,
)
from .index import InvertedIndex, document_profile
from .xmltree import XMLTree, parse_file, write_xml_file

_BUILTIN_TREES = {
    "figure-1a": publications_tree,
    "figure-1b": team_tree,
    "dblp": lambda: generate_dblp(DBLPConfig()),
    "xmark-standard": lambda: generate_xmark(XMarkConfig(scale="standard")),
    "xmark-data1": lambda: generate_xmark(XMarkConfig(scale="data1")),
    "xmark-data2": lambda: generate_xmark(XMarkConfig(scale="data2")),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-xks`` console script."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    handler = arguments.handler
    return handler(arguments)


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xks",
        description="XML keyword search with ValidRTF / MaxMatch (EDBT 2009 "
                    "reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    search = subparsers.add_parser("search", help="run one keyword query")
    _add_document_arguments(search)
    search.add_argument("query", help="keyword query, e.g. 'xml keyword search' "
                                      "or a paper query name like Q3")
    search.add_argument("--algorithm", default="validrtf",
                        choices=("validrtf", "maxmatch", "validrtf-slca",
                                 "maxmatch-slca"))
    search.add_argument("--no-text", action="store_true",
                        help="hide node text in the rendering")
    search.set_defaults(handler=_command_search)

    compare = subparsers.add_parser("compare",
                                    help="run ValidRTF and MaxMatch side by side")
    _add_document_arguments(compare)
    compare.add_argument("query", help="keyword query or paper query name")
    compare.set_defaults(handler=_command_compare)

    explain = subparsers.add_parser(
        "explain", help="show per-node keep/discard decisions and the "
                        "classified differences between the two algorithms")
    _add_document_arguments(explain)
    explain.add_argument("query", help="keyword query or paper query name")
    explain.add_argument("--algorithm", default="validrtf",
                         choices=("validrtf", "maxmatch"))
    explain.add_argument("--discarded-only", action="store_true",
                         help="only list discarded nodes")
    explain.set_defaults(handler=_command_explain)

    bench = subparsers.add_parser("bench", help="regenerate Figure 5 / Figure 6")
    bench.add_argument("--dataset", default="dblp",
                       choices=sorted(default_datasets()),
                       help="benchmark dataset")
    bench.add_argument("--figure", default="both", choices=("5", "6", "both"))
    bench.add_argument("--repetitions", type=int, default=2,
                       help="timed repetitions per query (first run discarded)")
    bench.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="enable the query-result cache, so repetitions "
                            "after the first measure the hot (cache-hit) path; "
                            "--no-cache (the default) reproduces the paper's "
                            "cold per-repetition protocol")
    bench.add_argument("--cache-size", type=int, default=256,
                       help="LRU capacity of the query-result cache "
                            "(only with --cache)")
    bench.set_defaults(handler=_command_bench)

    datasets = subparsers.add_parser("datasets",
                                     help="describe / export the built-in datasets")
    datasets.add_argument("--name", default=None, choices=sorted(_BUILTIN_TREES),
                          help="restrict to one dataset")
    datasets.add_argument("--output", default=None,
                          help="write the dataset(s) to XML file(s) with this prefix")
    datasets.set_defaults(handler=_command_datasets)

    return parser


def _add_document_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--file", help="path to an XML document")
    group.add_argument("--dataset", default="figure-1a",
                       choices=sorted(_BUILTIN_TREES),
                       help="use a built-in dataset (default: figure-1a)")


# ---------------------------------------------------------------------- #
# Commands
# ---------------------------------------------------------------------- #
def _command_search(arguments: argparse.Namespace) -> int:
    tree = _load_tree(arguments)
    query = _resolve_query(arguments.query)
    engine = SearchEngine(tree)
    result = engine.search(query, arguments.algorithm)
    print(f"query: {result.query}  algorithm: {result.algorithm}  "
          f"fragments: {result.count}")
    print(engine.render_result(result, show_text=not arguments.no_text))
    return 0


def _command_compare(arguments: argparse.Namespace) -> int:
    tree = _load_tree(arguments)
    query = _resolve_query(arguments.query)
    engine = SearchEngine(tree)
    outcome = engine.compare(query)
    report = outcome.report
    print(f"query: {query}")
    print(f"RTFs: {report.lca_count}  CFR: {report.cfr:.3f}  "
          f"APR': {report.apr_prime:.3f}  Max APR: {report.max_apr:.3f}")
    for comparison in report.comparisons:
        marker = "=" if comparison.identical else "≠"
        print(f"  root {comparison.root} {marker}  MaxMatch keeps "
              f"{comparison.maxmatch_size}, ValidRTF keeps "
              f"{comparison.validrtf_size} (extra pruned "
              f"{comparison.extra_pruned})")
    return 0


def _command_explain(arguments: argparse.Namespace) -> int:
    from .core import render_explanation  # local import keeps startup light

    tree = _load_tree(arguments)
    query = _resolve_query(arguments.query)
    engine = SearchEngine(tree)
    explanations = engine.explain(query, arguments.algorithm)
    print(f"query: {query}  algorithm: {arguments.algorithm}  "
          f"fragments: {len(explanations)}")
    for explanation in explanations:
        print()
        print(render_explanation(explanation,
                                 show_kept=not arguments.discarded_only))
    comparison = engine.explain_comparison(query)
    summary = comparison.summary()
    print()
    print(f"ValidRTF vs MaxMatch: {summary['false_positive_fixes']} "
          f"false-positive fix(es), {summary['redundancy_fixes']} "
          f"redundancy fix(es)")
    for difference in comparison.differences:
        print(f"  {difference.dewey} <{difference.label}> — {difference.kind.value}")
    return 0


def _command_bench(arguments: argparse.Namespace) -> int:
    specs = default_datasets()
    spec = specs[arguments.dataset]
    cache_size = arguments.cache_size if arguments.cache else 0
    if arguments.cache and arguments.cache_size <= 0:
        print("--cache requires a positive --cache-size", file=sys.stderr)
        return 2
    engine = SearchEngine(spec.tree_factory(), cache_size=cache_size)
    run = run_workload(spec, engine=engine, repetitions=arguments.repetitions)
    if arguments.figure in ("5", "both"):
        print(render_figure5(run))
        print()
    if arguments.figure in ("6", "both"):
        print(render_figure6(run))
    if arguments.cache:
        print()
        print(f"query cache: {engine.cache_stats()}")
    return 0


def _command_datasets(arguments: argparse.Namespace) -> int:
    names = [arguments.name] if arguments.name else sorted(_BUILTIN_TREES)
    for name in names:
        tree = _BUILTIN_TREES[name]()
        profile = document_profile(tree, InvertedIndex(tree), name=name)
        print(f"{name}: {profile.node_count} nodes, depth {profile.max_depth}, "
              f"{profile.distinct_labels} labels, vocabulary "
              f"{profile.vocabulary_size}")
        if arguments.output:
            path = f"{arguments.output}{name}.xml"
            write_xml_file(tree, path)
            print(f"  written to {path}")
    return 0


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _load_tree(arguments: argparse.Namespace) -> XMLTree:
    if getattr(arguments, "file", None):
        return parse_file(arguments.file)
    return _BUILTIN_TREES[arguments.dataset]()


def _resolve_query(raw: str) -> str:
    return PAPER_QUERIES.get(raw.upper(), raw)


if __name__ == "__main__":
    sys.exit(main())
