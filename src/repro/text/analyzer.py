"""Content extraction for XML nodes.

Implements the paper's notions of node content and tree content:

* ``C_v`` — the word set implied in a node's label, text and attributes
  (Section 1).
* ``TC_v`` — the *tree content set* of a node: the union of the contents of
  all keyword nodes in the subtree rooted at ``v`` (Definition 3).
* ``TK_v`` — the *tree keyword set*: ``TC_v ∩ Q`` (equal to MaxMatch's
  ``dMatch``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from ..xmltree import DeweyCode, XMLNode, XMLTree
from .tokenizer import DEFAULT_TOKENIZER, Tokenizer


class ContentAnalyzer:
    """Compute node content sets over an :class:`XMLTree`.

    Results are memoized per node (keyed by Dewey code) because the search
    algorithms repeatedly ask for the same contents while building RTFs.
    """

    def __init__(self, tree: XMLTree, tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        self.tree = tree
        self.tokenizer = tokenizer
        self._content_cache: Dict[DeweyCode, FrozenSet[str]] = {}
        self._subtree_cache: Dict[DeweyCode, FrozenSet[str]] = {}

    # ------------------------------------------------------------------ #
    # Node-level content
    # ------------------------------------------------------------------ #
    def node_content(self, node: XMLNode) -> FrozenSet[str]:
        """The content word set ``C_v`` of a single node."""
        cached = self._content_cache.get(node.dewey)
        if cached is not None:
            return cached
        words = frozenset(self.tokenizer.word_set(node.raw_strings()))
        self._content_cache[node.dewey] = words
        return words

    def is_keyword_node(self, node: XMLNode, keywords: Iterable[str]) -> bool:
        """True iff the node's own content intersects the query."""
        content = self.node_content(node)
        return any(keyword in content for keyword in keywords)

    def matched_keywords(self, node: XMLNode, keywords: Iterable[str]) -> Set[str]:
        """The query keywords present in the node's own content."""
        content = self.node_content(node)
        return {keyword for keyword in keywords if keyword in content}

    # ------------------------------------------------------------------ #
    # Subtree-level content (Definition 3)
    # ------------------------------------------------------------------ #
    def subtree_content(self, node: XMLNode) -> FrozenSet[str]:
        """All content words in the subtree rooted at ``node``.

        This is the unrestricted variant of ``TC_v`` where every descendant
        contributes; the RTF-restricted variant (only keyword nodes inside the
        fragment contribute) is computed by the node-record construction in
        :mod:`repro.core.node_record`.
        """
        cached = self._subtree_cache.get(node.dewey)
        if cached is not None:
            return cached
        words: Set[str] = set()
        for member in node.iter_subtree():
            words |= self.node_content(member)
        frozen = frozenset(words)
        self._subtree_cache[node.dewey] = frozen
        return frozen

    def subtree_keywords(self, node: XMLNode, keywords: Iterable[str]) -> Set[str]:
        """``TK_v`` over the full subtree: subtree content intersected with Q."""
        content = self.subtree_content(node)
        return {keyword for keyword in keywords if keyword in content}

    # ------------------------------------------------------------------ #
    # Query helpers
    # ------------------------------------------------------------------ #
    def keyword_nodes(self, keyword: str):
        """All nodes whose own content contains ``keyword`` (document order)."""
        return [node for node in self.tree.iter_preorder()
                if keyword in self.node_content(node)]

    def clear_cache(self) -> None:
        """Drop memoized content sets (after tree mutation in tests)."""
        self._content_cache.clear()
        self._subtree_cache.clear()
