"""Tokenization of element names, text values and attribute strings.

Keyword matching in the paper is word based: the content ``C_v`` of a node is
a *word set*, and a node is a keyword node when its content intersects the
query.  The tokenizer therefore lower-cases, splits on non-alphanumeric
boundaries and (optionally) removes stop words and single characters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Set

from .stopwords import DEFAULT_STOPWORDS

_WORD_PATTERN = re.compile(r"[A-Za-z0-9]+")


@dataclass(frozen=True)
class TokenizerConfig:
    """Configuration of the tokenizer.

    Attributes
    ----------
    lowercase:
        Lower-case every token (the paper's matching is case-insensitive).
    remove_stopwords:
        Drop English stop words (the paper filters them with Lucene).
    min_token_length:
        Drop tokens shorter than this many characters.
    stopwords:
        The stop-word set used when ``remove_stopwords`` is true.
    """

    lowercase: bool = True
    remove_stopwords: bool = True
    min_token_length: int = 1
    stopwords: FrozenSet[str] = field(default=DEFAULT_STOPWORDS)


class Tokenizer:
    """Split raw strings into the word tokens used for keyword matching."""

    def __init__(self, config: TokenizerConfig = TokenizerConfig()):
        self.config = config

    def tokenize(self, text: str) -> List[str]:
        """Tokenize one string into a list of tokens (order preserved)."""
        if not text:
            return []
        tokens = _WORD_PATTERN.findall(text)
        if self.config.lowercase:
            tokens = [token.lower() for token in tokens]
        if self.config.min_token_length > 1:
            tokens = [t for t in tokens if len(t) >= self.config.min_token_length]
        if self.config.remove_stopwords:
            stop = self.config.stopwords
            tokens = [t for t in tokens if t.lower() not in stop]
        return tokens

    def tokenize_many(self, texts: Iterable[str]) -> List[str]:
        """Tokenize several strings and concatenate the token lists."""
        tokens: List[str] = []
        for text in texts:
            tokens.extend(self.tokenize(text))
        return tokens

    def word_set(self, texts: Iterable[str]) -> Set[str]:
        """The set of distinct tokens across several strings."""
        return set(self.tokenize_many(texts))

    def normalize_keyword(self, keyword: str) -> str:
        """Normalize a query keyword the same way document words are."""
        tokens = self.tokenize(keyword)
        if not tokens:
            # A keyword that is entirely a stop word still needs a canonical
            # form so queries like "the" do not silently vanish.
            fallback = _WORD_PATTERN.findall(keyword)
            return fallback[0].lower() if fallback else keyword.strip().lower()
        return tokens[0]

    def normalize_query(self, keywords: Iterable[str]) -> List[str]:
        """Normalize a whole keyword query, dropping duplicates in order."""
        seen: Set[str] = set()
        result: List[str] = []
        for keyword in keywords:
            normalized = self.normalize_keyword(keyword)
            if normalized and normalized not in seen:
                seen.add(normalized)
                result.append(normalized)
        return result


DEFAULT_TOKENIZER = Tokenizer()
