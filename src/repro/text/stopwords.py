"""English stop-word list.

The paper filters stop words with Lucene's English stop-word filter plus the
list published at syger.com (reference [22]).  We bundle the classic Lucene
``StandardAnalyzer`` English list extended with a few common function words so
no network access is required.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

# The Lucene StandardAnalyzer English stop set ...
_LUCENE_ENGLISH = (
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in",
    "into", "is", "it", "no", "not", "of", "on", "or", "such", "that", "the",
    "their", "then", "there", "these", "they", "this", "to", "was", "will",
    "with",
)

# ... extended with frequent English function words from public stop lists.
_EXTENDED = (
    "about", "above", "after", "again", "all", "also", "am", "any", "because",
    "been", "before", "being", "below", "between", "both", "can", "cannot",
    "could", "did", "do", "does", "doing", "down", "during", "each", "few",
    "from", "further", "had", "has", "have", "having", "he", "her", "here",
    "hers", "him", "his", "how", "i", "its", "itself", "me", "more", "most",
    "my", "nor", "off", "once", "only", "other", "our", "ours", "out", "over",
    "own", "same", "she", "should", "so", "some", "than", "them", "through",
    "too", "under", "until", "up", "very", "we", "were", "what", "when",
    "where", "which", "while", "who", "whom", "why", "would", "you", "your",
)

DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(_LUCENE_ENGLISH) | frozenset(_EXTENDED)


def is_stopword(word: str, stopwords: Iterable[str] = DEFAULT_STOPWORDS) -> bool:
    """True iff ``word`` (case-insensitively) is a stop word."""
    return word.lower() in stopwords


def filter_stopwords(words: Iterable[str],
                     stopwords: Iterable[str] = DEFAULT_STOPWORDS) -> list:
    """Drop stop words from a word sequence, preserving order."""
    stop = set(stopwords)
    return [word for word in words if word.lower() not in stop]
