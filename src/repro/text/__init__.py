"""Text analysis substrate: tokenization, stop words, node content extraction."""

from .stopwords import DEFAULT_STOPWORDS, filter_stopwords, is_stopword
from .tokenizer import DEFAULT_TOKENIZER, Tokenizer, TokenizerConfig
from .analyzer import ContentAnalyzer

__all__ = [
    "DEFAULT_STOPWORDS",
    "is_stopword",
    "filter_stopwords",
    "Tokenizer",
    "TokenizerConfig",
    "DEFAULT_TOKENIZER",
    "ContentAnalyzer",
]
