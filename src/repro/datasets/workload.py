"""Query workloads for the Figure 5 / Figure 6 experiments.

Section 5.1 builds keyword queries "by randomly combining" the workload
keywords so the queries "cover different frequency requirements".  The exact
query compositions are only given through abbreviated axis labels that are not
fully recoverable from the paper, so this module constructs a comparable
deterministic workload: for each dataset, a fixed list of queries mixing two
to six keywords drawn from the low-, medium- and high-frequency tiers of the
published keyword table (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .vocabulary import (
    DBLP_ABBREVIATIONS,
    DBLP_PAPER_FREQUENCIES,
    XMARK_ABBREVIATIONS,
    XMARK_PAPER_FREQUENCIES,
)


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload query: a short label and its keyword list."""

    label: str
    keywords: Tuple[str, ...]

    @property
    def text(self) -> str:
        """The query as a whitespace-separated string."""
        return " ".join(self.keywords)

    @property
    def size(self) -> int:
        """Number of keywords."""
        return len(self.keywords)


#: The DBLP workload (20 queries, mirroring the 20-query DBLP axis of
#: Figures 5(a)/6(a)).  Keywords are referred to by name; labels concatenate
#: their abbreviation letters like the paper does ("kr" = keyword recognition).
_DBLP_QUERY_KEYWORDS: Sequence[Tuple[str, ...]] = (
    ("keyword", "searching"),
    ("keyword", "recognition"),
    ("keyword", "algorithm"),
    ("data", "retrieval"),
    ("probabilistic", "xml"),
    ("algorithm", "dynamic"),
    ("sigmod", "tree"),
    ("tree", "query", "semantics"),
    ("probabilistic", "similarity", "xml"),
    ("tree", "pattern", "algorithm"),
    ("xml", "keyword", "retrieval"),
    ("dynamic", "probabilistic", "efficient"),
    ("dynamic", "probabilistic", "efficient", "retrieval"),
    ("xml", "keyword", "retrieval", "algorithm", "automata"),
    ("similarity", "searching", "xml", "efficient", "tree", "data", "recognition"),
    ("xml", "data", "keyword", "retrieval", "algorithm"),
    ("xml", "algorithm", "dynamic", "pattern", "vldb", "efficient"),
    ("xml", "data", "keyword", "retrieval"),
    ("understanding", "similarity", "henry", "searching"),
    ("keyword", "probabilistic", "sigmod", "query", "semantics", "efficient"),
)

#: The XMark workload (18 queries, mirroring the 18-query XMark axes of
#: Figures 5(b)–(d) / 6(b)–(d)).  The same queries run on all three scales.
_XMARK_QUERY_KEYWORDS: Sequence[Tuple[str, ...]] = (
    ("particle", "dominator"),
    ("particle", "threshold"),
    ("particle", "preventions"),
    ("chronicle", "method"),
    ("description", "order"),
    ("preventions", "threshold"),
    ("dominator", "chronicle", "method"),
    ("chronicle", "method", "strings"),
    ("invention", "egypt", "leon"),
    ("strings", "threshold", "chronicle"),
    ("preventions", "description", "order"),
    ("particle", "dominator", "chronicle", "method"),
    ("chronicle", "method", "strings", "unjust"),
    ("strings", "unjust", "invention", "egypt"),
    ("invention", "particle", "threshold", "method"),
    ("preventions", "description", "order", "invention"),
    ("dominator", "chronicle", "method", "strings", "unjust"),
    ("particle", "dominator", "chronicle", "method", "strings", "unjust"),
)


def dblp_workload() -> List[WorkloadQuery]:
    """The 20-query DBLP workload."""
    return [_make_query(keywords, DBLP_ABBREVIATIONS)
            for keywords in _DBLP_QUERY_KEYWORDS]


def xmark_workload() -> List[WorkloadQuery]:
    """The 18-query XMark workload (shared by all three scales)."""
    return [_make_query(keywords, XMARK_ABBREVIATIONS)
            for keywords in _XMARK_QUERY_KEYWORDS]


def workload_for(dataset: str) -> List[WorkloadQuery]:
    """The workload of a dataset name (``"dblp"`` or ``"xmark*"``)."""
    if dataset.startswith("dblp"):
        return dblp_workload()
    if dataset.startswith("xmark"):
        return xmark_workload()
    raise ValueError(f"no workload defined for dataset {dataset!r}")


def workload_summary(queries: Sequence[WorkloadQuery],
                     frequencies: Dict[str, object]) -> List[Dict[str, object]]:
    """Tabular summary of a workload (per-query size and keyword frequencies)."""
    rows: List[Dict[str, object]] = []
    for query in queries:
        rows.append({
            "label": query.label,
            "keywords": query.text,
            "size": query.size,
            "paper_frequencies": [frequencies.get(keyword) for keyword in query.keywords],
        })
    return rows


def _make_query(keywords: Tuple[str, ...],
                abbreviations: Dict[str, str]) -> WorkloadQuery:
    label = "".join(abbreviations.get(keyword, keyword[0]) for keyword in keywords)
    return WorkloadQuery(label=label, keywords=keywords)


def validate_workloads() -> None:
    """Sanity check: every workload keyword appears in the published tables."""
    for keywords in _DBLP_QUERY_KEYWORDS:
        for keyword in keywords:
            if keyword not in DBLP_PAPER_FREQUENCIES:
                raise ValueError(f"DBLP workload uses unknown keyword {keyword!r}")
    for keywords in _XMARK_QUERY_KEYWORDS:
        for keyword in keywords:
            if keyword not in XMARK_PAPER_FREQUENCIES:
                raise ValueError(f"XMark workload uses unknown keyword {keyword!r}")
