"""Datasets: paper figure instances, synthetic DBLP / XMark generators, workloads."""

from .figures import PAPER_QUERIES, paper_query, publications_tree, team_tree
from .vocabulary import (
    DBLP_ABBREVIATIONS,
    DBLP_PAPER_FREQUENCIES,
    FILLER_WORDS,
    XMARK_ABBREVIATIONS,
    XMARK_PAPER_FREQUENCIES,
    dblp_target_frequencies,
    xmark_target_frequencies,
)
from .dblp import DBLPConfig, default_dblp_tree, generate_dblp
from .xmark import XMARK_SCALES, XMarkConfig, generate_xmark, xmark_suite
from .workload import (
    WorkloadQuery,
    dblp_workload,
    validate_workloads,
    workload_for,
    workload_summary,
    xmark_workload,
)

__all__ = [
    "PAPER_QUERIES",
    "paper_query",
    "publications_tree",
    "team_tree",
    "DBLP_PAPER_FREQUENCIES",
    "XMARK_PAPER_FREQUENCIES",
    "DBLP_ABBREVIATIONS",
    "XMARK_ABBREVIATIONS",
    "FILLER_WORDS",
    "dblp_target_frequencies",
    "xmark_target_frequencies",
    "DBLPConfig",
    "generate_dblp",
    "default_dblp_tree",
    "XMarkConfig",
    "generate_xmark",
    "xmark_suite",
    "XMARK_SCALES",
    "WorkloadQuery",
    "dblp_workload",
    "xmark_workload",
    "workload_for",
    "workload_summary",
    "validate_workloads",
]
