"""Vocabularies and target keyword frequencies for the synthetic datasets.

Section 5.1 lists, for each dataset, the exact keywords the query workloads
are built from together with their document frequencies.  The generators in
:mod:`repro.datasets.dblp` and :mod:`repro.datasets.xmark` plant those
keywords so that the *relative* frequencies (rare vs frequent keywords and the
roughly x1 / x3 / x6 growth across the XMark scales) match the paper at a
laptop-scale document size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: DBLP workload keywords with the frequencies reported in Section 5.1
#: (dataset dblp20040213, 197.6 MB).
DBLP_PAPER_FREQUENCIES: Dict[str, int] = {
    "keyword": 90,
    "similarity": 1242,
    "recognition": 6447,
    "algorithm": 14181,
    "data": 25840,
    "probabilistic": 2284,
    "xml": 2121,
    "dynamic": 7281,
    "sigmod": 3983,
    "tree": 3549,
    "query": 3560,
    "automata": 3337,
    "pattern": 6513,
    "retrieval": 5111,
    "efficient": 8279,
    "understanding": 1450,
    "searching": 4618,
    "vldb": 2313,
    "henry": 1322,
    "semantics": 3694,
}

#: XMark workload keywords with the (standard, data1, data2) frequencies
#: reported in Section 5.1.
XMARK_PAPER_FREQUENCIES: Dict[str, Sequence[int]] = {
    "particle": (12, 33, 69),
    "dominator": (56, 150, 285),
    "threshold": (123, 405, 804),
    "chronicle": (426, 1286, 2568),
    "method": (552, 1667, 3356),
    "strings": (615, 1847, 3620),
    "unjust": (1000, 3044, 6150),
    "invention": (1546, 4715, 9404),
    "egypt": (2064, 5255, 12466),
    "leon": (2519, 7647, 15210),
    "preventions": (66216, 199365, 397672),
    "description": (11681, 35168, 70230),
    "order": (12705, 38141, 76271),
}

#: Abbreviation letters used to name workload queries (the paper abbreviates
#: each keyword by an underlined letter; the exact letters are unreadable in
#: the figure axes, so a deterministic mapping is fixed here and documented in
#: EXPERIMENTS.md).
DBLP_ABBREVIATIONS: Dict[str, str] = {
    "keyword": "k", "similarity": "s", "recognition": "r", "algorithm": "a",
    "data": "d", "probabilistic": "p", "xml": "x", "dynamic": "y",
    "sigmod": "g", "tree": "t", "query": "q", "automata": "u", "pattern": "n",
    "retrieval": "l", "efficient": "e", "understanding": "i", "searching": "c",
    "vldb": "v", "henry": "h", "semantics": "m",
}

XMARK_ABBREVIATIONS: Dict[str, str] = {
    "particle": "a", "dominator": "t", "threshold": "d", "chronicle": "c",
    "method": "m", "strings": "s", "unjust": "u", "invention": "i",
    "egypt": "e", "leon": "l", "preventions": "v", "description": "d2",
    "order": "o",
}

#: Generic filler words used to pad titles, abstracts and descriptions.  None
#: of them collides with a workload keyword or with a word used by the
#: figure-1 instances' queries.
FILLER_WORDS: List[str] = [
    "analysis", "approach", "architecture", "benchmark", "cluster", "complex",
    "compression", "concurrent", "database", "design", "distributed",
    "evaluation", "experiment", "framework", "graph", "hardware", "index",
    "integration", "language", "learning", "logic", "management", "memory",
    "model", "network", "optimization", "parallel", "performance", "planning",
    "processing", "protocol", "relational", "robust", "scalable", "schema",
    "stream", "storage", "system", "technique", "theory", "transaction",
    "verification", "visualization", "workload", "adaptive", "incremental",
    "partition", "replication", "sampling", "scheduling",
]

#: First and last names used for synthetic authors and people.
FIRST_NAMES: List[str] = [
    "alice", "bruno", "carla", "daniel", "elena", "felix", "grace", "hugo",
    "irene", "jonas", "karin", "lucas", "maria", "nadia", "oscar", "paula",
    "quentin", "rosa", "stefan", "tanja", "ulrich", "vera", "walter", "xenia",
    "yann", "zoe",
]

LAST_NAMES: List[str] = [
    "anders", "bauer", "costa", "duval", "ekman", "ferrara", "garnier",
    "hansen", "ibarra", "jensen", "keller", "lombard", "moreau", "novak",
    "olsen", "petit", "quiroga", "ricci", "silva", "tanaka", "ueda", "varga",
    "weber", "xavier", "yamada", "zimmer",
]

#: Venue names for the synthetic bibliography (the workload keywords
#: ``sigmod`` and ``vldb`` appear in documents through these).
VENUES: List[str] = ["sigmod", "vldb", "icde", "edbt", "cikm", "www", "kdd"]

#: Countries / cities for the synthetic auction site.
PLACES: List[str] = [
    "argentina", "brazil", "canada", "denmark", "estonia", "finland",
    "germany", "hungary", "iceland", "japan", "kenya", "lisbon", "madrid",
    "norway", "oslo", "portugal", "quebec", "rome", "sweden", "tokyo",
]

#: Small vocabulary used for the auction-site free-text fields.  Real XMark
#: generates its text from a fixed Shakespeare word list, which makes the
#: keyword distribution "less meaningful" (Section 5.3); keeping this pool
#: deliberately small reproduces that behaviour — many text fields end up with
#: identical content features, which is what drives the large APR'/Max APR
#: values on the synthetic datasets.
XMARK_TEXT_WORDS: List[str] = [
    "gold", "honour", "kingdom", "merchant", "noble", "purse", "quarrel",
    "sailor", "sonnet", "tempest", "throne", "voyage",
]

#: Auction item adjectives and nouns.
ITEM_WORDS: List[str] = [
    "antique", "brass", "ceramic", "copper", "crystal", "engraved", "gilded",
    "handmade", "ivory", "lacquered", "marble", "ornate", "painted", "rustic",
    "silver", "velvet", "vintage", "walnut", "wooden", "woven",
]


def scaled_frequency(paper_frequency: int, scale: float, minimum: int = 1) -> int:
    """Scale a paper-reported frequency down to laptop-size documents."""
    return max(minimum, round(paper_frequency * scale))


def dblp_target_frequencies(scale: float) -> Dict[str, int]:
    """Target plant counts for the DBLP keywords at a given down-scale."""
    return {keyword: scaled_frequency(frequency, scale)
            for keyword, frequency in DBLP_PAPER_FREQUENCIES.items()}


def xmark_target_frequencies(scale_index: int, scale: float) -> Dict[str, int]:
    """Target plant counts for the XMark keywords at one of the three scales.

    ``scale_index`` selects the paper column (0 = standard, 1 = data1,
    2 = data2); ``scale`` down-scales the paper's absolute counts.
    """
    if scale_index not in (0, 1, 2):
        raise ValueError("scale_index must be 0 (standard), 1 (data1) or 2 (data2)")
    return {keyword: scaled_frequency(frequencies[scale_index], scale)
            for keyword, frequencies in XMARK_PAPER_FREQUENCIES.items()}
