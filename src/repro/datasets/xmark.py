"""Synthetic XMark-like auction-site generator.

The paper's synthetic experiments use three XMark documents (standard /
data1 / data2, 111–670 MB).  XMark itself is a C generator that is not
available offline, so this module generates a structurally similar auction
site — ``site`` with ``regions`` / ``people`` / ``open_auctions`` /
``closed_auctions`` / ``categories`` — at three scale factors, planting the
paper's XMark workload keywords so their frequencies grow across the scales
with the same ×1 / ×3 / ×6 progression the paper reports (see DESIGN.md).

Unlike the bibliography generator, keywords are planted *uniformly across
unrelated text fields* (item descriptions, person watches, auction
annotations); this reproduces the "less meaningful keyword distribution" of
synthetic data that makes APR' > 0 and Max APR ≈ 1 in Figure 6(b)–(d).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..xmltree import TreeBuilder, XMLTree
from .vocabulary import (
    FILLER_WORDS,
    FIRST_NAMES,
    ITEM_WORDS,
    LAST_NAMES,
    PLACES,
    XMARK_TEXT_WORDS,
    xmark_target_frequencies,
)

#: The names of the three scales used in the paper.
XMARK_SCALES = ("standard", "data1", "data2")

#: Relative document sizes of the three scales (the paper's documents grow
#: roughly ×3 and ×6 over the standard one).
_SCALE_MULTIPLIERS = {"standard": 1.0, "data1": 3.0, "data2": 6.0}


@dataclass(frozen=True)
class XMarkConfig:
    """Configuration of the synthetic auction site.

    Attributes
    ----------
    scale:
        One of ``"standard"``, ``"data1"``, ``"data2"``.
    base_items:
        Number of items in the *standard* document; the other scales multiply
        this by 3 and 6 respectively (people and auctions follow).
    keyword_scale:
        Down-scale factor applied to the paper's absolute keyword counts.
    min_occurrences:
        Floor (at the *standard* scale) for every keyword's plant count; the
        other scales multiply it by their size multiplier.  The paper's rarest
        XMark keyword still has 12/33/69 occurrences, so without a floor the
        down-scaling would collapse rare keywords to a single occurrence and
        the workload queries would stop producing multi-fragment results.
    seed:
        Seed of the deterministic random generator.
    """

    scale: str = "standard"
    base_items: int = 120
    keyword_scale: float = 0.004
    min_occurrences: int = 6
    seed: int = 2009

    def __post_init__(self):
        if self.scale not in XMARK_SCALES:
            raise ValueError(f"scale must be one of {XMARK_SCALES}")
        if self.base_items < 1:
            raise ValueError("base_items must be positive")
        if self.keyword_scale <= 0:
            raise ValueError("keyword_scale must be positive")
        if self.min_occurrences < 1:
            raise ValueError("min_occurrences must be positive")

    @property
    def multiplier(self) -> float:
        return _SCALE_MULTIPLIERS[self.scale]

    @property
    def items(self) -> int:
        return max(1, round(self.base_items * self.multiplier))

    @property
    def people(self) -> int:
        return max(1, round(self.base_items * 0.8 * self.multiplier))

    @property
    def open_auctions(self) -> int:
        return max(1, round(self.base_items * 0.6 * self.multiplier))

    @property
    def closed_auctions(self) -> int:
        return max(1, round(self.base_items * 0.4 * self.multiplier))

    @property
    def categories(self) -> int:
        return max(1, round(self.base_items * 0.2 * self.multiplier))

    @property
    def scale_index(self) -> int:
        return XMARK_SCALES.index(self.scale)


def generate_xmark(config: XMarkConfig = XMarkConfig()) -> XMLTree:
    """Generate one synthetic auction-site document."""
    # Derive a per-scale seed deterministically (string hashes are randomized
    # between interpreter runs, so they must not be used here).
    rng = random.Random(config.seed * 31 + config.scale_index)
    scaled = xmark_target_frequencies(config.scale_index, config.keyword_scale)
    floor = max(1, round(config.min_occurrences * config.multiplier))
    targets = {keyword: max(floor, count) for keyword, count in scaled.items()}

    slots = _text_slot_count(config)
    plan = _keyword_plan(rng, targets, slots)
    slot_cursor = _SlotCursor(plan)

    builder = TreeBuilder("site", name=f"xmark-{config.scale}")
    _emit_regions(builder, rng, config, slot_cursor)
    _emit_people(builder, rng, config, slot_cursor)
    _emit_open_auctions(builder, rng, config, slot_cursor)
    _emit_closed_auctions(builder, rng, config, slot_cursor)
    _emit_categories(builder, rng, config, slot_cursor)
    return builder.build()


def xmark_suite(base_items: int = 120, keyword_scale: float = 0.002,
                seed: int = 2009) -> Dict[str, XMLTree]:
    """The three documents of the paper's scaling experiment."""
    return {
        scale: generate_xmark(XMarkConfig(scale=scale, base_items=base_items,
                                          keyword_scale=keyword_scale, seed=seed))
        for scale in XMARK_SCALES
    }


# ---------------------------------------------------------------------- #
# Keyword planting
# ---------------------------------------------------------------------- #
class _SlotCursor:
    """Hands out the planted keywords for consecutive text slots."""

    def __init__(self, plan: Dict[int, List[str]]):
        self._plan = plan
        self._next = 0

    def take(self) -> List[str]:
        planted = self._plan.get(self._next, [])
        self._next += 1
        return planted


def _text_slot_count(config: XMarkConfig) -> int:
    # One description per item, one annotation per auction, one watch-list
    # entry per person, one description per category.
    return (config.items + config.open_auctions + config.closed_auctions
            + config.people + config.categories)


def _keyword_plan(rng: random.Random, targets: Dict[str, int],
                  slots: int) -> Dict[int, List[str]]:
    plan: Dict[int, List[str]] = {}
    for keyword, count in targets.items():
        for _ in range(count):
            slot = rng.randrange(slots)
            plan.setdefault(slot, []).append(keyword)
    return plan


# ---------------------------------------------------------------------- #
# Sections
# ---------------------------------------------------------------------- #
def _emit_regions(builder: TreeBuilder, rng: random.Random, config: XMarkConfig,
                  slots: _SlotCursor) -> None:
    region_names = ("africa", "asia", "australia", "europe", "namerica", "samerica")
    builder.element("regions")
    items_per_region = _spread(config.items, len(region_names))
    item_id = 0
    for region_name, item_count in zip(region_names, items_per_region):
        builder.element(region_name)
        for _ in range(item_count):
            builder.element("item", attributes={"id": f"item{item_id}"})
            builder.text_element("name", _item_name(rng))
            builder.text_element("location", rng.choice(PLACES))
            builder.text_element("quantity", str(rng.randint(1, 5)))
            builder.element("description")
            builder.text_element("text", _sentence(rng, 12, extra=slots.take()))
            builder.up()
            builder.text_element("shipping", rng.choice(
                ("internationally", "regionally", "locally")))
            builder.up()
            item_id += 1
        builder.up()
    builder.up()


def _emit_people(builder: TreeBuilder, rng: random.Random, config: XMarkConfig,
                 slots: _SlotCursor) -> None:
    builder.element("people")
    for person_id in range(config.people):
        builder.element("person", attributes={"id": f"person{person_id}"})
        name = f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
        builder.text_element("name", name)
        builder.text_element("emailaddress",
                             f"{name.split()[0]}@{rng.choice(PLACES)}.example")
        builder.element("address")
        builder.text_element("city", rng.choice(PLACES))
        builder.text_element("country", rng.choice(PLACES))
        builder.up()
        builder.element("profile")
        builder.text_element("interest", _sentence(rng, 6, extra=slots.take()))
        builder.text_element("education", rng.choice(
            ("graduate", "college", "highschool", "other")))
        builder.up()
        builder.up()
    builder.up()


def _emit_open_auctions(builder: TreeBuilder, rng: random.Random,
                        config: XMarkConfig, slots: _SlotCursor) -> None:
    builder.element("open_auctions")
    for auction_id in range(config.open_auctions):
        builder.element("open_auction", attributes={"id": f"open{auction_id}"})
        builder.text_element("initial", f"{rng.uniform(1, 200):.2f}")
        builder.text_element("current", f"{rng.uniform(10, 900):.2f}")
        for _ in range(rng.randint(0, 3)):
            builder.element("bidder")
            builder.text_element("date", _date(rng))
            builder.text_element("increase", f"{rng.uniform(1, 30):.2f}")
            builder.up()
        builder.text_element("itemref", f"item{rng.randrange(config.items)}")
        builder.element("annotation")
        builder.element("description")
        builder.text_element("text", _sentence(rng, 10, extra=slots.take()))
        builder.up()
        builder.up()
        builder.up()
    builder.up()


def _emit_closed_auctions(builder: TreeBuilder, rng: random.Random,
                          config: XMarkConfig, slots: _SlotCursor) -> None:
    builder.element("closed_auctions")
    for auction_id in range(config.closed_auctions):
        builder.element("closed_auction", attributes={"id": f"closed{auction_id}"})
        builder.text_element("buyer", f"person{rng.randrange(config.people)}")
        builder.text_element("seller", f"person{rng.randrange(config.people)}")
        builder.text_element("price", f"{rng.uniform(5, 500):.2f}")
        builder.text_element("date", _date(rng))
        builder.text_element("itemref", f"item{rng.randrange(config.items)}")
        builder.element("annotation")
        builder.element("description")
        builder.text_element("text", _sentence(rng, 10, extra=slots.take()))
        builder.up()
        builder.up()
        builder.up()
    builder.up()


def _emit_categories(builder: TreeBuilder, rng: random.Random, config: XMarkConfig,
                     slots: _SlotCursor) -> None:
    builder.element("categories")
    for category_id in range(config.categories):
        builder.element("category", attributes={"id": f"category{category_id}"})
        builder.text_element("name", rng.choice(FILLER_WORDS))
        builder.element("description")
        builder.text_element("text", _sentence(rng, 8, extra=slots.take()))
        builder.up()
        builder.up()
    builder.up()


# ---------------------------------------------------------------------- #
# Small helpers
# ---------------------------------------------------------------------- #
def _spread(total: int, buckets: int) -> List[int]:
    base = total // buckets
    remainder = total % buckets
    return [base + (1 if index < remainder else 0) for index in range(buckets)]


def _sentence(rng: random.Random, length: int,
              extra: Optional[Sequence[str]] = None) -> str:
    # Free text comes from the deliberately small XMark word pool (see
    # vocabulary.XMARK_TEXT_WORDS); shorter sentences and a small pool make
    # content-feature collisions frequent, as on the real synthetic data.
    words = [rng.choice(XMARK_TEXT_WORDS) for _ in range(max(2, length // 2))]
    for word in extra or ():
        words.insert(rng.randrange(len(words) + 1), word)
    return " ".join(words)


def _item_name(rng: random.Random) -> str:
    return f"{rng.choice(ITEM_WORDS)} {rng.choice(ITEM_WORDS)}"


def _date(rng: random.Random) -> str:
    return f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/{rng.randint(1999, 2008)}"
