"""Synthetic DBLP-like bibliography generator.

The paper's real-data experiments use the 197.6 MB ``dblp20040213`` dump,
which is not redistributable here; this generator produces a structurally
faithful bibliography (a ``dblp`` root with ``article`` / ``inproceedings``
entries carrying authors, title, venue, year, pages and optional citations)
whose workload keywords appear with the paper's *relative* frequencies scaled
to a configurable document size (see DESIGN.md, substitution table).

Two properties of the real data matter for the Figure 6 shape and are
reproduced deliberately:

* regular publication records are *self-complete* — inside one record the
  keyword-bearing fields have distinct labels (title vs venue vs author), so
  ValidRTF rarely prunes more than MaxMatch on record-rooted fragments
  (APR' ≈ 0 on DBLP);
* the extreme fragment rooted near the document root spans many sibling
  records with identical labels and overlapping keyword sets, where ValidRTF
  prunes substantially more (Max APR ≥ 0.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..xmltree import TreeBuilder, XMLTree
from .vocabulary import (
    FILLER_WORDS,
    FIRST_NAMES,
    LAST_NAMES,
    VENUES,
    dblp_target_frequencies,
)


@dataclass(frozen=True)
class DBLPConfig:
    """Configuration of the synthetic bibliography.

    Attributes
    ----------
    publications:
        Number of publication records.
    keyword_scale:
        Down-scale factor applied to the paper's keyword frequencies
        (``0.01`` keeps 1% of the absolute counts).
    seed:
        Seed of the deterministic random generator.
    max_authors:
        Maximum number of authors per record.
    citation_probability:
        Probability that a record carries a ``citations`` element.
    """

    publications: int = 400
    keyword_scale: float = 0.01
    seed: int = 2009
    max_authors: int = 4
    citation_probability: float = 0.25

    def __post_init__(self):
        if self.publications < 1:
            raise ValueError("publications must be positive")
        if self.keyword_scale <= 0:
            raise ValueError("keyword_scale must be positive")


def generate_dblp(config: DBLPConfig = DBLPConfig()) -> XMLTree:
    """Generate the synthetic bibliography as an :class:`XMLTree`."""
    rng = random.Random(config.seed)
    targets = dblp_target_frequencies(config.keyword_scale)
    plan = _keyword_plan(rng, targets, config.publications)

    builder = TreeBuilder("dblp", name="dblp-synthetic")
    for record_index in range(config.publications):
        planted = plan.get(record_index, [])
        _emit_record(builder, rng, record_index, planted, config)
    return builder.build()


def default_dblp_tree(publications: int = 400, seed: int = 2009) -> XMLTree:
    """Convenience wrapper with the default keyword scaling."""
    return generate_dblp(DBLPConfig(publications=publications, seed=seed))


# ---------------------------------------------------------------------- #
# Internal helpers
# ---------------------------------------------------------------------- #
def _keyword_plan(rng: random.Random, targets: Dict[str, int],
                  publications: int) -> Dict[int, List[str]]:
    """Assign every planted keyword occurrence to a publication record."""
    plan: Dict[int, List[str]] = {}
    for keyword, count in targets.items():
        for _ in range(count):
            record = rng.randrange(publications)
            plan.setdefault(record, []).append(keyword)
    return plan


def _emit_record(builder: TreeBuilder, rng: random.Random, record_index: int,
                 planted: Sequence[str], config: DBLPConfig) -> None:
    record_label = "article" if rng.random() < 0.5 else "inproceedings"
    builder.element(record_label, attributes={"key": f"rec{record_index}"})

    author_count = rng.randint(1, config.max_authors)
    for _ in range(author_count):
        builder.text_element("author", _person_name(rng))

    title_words, abstract_words = _split_planted(rng, planted)
    builder.text_element("title", _sentence(rng, 6, extra=title_words))
    builder.text_element("year", str(rng.randint(1990, 2008)))
    builder.text_element("venue", rng.choice(VENUES))
    builder.text_element("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
    if abstract_words or rng.random() < 0.5:
        builder.text_element("abstract", _sentence(rng, 14, extra=abstract_words))
    if rng.random() < config.citation_probability:
        builder.element("citations")
        for _ in range(rng.randint(1, 3)):
            builder.text_element("cite", _sentence(rng, 5))
        builder.up()
    builder.up()


def _split_planted(rng: random.Random,
                   planted: Sequence[str]) -> (List[str], List[str]):
    """Split planted keywords between the title and the abstract."""
    title_words: List[str] = []
    abstract_words: List[str] = []
    for keyword in planted:
        (title_words if rng.random() < 0.5 else abstract_words).append(keyword)
    return title_words, abstract_words


def _sentence(rng: random.Random, length: int,
              extra: Optional[Sequence[str]] = None) -> str:
    words = [rng.choice(FILLER_WORDS) for _ in range(length)]
    for word in extra or ():
        words.insert(rng.randrange(len(words) + 1), word)
    return " ".join(words)


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"
