"""The paper's running-example documents (Figure 1) and queries Q1–Q5.

The paper never prints the full documents, but Examples 1–7 pin down their
structure precisely: which nodes exist, their Dewey codes, labels, and which
keywords each contains.  The two instances below reproduce all of those facts,
so the worked examples (Figures 2–4) can be replayed as tests:

* :func:`publications_tree` — Figure 1(a), a ``Publications`` collection with
  two ``article`` elements (an XML-keyword-search paper by Liu & Chen and a
  skyline paper by Wong & Fu).
* :func:`team_tree` — Figure 1(b):(1), the ``Grizzlies`` team with three
  ``player`` elements, borrowed from the MaxMatch paper.
* :data:`PAPER_QUERIES` — the sample keyword queries Q1–Q5 of Figure 1(b):(2).
"""

from __future__ import annotations

from typing import Dict

from ..xmltree import XMLTree, spec, tree_from_spec

#: The sample keyword queries of Figure 1(b):(2), reconstructed from the
#: examples that use them.
PAPER_QUERIES: Dict[str, str] = {
    # Example 2 / Figure 3(b)-(c): false-positive scenario on Figure 1(a).
    "Q1": "Wong Fu dynamic skyline query",
    # Examples 1, 3, 4 / Figure 2(a)-(b): SLCA vs LCA on Figure 1(a).
    "Q2": "Liu keyword",
    # Examples 1, 6, 7 / Figure 2(c)-(d): papers published in VLDB 2008 on XML
    # keyword search.
    "Q3": "VLDB title XML keyword search",
    # Example 2 / Figure 3(d): redundancy scenario on Figure 1(b).
    "Q4": "Grizzlies position",
    # Examples 2, 5 / Figure 3(a): positive contributor example on Figure 1(b).
    "Q5": "Grizzlies Gassol position",
}


def publications_tree() -> XMLTree:
    """The Figure 1(a) ``Publications`` instance.

    Dewey codes match the paper: the Liu & Chen article is ``0.2.0``, the
    Wong & Fu article is ``0.2.1``, the cited reference is ``0.2.0.3.0`` and
    the proceedings title node is ``0.0``.
    """
    document = spec(
        "Publications", None,
        # 0.0 — carries both "VLDB" and (via its label) "title".
        spec("title", "VLDB 2008 Proceedings"),
        # 0.1 — filler metadata; contains no query keyword.
        spec("year", "2008"),
        # 0.2 — the article collection.
        spec(
            "Articles", None,
            # 0.2.0 — the XML keyword search article (Liu & Chen).
            spec(
                "article", None,
                spec(
                    "authors", None,
                    spec("author", None, spec("name", "Ziyang Liu")),
                    spec("author", None, spec("name", "Yi Chen")),
                ),
                spec("title",
                     "Reasoning and Identifying Relevant Matches for XML "
                     "Keyword Search"),
                spec("abstract",
                     "Keyword search lets users retrieve relevant matches "
                     "from XML data without learning a structured language; "
                     "we reason about which XML nodes form meaningful "
                     "answers."),
                spec(
                    "references", None,
                    # 0.2.0.3.0 — contains Liu, XML, keyword and search.
                    spec("ref",
                         "Ziyang Liu and Yi Chen: Identifying Meaningful "
                         "Return Information for XML Keyword Search, "
                         "SIGMOD 2007"),
                ),
            ),
            # 0.2.1 — the skyline article (Wong & Fu).
            spec(
                "article", None,
                spec(
                    "authors", None,
                    spec("author", None, spec("name", "Raymond Chi-Wing Wong")),
                    spec("author", None, spec("name", "Ada Wai-Chee Fu")),
                ),
                spec("title",
                     "Efficient Skyline Query Processing with Variable User "
                     "Preferences on Nominal Attributes"),
                spec("abstract",
                     "We study dynamic skyline query evaluation when user "
                     "preferences over nominal attributes change at run "
                     "time."),
            ),
        ),
    )
    return tree_from_spec(document, name="figure-1a-publications")


def team_tree() -> XMLTree:
    """The Figure 1(b):(1) ``team`` instance borrowed from the MaxMatch paper.

    Dewey codes match the paper: the three players are ``0.1.0``, ``0.1.1``
    and ``0.1.2``; two of them play the same position ("forward"), which is
    what triggers MaxMatch's redundancy problem on Q4.
    """
    document = spec(
        "team", None,
        # 0.0 — the team name.
        spec("name", "Grizzlies"),
        # 0.1 — the roster.
        spec(
            "players", None,
            spec(
                "player", None,
                spec("name", "Pau Gassol"),
                spec("position", "forward"),
                spec("number", "16"),
            ),
            spec(
                "player", None,
                spec("name", "Mike Conley"),
                spec("position", "guard"),
                spec("number", "11"),
            ),
            spec(
                "player", None,
                spec("name", "Rudy Gay"),
                spec("position", "forward"),
                spec("number", "22"),
            ),
        ),
    )
    return tree_from_spec(document, name="figure-1b-team")


def paper_query(name: str) -> str:
    """The raw text of one of the paper's queries (``"Q1"`` .. ``"Q5"``)."""
    try:
        return PAPER_QUERIES[name]
    except KeyError:
        raise KeyError(
            f"unknown paper query {name!r}; expected one of {sorted(PAPER_QUERIES)}"
        ) from None
