"""A dependency-free metrics registry: counters, gauges, histograms.

Design constraints (the serving stack's, not Prometheus client parity):

* **Lock-protected.**  One registry lock serializes every mutation, so the
  pool's worker threads and the asyncio server loop can share a registry
  without torn counters.  Critical sections are a couple of dict/float
  operations — the same cost profile as the query-result cache.
* **Snapshot-able.**  :meth:`MetricsRegistry.snapshot` returns a plain
  JSON-serializable dict (the ``stats`` wire op ships it verbatim).
* **Mergeable.**  :func:`merge_snapshots` folds per-worker registries into
  one service-wide view: counters and histograms add, gauges take the
  maximum (they carry peaks/levels, where the cross-worker max is the
  honest aggregate).
* **Disabled = one branch.**  Instrumented code holds an
  ``Optional[MetricsRegistry]``; when it is ``None`` the only cost is the
  ``is not None`` test.  Hot loops never call the registry per iteration —
  they pre-aggregate locally and report once per call.

Metric names must come from the :mod:`repro.obs.names` catalogue; unknown
names raise immediately (and the ``metrics-discipline`` lint rule rejects
free-string names at call sites before they even run).  An optional
``labels`` mapping splits one name into separate series, rendered into the
snapshot key as ``name{key="value"}`` in sorted key order.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .names import CATALOGUE

#: Default histogram bucket upper bounds (seconds): tuned for query-stage
#: latencies spanning microseconds to whole seconds, log-ish spaced.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default buckets for small cardinalities (batch sizes, candidate counts).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)

Snapshot = Dict[str, Dict[str, object]]


def _series_key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    if name not in CATALOGUE:
        raise ValueError(f"unregistered metric name {name!r}; add it to "
                         f"repro.obs.names first")
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"'
                        for key, value in sorted(labels.items()))
    return f"{name}{{{rendered}}}"


def split_series_key(key: str) -> Tuple[str, str]:
    """Split a snapshot key into ``(name, label_body)`` (label body may be '')."""
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


class Counter:
    """A monotonically increasing integer (increments only)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level; :meth:`set_max` tracks high-water marks."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound (rendered as ``le="+Inf"``).
    """

    __slots__ = ("_lock", "buckets", "_counts", "_count", "_sum", "_max")

    def __init__(self, lock: threading.Lock,
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be sorted and "
                             f"non-empty, got {buckets!r}")
        self._lock = lock
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        slot = len(self.buckets)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                slot = index
                break
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0


class MetricsRegistry:
    """The process-local home of every live metric series.

    Metrics are created on first reference and cached, so steady-state
    instrumentation is one dict lookup plus the metric's own lock.  All
    series of one registry share a single lock — contention is bounded by
    the handful of increments a query performs.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Series accessors
    # ------------------------------------------------------------------ #
    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        key = _series_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(self._lock)
        return metric

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = _series_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(self._lock)
        return metric

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        key = _series_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(self._lock, buckets)
        return metric

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Snapshot:
        """A consistent, JSON-serializable copy of every series."""
        with self._lock:
            counters = {key: metric._value
                        for key, metric in sorted(self._counters.items())}
            gauges = {key: metric._value
                      for key, metric in sorted(self._gauges.items())}
            histograms = {
                key: {
                    "buckets": list(metric.buckets),
                    "counts": list(metric._counts),
                    "count": metric._count,
                    "sum": metric._sum,
                    "max": metric._max,
                }
                for key, metric in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


def empty_snapshot() -> Snapshot:
    """The snapshot of a registry nothing ever reported to."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Fold per-worker snapshots into one service-wide view.

    Counters and histograms (counts, sums) add; gauges take the maximum;
    histogram ``max`` takes the maximum.  Histograms merged under one key
    must share their bucket bounds.
    """
    merged = empty_snapshot()
    counters = merged["counters"]
    gauges = merged["gauges"]
    histograms = merged["histograms"]
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = max(gauges.get(key, value), value)
        for key, series in snapshot.get("histograms", {}).items():
            into = histograms.get(key)
            if into is None:
                histograms[key] = {
                    "buckets": list(series["buckets"]),
                    "counts": list(series["counts"]),
                    "count": series["count"],
                    "sum": series["sum"],
                    "max": series["max"],
                }
                continue
            if into["buckets"] != list(series["buckets"]):
                raise ValueError(f"cannot merge histogram {key!r}: bucket "
                                 f"bounds differ across snapshots")
            into["counts"] = [a + b for a, b in
                              zip(into["counts"], series["counts"])]
            into["count"] += series["count"]
            into["sum"] += series["sum"]
            into["max"] = max(into["max"], series["max"])
    for name in ("counters", "gauges", "histograms"):
        merged[name] = dict(sorted(merged[name].items()))
    return merged


# --------------------------------------------------------------------- #
# Prometheus-style text exposition
# --------------------------------------------------------------------- #
def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_")


def _labeled(prom: str, label_body: str, extra: str = "") -> str:
    parts = [part for part in (label_body, extra) if part]
    return f"{prom}{{{','.join(parts)}}}" if parts else prom


def render_prometheus(snapshot: Snapshot) -> str:
    """Render one snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_types: set = set()

    def type_line(prom: str, kind: str) -> None:
        if prom not in seen_types:
            seen_types.add(prom)
            lines.append(f"# TYPE {prom} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, label_body = split_series_key(key)
        prom = _prom_name(name) + "_total"
        type_line(prom, "counter")
        lines.append(f"{_labeled(prom, label_body)} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        name, label_body = split_series_key(key)
        prom = _prom_name(name)
        type_line(prom, "gauge")
        lines.append(f"{_labeled(prom, label_body)} {_format(value)}")
    for key, series in snapshot.get("histograms", {}).items():
        name, label_body = split_series_key(key)
        prom = _prom_name(name)
        type_line(prom, "histogram")
        cumulative = 0
        for bound, count in zip(series["buckets"], series["counts"]):
            cumulative += count
            le = f'le="{_format_label(bound)}"'
            lines.append(f"{_labeled(prom + '_bucket', label_body, le)} "
                         f"{cumulative}")
        inf = 'le="+Inf"'
        lines.append(f"{_labeled(prom + '_bucket', label_body, inf)} "
                     f"{series['count']}")
        lines.append(f"{_labeled(prom + '_sum', label_body)} {_format(series['sum'])}")
        lines.append(f"{_labeled(prom + '_count', label_body)} {series['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _format(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


def _format_label(bound: float) -> str:
    return str(int(bound)) if float(bound).is_integer() else str(bound)
