"""The metric-name catalogue — every metric the registry may carry.

One module owns every metric name so dashboards, the Prometheus exposition
and the lint gate all agree on the vocabulary.  Call sites must reference
these constants (``registry.counter(names.QUERY_COUNT)``); the
``metrics-discipline`` rule in :mod:`repro.analysis` rejects free-string
metric names anywhere under ``src/``.

Naming convention: ``<layer>.<thing>[_unit]``, dot-separated.  Units are
spelled out (``_seconds``, ``_bytes``, ``_rows``) so the Prometheus
rendering (dots become underscores) reads like conventional exporter
output.
"""

from __future__ import annotations

# --------------------------------------------------------------------- #
# Query pipeline (per-engine registries, merged across pool workers)
# --------------------------------------------------------------------- #
QUERY_COUNT = "query.count"
QUERY_SECONDS = "query.seconds"
STAGE_TOKENIZE_SECONDS = "query.stage.tokenize_seconds"
STAGE_POSTINGS_SECONDS = "query.stage.postings_seconds"
STAGE_LCA_SECONDS = "query.stage.lca_seconds"
STAGE_FRAGMENTS_SECONDS = "query.stage.fragments_seconds"
LCA_CANDIDATES = "query.lca.candidates"
QUERY_FRAGMENTS = "query.fragments"

# Result cache (the engine-level LRU over complete SearchResults).
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"

# --------------------------------------------------------------------- #
# Posting retrieval (stage 1, per-keyword accounting)
# --------------------------------------------------------------------- #
POSTING_KEYWORDS = "posting.keywords"
POSTING_ROWS = "posting.rows"
POSTING_BYTES = "posting.bytes"
POSTING_LRU_HITS = "posting.lru.hits"
POSTING_LRU_MISSES = "posting.lru.misses"
POSTING_PACKED_FETCHES = "posting.decode.packed_fetches"
POSTING_FALLBACK_FETCHES = "posting.decode.fallback_fetches"

# Segmented (live-update) stores: where reads were resolved.
SEGMENT_READS = "segment.reads"
SEGMENT_BASE_READS = "segment.base_reads"
SEGMENT_MERGED_CURSORS = "segment.merged_cursors"
SEGMENT_TOMBSTONE_HITS = "segment.tombstone_hits"

# --------------------------------------------------------------------- #
# Corpus layer (doc-partitioned dispatch)
# --------------------------------------------------------------------- #
CORPUS_DOCS_SEARCHED = "corpus.docs_searched"
CORPUS_DOCS_MATCHED = "corpus.docs_matched"

# Ranked top-k retrieval (threshold-algorithm driver): how many documents
# the driver actually searched vs provably skipped via score upper bounds.
CORPUS_RANK_DOCS_VISITED = "corpus.rank.docs_visited"
CORPUS_RANK_DOCS_SKIPPED = "corpus.rank.docs_skipped"

# --------------------------------------------------------------------- #
# Serving layer (service-level registry)
# --------------------------------------------------------------------- #
SERVER_REQUESTS = "server.requests"
SERVER_ERRORS = "server.errors"
SERVER_SLOW_QUERIES = "server.slow_queries"
SERVER_REQUEST_SECONDS = "server.request_seconds"

BATCHER_REQUESTS = "batcher.requests"
BATCHER_BATCHES = "batcher.batches"
BATCHER_SIZE_FLUSHES = "batcher.size_flushes"
BATCHER_TIMER_FLUSHES = "batcher.timer_flushes"
BATCHER_BATCH_SIZE = "batcher.batch_size"
BATCHER_QUEUE_WAIT_SECONDS = "batcher.queue_wait_seconds"

ADMISSION_ADMITTED = "admission.admitted"
ADMISSION_REJECTED = "admission.rejected"
ADMISSION_TIMED_OUT = "admission.timed_out"
ADMISSION_INFLIGHT = "admission.inflight"
ADMISSION_PEAK_INFLIGHT = "admission.peak_inflight"

# --------------------------------------------------------------------- #
# Robustness layer: fault injection, mutation journal, self-healing
# --------------------------------------------------------------------- #
FAULTS_INJECTED = "faults.injected"

JOURNAL_MUTATIONS = "journal.mutations"
JOURNAL_REPLAYS = "journal.replays"
JOURNAL_RECOVERIES = "journal.recoveries"

POOL_REBUILDS = "pool.engine_rebuilds"
POOL_REBUILD_FAILURES = "pool.rebuild_failures"
POOL_QUARANTINE_REFUSALS = "pool.quarantine_refusals"

COMPACTOR_RUNS = "compactor.runs"
COMPACTOR_FAILURES = "compactor.failures"
COMPACTOR_SEGMENTS_FOLDED = "compactor.segments_folded"

SERVER_DISCONNECTS = "server.client_disconnects"

#: Every registered metric name; the registry refuses names outside it,
#: so a typo fails fast instead of minting a shadow time series.
CATALOGUE = frozenset(
    value for key, value in sorted(globals().items())
    if key.isupper() and isinstance(value, str)
)
