"""Per-query trace spans: where one request's time actually went.

A :class:`Trace` is one query's span tree.  The pipeline opens a child span
per stage (tokenize, postings, lca, fragments), the corpus engine opens one
per searched document, and nested calls attach under whatever span is open
— so a corpus search over three documents shows twelve stage spans grouped
under three document spans, all under one root.

Two attachment styles coexist:

* :meth:`Trace.span` — a context manager that times its block and nests
  anything recorded inside it (used by layers that *call down*, e.g. the
  corpus engine's per-document dispatch);
* :meth:`Trace.record` — attach an already-measured interval (used by the
  pipeline, which stamps ``perf_counter`` around each stage so the
  untraced fast path stays free of context-manager overhead).

Rendering (:func:`render_trace`) prints one line per span with its wall
time, notes, and — on spans with children — the *self* time not accounted
for by any child, so the stage timings visibly sum to the total.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class TraceSpan:
    """One timed interval in a query's span tree."""

    __slots__ = ("name", "started", "ended", "notes", "children")

    def __init__(self, name: str, started: Optional[float] = None) -> None:
        self.name = name
        self.started = time.perf_counter() if started is None else started
        self.ended: Optional[float] = None
        self.notes: Dict[str, object] = {}
        self.children: List["TraceSpan"] = []

    def note(self, **notes: object) -> "TraceSpan":
        """Attach key=value annotations (counts, sizes, code paths)."""
        self.notes.update(notes)
        return self

    def finish(self, ended: Optional[float] = None) -> None:
        if self.ended is None:
            self.ended = time.perf_counter() if ended is None else ended

    @property
    def seconds(self) -> float:
        if self.ended is None:
            return 0.0
        return self.ended - self.started

    @property
    def child_seconds(self) -> float:
        return sum(child.seconds for child in self.children)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (milliseconds, nested children)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "ms": round(self.seconds * 1000.0, 4),
        }
        if self.notes:
            payload["notes"] = dict(self.notes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:
        return f"TraceSpan({self.name!r}, {self.seconds * 1000.0:.3f} ms)"


class Trace:
    """One query's span tree plus the open-span stack for nesting."""

    def __init__(self, name: str = "query") -> None:
        self.root = TraceSpan(name)
        self._stack: List[TraceSpan] = [self.root]

    @property
    def current(self) -> TraceSpan:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **notes: object) -> Iterator[TraceSpan]:
        """Open a child of the current span for the duration of the block."""
        child = TraceSpan(name)
        child.notes.update(notes)
        self.current.children.append(child)
        self._stack.append(child)
        try:
            yield child
        finally:
            child.finish()
            self._stack.pop()

    def record(self, name: str, started: float, ended: float,
               **notes: object) -> TraceSpan:
        """Attach an already-measured interval under the current span."""
        child = TraceSpan(name, started=started)
        child.finish(ended)
        child.notes.update(notes)
        self.current.children.append(child)
        return child

    def finish(self) -> "Trace":
        """Close the root span (idempotent); inner spans must be closed."""
        self.root.finish()
        return self

    def to_dict(self) -> Dict[str, object]:
        return self.root.to_dict()


def _format_notes(notes: Dict[str, object]) -> str:
    if not notes:
        return ""
    return "  " + " ".join(f"{key}={value}" for key, value in notes.items())


def render_trace(trace: Trace) -> str:
    """The span tree as an indented text table with millisecond timings."""
    trace.finish()
    lines: List[str] = []

    def walk(span: TraceSpan, prefix: str, is_last: bool, depth: int) -> None:
        if depth == 0:
            head = ""
            child_prefix = ""
        else:
            head = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        lines.append(f"{head}{span.name:<{max(1, 24 - len(head))}} "
                     f"{span.seconds * 1000.0:9.3f} ms"
                     f"{_format_notes(span.notes)}")
        children = span.children
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, depth + 1)
        if children:
            unaccounted = span.seconds - span.child_seconds
            lines.append(f"{child_prefix}   (self: "
                         f"{unaccounted * 1000.0:.3f} ms unaccounted)")

    walk(trace.root, "", True, 0)
    return "\n".join(lines)
