"""Observability: live metrics registry + per-query trace spans.

``repro.obs`` is dependency-free and optional everywhere it is threaded:
every instrumented layer takes an ``Optional[MetricsRegistry]`` (a disabled
registry costs one ``is not None`` branch) and an optional per-call
:class:`Trace`.  The serving stack merges per-worker registries into the
``stats`` wire op; the CLI renders traces (``search --trace``) and
Prometheus text (``metrics``).
"""

from . import names
from .registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    empty_snapshot,
    merge_snapshots,
    render_prometheus,
    split_series_key,
)
from .trace import Trace, TraceSpan, render_trace

__all__ = [
    "names",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Snapshot",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "empty_snapshot",
    "merge_snapshots",
    "render_prometheus",
    "split_series_key",
    "Trace",
    "TraceSpan",
    "render_trace",
]
