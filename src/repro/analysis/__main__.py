"""``python -m repro.analysis`` — run the invariant linter.

Usage::

    python -m repro.analysis [paths...]        # default: src/
    python -m repro.analysis --list-rules
    python -m repro.analysis --rule hot-loop-purity src/repro/lca

Exit status: 0 when clean, 1 when any diagnostic was reported, 2 when the
analysis itself could not run (bad path, unknown rule).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .diagnostics import format_diagnostics
from .engine import AnalysisError, run_analysis
from .rules import RULES, rule_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter for the repro codebase",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.list_rules:
        width = max(len(name) for name in rule_names())
        for rule in sorted(RULES, key=lambda r: r.name):
            print(f"{rule.name.ljust(width)}  {rule.description}")
        return 0
    paths: List[str] = arguments.paths or ["src"]
    try:
        diagnostics = run_analysis(paths, rules=arguments.rules)
    except AnalysisError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if diagnostics:
        print(format_diagnostics(diagnostics))
        print(f"{len(diagnostics)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
