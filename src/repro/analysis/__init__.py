"""The repo's own static-analysis gate: AST rules for cross-file invariants.

Five PRs of conventions — "every backend joins the parity suite", "hot loops
stay object-free", "service handlers answer typed errors" — lived only in
ROADMAP.md prose until now.  This package machine-enforces them: a small
``ast``-based rule engine with a rule registry, per-line suppression pragmas
and file/line diagnostics, run as ``python -m repro.analysis`` (or ``make
lint``).  It has **no dependencies beyond the standard library**, so unlike
ruff/mypy it runs everywhere, always.

The shipped rules (see :mod:`repro.analysis.rules` for the full docstrings):

* ``hot-loop-purity`` — no :class:`DeweyCode` materialization and no
  per-iteration hot-column attribute lookups inside the packed SLCA/ELCA/RTF
  hot modules, except at pragma-declared result boundaries.
* ``parity-registration`` — every class implementing the ``PostingSource``
  protocol is registered in ``tests/test_backend_parity.py`` (``BACKENDS`` +
  ``PARITY_SOURCES``).
* ``typed-errors`` — ``service/server.py`` handlers raise only
  :class:`ServiceError` with codes defined in ``service/protocol.py``, and
  every wire op has a case in ``tests/test_service_parity.py``.
* ``sqlite-discipline`` — ``sqlite3.connect`` only inside ``repro/storage/``
  and never stored on shared objects.
* ``bench-honesty`` — functions writing ``BENCH_*.json`` artefacts call a
  result-parity / union-verify guard first.

Suppression: append ``# lint: allow(<rule>)`` to the offending line (or put
the comment alone on the line above); ``# lint: allow-file(<rule>)`` anywhere
in a file suppresses the rule for the whole file.  Every pragma in the tree
is a *declared* exception — grep for ``lint: allow`` to audit them.
"""

from .diagnostics import Diagnostic, format_diagnostics
from .engine import AnalysisError, Project, SourceFile, run_analysis
from .rules import RULES, Rule, get_rule, rule_names

__all__ = [
    "AnalysisError",
    "Diagnostic",
    "Project",
    "RULES",
    "Rule",
    "SourceFile",
    "format_diagnostics",
    "get_rule",
    "rule_names",
    "run_analysis",
]
