"""Project loading and rule execution.

A :class:`Project` is the unit of analysis: the set of parsed
:class:`SourceFile` objects the rules see.  Cross-file rules (parity
registration, typed errors) need files beyond those named on the command
line — the *anchor* files ``tests/test_backend_parity.py`` and
``tests/test_service_parity.py`` — so the project always loads them from the
repo root when they exist, even when the user only asked for ``src/``.

The repo root is found by walking upwards from the first analyzed path until
a directory containing ``pyproject.toml`` appears; rules use it to express
paths relative to the repo (``src/repro/lca/stack_slca.py``) no matter where
the linter is invoked from.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .diagnostics import Diagnostic
from .pragmas import PragmaIndex, parse_pragmas


class AnalysisError(Exception):
    """Raised when the analysis cannot run (unreadable path, bad rule name)."""


# Cross-file rules consult these files even when they are outside the
# requested paths; missing anchors are reported by the rules themselves.
ANCHOR_FILES = (
    "tests/test_backend_parity.py",
    "tests/test_service_parity.py",
    # The metric-name catalogue metrics-discipline validates against.
    "src/repro/obs/names.py",
)


class SourceFile:
    """One parsed python file: path, source text, AST, and pragma index."""

    def __init__(self, path: Path, relpath: str, source: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            self.syntax_error = exc
        self.pragmas: PragmaIndex = parse_pragmas(source)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceFile({self.relpath!r})"


class Project:
    """All files under analysis plus the anchors cross-file rules need."""

    def __init__(self, root: Path, files: Sequence[SourceFile],
                 requested: Sequence[str]) -> None:
        self.root = root
        self.files = list(files)
        self.requested = list(requested)
        self._by_relpath: Dict[str, SourceFile] = {
            f.relpath: f for f in self.files
        }

    def get(self, relpath: str) -> Optional[SourceFile]:
        """The file at repo-relative ``relpath``, if loaded."""
        return self._by_relpath.get(relpath)

    def iter_requested(self) -> Iterable[SourceFile]:
        """Only the files named on the command line (not anchors)."""
        for f in self.files:
            if f.relpath in self.requested:
                yield f


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor of ``start`` containing ``pyproject.toml``."""
    probe = start if start.is_dir() else start.parent
    probe = probe.resolve()
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def _collect_py_files(paths: Sequence[Path]) -> List[Path]:
    collected: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_dir():
            found = sorted(path.rglob("*.py"))
        elif path.is_file() and path.suffix == ".py":
            found = [path]
        elif path.exists():
            found = []
        else:
            raise AnalysisError(f"no such path: {path}")
        for f in found:
            resolved = f.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(resolved)
    return collected


def load_project(paths: Sequence[str], root: Optional[Path] = None) -> Project:
    """Load and parse every ``.py`` file under ``paths`` plus the anchors."""
    if not paths:
        raise AnalysisError("no paths given")
    path_objects = [Path(p) for p in paths]
    repo_root = (root or find_repo_root(path_objects[0])).resolve()

    def relpath_of(path: Path) -> str:
        try:
            return path.resolve().relative_to(repo_root).as_posix()
        except ValueError:
            return path.resolve().as_posix()

    files: List[SourceFile] = []
    requested: List[str] = []
    loaded = set()
    for path in _collect_py_files(path_objects):
        rel = relpath_of(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        files.append(SourceFile(path, rel, source))
        requested.append(rel)
        loaded.add(rel)
    for anchor in ANCHOR_FILES:
        if anchor in loaded:
            continue
        anchor_path = repo_root / anchor
        if anchor_path.is_file():
            source = anchor_path.read_text(encoding="utf-8")
            files.append(SourceFile(anchor_path, anchor, source))
    return Project(repo_root, files, requested)


def run_analysis(paths: Sequence[str],
                 rules: Optional[Sequence[str]] = None,
                 root: Optional[Path] = None) -> List[Diagnostic]:
    """Run ``rules`` (default: all) over ``paths``; pragma-filtered findings."""
    from .rules import RULES, get_rule

    project = load_project(paths, root=root)
    active = [get_rule(name) for name in rules] if rules else list(RULES)

    diagnostics: List[Diagnostic] = []
    for f in project.iter_requested():
        if f.syntax_error is not None:
            diagnostics.append(Diagnostic(
                path=f.relpath,
                line=f.syntax_error.lineno or 1,
                col=(f.syntax_error.offset or 1) - 1,
                rule="syntax",
                message=f"syntax error: {f.syntax_error.msg}",
            ))
    for rule in active:
        for diagnostic in rule.check(project):
            source_file = project.get(diagnostic.path)
            if source_file is not None and source_file.pragmas.allows(
                    diagnostic.line, diagnostic.rule):
                continue
            diagnostics.append(diagnostic)
    diagnostics.sort(key=Diagnostic.sort_key)
    return diagnostics
