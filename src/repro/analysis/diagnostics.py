"""Diagnostics: what a rule reports and how it is rendered.

One :class:`Diagnostic` per finding, carrying the file, position, rule name
and message.  Rendering is one line per finding in the classic
``path:line:col: rule: message`` compiler shape, sorted by (file, line, col)
so output is stable across runs and diffable in CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one source position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The finding as one ``path:line:col: rule: message`` line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


def format_diagnostics(diagnostics: Iterable[Diagnostic]) -> str:
    """All findings, one per line, in stable (file, line, col) order."""
    ordered: List[Diagnostic] = sorted(diagnostics,
                                       key=Diagnostic.sort_key)
    return "\n".join(diagnostic.render() for diagnostic in ordered)
