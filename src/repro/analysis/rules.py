"""The repo-specific rules: seven cross-file invariants, machine-checked.

Each rule is a class with a ``name`` (the pragma/CLI identifier), a one-line
``description`` and a ``check(project)`` generator yielding
:class:`~repro.analysis.diagnostics.Diagnostic` objects.  Rules see the whole
:class:`~repro.analysis.engine.Project` — including the always-loaded anchor
test files — which is what makes the cross-file checks (parity registration,
typed-error coverage) possible.

The rules and what they protect:

``hot-loop-purity``
    The PR 4 packed-representation win (packed/object 0.80–0.91) lives or
    dies on the SLCA/ELCA/RTF hot loops staying object-free.  In the hot
    modules (``lca/``, ``core/rtf.py``, ``core/node_record.py``,
    ``index/packed.py``) this rule flags every :class:`DeweyCode`
    construction (including calls through local aliases such as
    ``from_tuple = DeweyCode._from_tuple``), every ``.components`` tuple
    access inside a loop or comprehension, and every per-iteration
    ``.data``/``.offsets`` lookup on a loop-invariant name (hoist it:
    ``data, offsets = plist.data, plist.offsets`` before the loop).
    Result boundaries declare themselves with ``# lint: allow(hot-loop-purity)``.

``parity-registration``
    Any class in ``src/`` that structurally implements the
    :class:`~repro.index.source.PostingSource` protocol must be registered in
    ``tests/test_backend_parity.py``: named as a key of ``PARITY_SOURCES``
    and mapped to entries of ``BACKENDS``.  Deleting a backend from
    ``BACKENDS`` (or forgetting to register a new source) fails the lint.

``typed-errors``
    Handlers of the service dispatch class (any class in
    ``service/server.py`` defining ``_dispatch``) may only raise
    ``ServiceError`` with an ``ERROR_*`` code defined in
    ``service/protocol.py``; and every wire op the dispatcher answers must
    be exercised by ``tests/test_service_parity.py``.

``sqlite-discipline``
    ``sqlite3.connect`` is called only inside ``src/repro/storage/`` (the
    per-thread-connection layer), and no sqlite ``Connection`` is assigned
    to a ``self.*`` attribute anywhere — an object-held connection shared
    across ``EnginePool`` workers is a cross-thread cursor bug waiting to
    happen.

``bench-honesty``
    A function that writes a ``BENCH_*.json`` artefact must first call one
    of the verification guards (``require_verified_payload``,
    ``verify_service_reports``, ``_verify_parity``, ``_verify_corpus_union``,
    ``_verify_ranking_equivalence`` or ``run_core_bench`` itself) so no
    fast-but-wrong number is ever persisted.

``metrics-discipline``
    Every ``registry.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``
    call site under ``src/`` must name its metric through a constant of the
    ``src/repro/obs/names.py`` catalogue (``metric_names.QUERY_COUNT``), not
    a free string literal — one module owns the metric vocabulary, so a
    typo'd name fails the lint instead of minting a shadow time series.

``exception-discipline``
    No bare ``except:`` anywhere in ``src/``, and no
    ``except Exception`` / ``except BaseException`` handler that swallows
    the failure (a handler body with no ``raise``).  The self-healing
    stack deliberately swallows at a few sites (retry loops, quarantine,
    the compactor's policy loop, the wire front door) — those declare
    themselves with ``# lint: allow(exception-discipline)`` on the
    ``except`` line.  Everything else either catches the specific
    exception it can handle or re-raises.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .diagnostics import Diagnostic
from .engine import AnalysisError, Project, SourceFile


class Rule:
    """Base class: a named invariant checked over a whole project."""

    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, source_file: SourceFile, node: ast.AST,
                   message: str) -> Diagnostic:
        """A finding anchored at ``node`` of ``source_file``."""
        return Diagnostic(
            path=source_file.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            message=message,
        )


def _requested_src(project: Project) -> List[SourceFile]:
    """The requested files that belong to the library tree."""
    return [f for f in project.iter_requested()
            if f.relpath.startswith("src/") and f.tree is not None]


def _name_of(node: ast.expr) -> str:
    """A dotted rendering of a Name/Attribute callee (best effort)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_name_of(node.value)}.{node.attr}"
    return type(node).__name__


def _bound_names(nodes: Iterable[ast.AST]) -> Set[str]:
    """Every plain name (re)bound anywhere inside ``nodes``."""
    bound: Set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            targets: Sequence[ast.expr] = ()
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = (node.target,)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = (node.target,)
            elif isinstance(node, ast.NamedExpr):
                targets = (node.target,)
            elif isinstance(node, ast.withitem):
                if node.optional_vars is not None:
                    targets = (node.optional_vars,)
            elif isinstance(node, ast.comprehension):
                targets = (node.target,)
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
    return bound


# ---------------------------------------------------------------------- #
# R1: hot-loop purity
# ---------------------------------------------------------------------- #
class HotLoopPurityRule(Rule):
    """No boxed DeweyCode work inside the packed hot modules."""

    name = "hot-loop-purity"
    description = ("hot modules (lca/, core/rtf.py, core/node_record.py, "
                   "index/packed.py) must not construct DeweyCode, touch "
                   ".components in loops, or re-read hot columns per "
                   "iteration, except at declared result boundaries")

    HOT_PREFIXES = ("src/repro/lca/",)
    HOT_FILES = frozenset({
        "src/repro/core/rtf.py",
        "src/repro/core/node_record.py",
        "src/repro/index/packed.py",
    })
    #: Columns of the packed representation that loops must hoist.
    HOT_COLUMNS = frozenset({"data", "offsets"})
    LOOPS = (ast.For, ast.AsyncFor, ast.While)
    COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                      ast.GeneratorExp)

    def _is_hot(self, relpath: str) -> bool:
        return relpath in self.HOT_FILES or \
            any(relpath.startswith(prefix) for prefix in self.HOT_PREFIXES)

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for source_file in project.iter_requested():
            if source_file.tree is None or not self._is_hot(source_file.relpath):
                continue
            yield from self._check_file(source_file)

    def _check_file(self, source_file: SourceFile) -> Iterator[Diagnostic]:
        tree = source_file.tree
        assert tree is not None
        aliases = self._dewey_aliases(tree)
        seen: Set[Tuple[int, int, str]] = set()

        def emit(node: ast.AST, message: str) -> Iterator[Diagnostic]:
            key = (getattr(node, "lineno", 1),
                   getattr(node, "col_offset", 0), message)
            if key not in seen:
                seen.add(key)
                yield self.diagnostic(source_file, node, message)

        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = node.func
                flagged = (
                    (isinstance(callee, ast.Name)
                     and (callee.id == "DeweyCode" or callee.id in aliases))
                    or (isinstance(callee, ast.Attribute)
                        and isinstance(callee.value, ast.Name)
                        and callee.value.id == "DeweyCode")
                )
                if flagged:
                    yield from emit(node, (
                        f"DeweyCode materialization via "
                        f"{_name_of(callee)}(...) in a hot module; keep the "
                        f"loop packed or declare a result boundary with "
                        f"'# lint: allow(hot-loop-purity)'"))
            elif isinstance(node, self.LOOPS):
                body = list(node.body) + list(node.orelse)
                bound = _bound_names(body)
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    bound |= {leaf.id for leaf in ast.walk(node.target)
                              if isinstance(leaf, ast.Name)}
                yield from self._check_loop_body(source_file, body, bound,
                                                emit)
            elif isinstance(node, self.COMPREHENSIONS):
                bound = _bound_names(node.generators)
                parts: List[ast.AST] = []
                if isinstance(node, ast.DictComp):
                    parts.extend([node.key, node.value])
                else:
                    parts.append(node.elt)
                for generator in node.generators:
                    parts.extend(generator.ifs)
                yield from self._check_loop_body(source_file, parts, bound,
                                                emit)

    def _check_loop_body(self, source_file: SourceFile,
                         body: Sequence[ast.AST], bound: Set[str],
                         emit) -> Iterator[Diagnostic]:
        for statement in body:
            for node in ast.walk(statement):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.attr == "components":
                    yield from emit(node, (
                        ".components tuple access inside a loop in a hot "
                        "module; iterate the packed columns instead or "
                        "declare a result boundary with "
                        "'# lint: allow(hot-loop-purity)'"))
                elif node.attr in self.HOT_COLUMNS and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id not in bound:
                    yield from emit(node, (
                        f"loop-invariant hot-column lookup "
                        f"'{node.value.id}.{node.attr}' inside a loop; "
                        f"hoist it above the loop "
                        f"('{node.attr} = {node.value.id}.{node.attr}')"))

    @staticmethod
    def _dewey_aliases(tree: ast.Module) -> Set[str]:
        """Names bound to DeweyCode or one of its constructors."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_dewey = (
                (isinstance(value, ast.Name) and value.id == "DeweyCode")
                or (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "DeweyCode")
            )
            if not is_dewey:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
        return aliases


# ---------------------------------------------------------------------- #
# R2: parity registration
# ---------------------------------------------------------------------- #
class ParityRegistrationRule(Rule):
    """Every PostingSource implementor is wired into the parity suite."""

    name = "parity-registration"
    description = ("every class implementing the PostingSource protocol in "
                   "src/ must be registered in tests/test_backend_parity.py "
                   "(PARITY_SOURCES keys mapped to BACKENDS entries)")

    ANCHOR = "tests/test_backend_parity.py"
    PROTOCOL_MEMBERS = frozenset({
        "source_id", "postings", "keyword_nodes", "frequency",
        "vocabulary", "node_label", "node_words",
    })

    def check(self, project: Project) -> Iterator[Diagnostic]:
        src_files = _requested_src(project)
        anchor = project.get(self.ANCHOR)
        if not src_files and anchor is None:
            return
        if anchor is None or anchor.tree is None:
            # Point at the first analyzed src file: the anchor is the
            # contract those sources must honour.
            yield Diagnostic(
                path=src_files[0].relpath, line=1, col=0, rule=self.name,
                message=(f"{self.ANCHOR} is missing; PostingSource "
                         f"implementors cannot be cross-checked"))
            return

        backends, backends_node = self._string_collection(anchor.tree,
                                                          "BACKENDS")
        sources, sources_node = self._string_mapping(anchor.tree,
                                                     "PARITY_SOURCES")
        anchor_head = anchor.tree.body[0] if anchor.tree.body else anchor.tree
        if backends is None:
            yield self.diagnostic(anchor, anchor_head,
                                  "BACKENDS tuple not found")
            return
        if sources is None:
            yield self.diagnostic(anchor, anchor_head, (
                "PARITY_SOURCES mapping not found; declare "
                "{implementor class: (backend entries...)} next to BACKENDS"))
            return

        # Claims must be internally consistent with BACKENDS...
        claimed: Set[str] = set()
        for class_name, entries in sources.items():
            claimed.update(entries)
            for entry in entries:
                if entry not in backends:
                    yield self.diagnostic(anchor, sources_node, (
                        f"PARITY_SOURCES[{class_name!r}] claims backend "
                        f"{entry!r} which is not in BACKENDS"))
        for entry in backends:
            if entry not in claimed:
                yield self.diagnostic(anchor, backends_node, (
                    f"backend {entry!r} in BACKENDS is not claimed by any "
                    f"PARITY_SOURCES entry"))

        # ...and the implementor set (only meaningful when src/ was scanned).
        if not src_files:
            return
        registry = self._class_registry(src_files)
        implementors: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}
        for class_name, (source_file, node) in registry.items():
            if self._is_protocol(node):
                continue
            methods = self._resolved_members(class_name, registry, set())
            if self.PROTOCOL_MEMBERS <= methods:
                implementors[class_name] = (source_file, node)
        for class_name, (source_file, node) in sorted(implementors.items()):
            if class_name not in sources:
                yield self.diagnostic(source_file, node, (
                    f"class {class_name} implements PostingSource but is "
                    f"not registered in {self.ANCHOR}::PARITY_SOURCES"))
        scanned_whole_tree = any(f.relpath == "src/repro/index/source.py"
                                 for f in src_files)
        if scanned_whole_tree:
            for class_name in sources:
                if class_name not in implementors:
                    yield self.diagnostic(anchor, sources_node, (
                        f"PARITY_SOURCES names {class_name!r} but no such "
                        f"PostingSource implementor exists in src/"))

    # -- anchor parsing ------------------------------------------------- #
    @staticmethod
    def _string_collection(tree: ast.Module, name: str
                           ) -> Tuple[Optional[List[str]], ast.AST]:
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    node.targets[0].id == name and \
                    isinstance(node.value, (ast.Tuple, ast.List)):
                values = [element.value for element in node.value.elts
                          if isinstance(element, ast.Constant)
                          and isinstance(element.value, str)]
                return values, node
        return None, tree

    @staticmethod
    def _string_mapping(tree: ast.Module, name: str
                        ) -> Tuple[Optional[Dict[str, List[str]]], ast.AST]:
        for node in tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name) and \
                    node.targets[0].id == name and \
                    isinstance(node.value, ast.Dict):
                mapping: Dict[str, List[str]] = {}
                for key, value in zip(node.value.keys, node.value.values):
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        continue
                    entries: List[str] = []
                    if isinstance(value, (ast.Tuple, ast.List)):
                        entries = [element.value for element in value.elts
                                   if isinstance(element, ast.Constant)
                                   and isinstance(element.value, str)]
                    elif isinstance(value, ast.Constant) and \
                            isinstance(value.value, str):
                        entries = [value.value]
                    mapping[key.value] = entries
                return mapping, node
        return None, tree

    # -- implementor detection ------------------------------------------ #
    @staticmethod
    def _is_protocol(node: ast.ClassDef) -> bool:
        return any(_name_of(base).split(".")[-1] == "Protocol"
                   for base in node.bases)

    @staticmethod
    def _class_registry(src_files: Sequence[SourceFile]
                        ) -> Dict[str, Tuple[SourceFile, ast.ClassDef]]:
        registry: Dict[str, Tuple[SourceFile, ast.ClassDef]] = {}
        for source_file in src_files:
            assert source_file.tree is not None
            for node in ast.walk(source_file.tree):
                if isinstance(node, ast.ClassDef):
                    registry.setdefault(node.name, (source_file, node))
        return registry

    @classmethod
    def _own_members(cls, node: ast.ClassDef) -> Set[str]:
        members: Set[str] = set()
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                members.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        members.add(target.id)
            elif isinstance(statement, ast.AnnAssign) and \
                    isinstance(statement.target, ast.Name):
                members.add(statement.target.id)
        return members

    @classmethod
    def _resolved_members(cls, class_name: str,
                          registry: Dict[str, Tuple[SourceFile, ast.ClassDef]],
                          seen: Set[str]) -> Set[str]:
        if class_name in seen or class_name not in registry:
            return set()
        seen.add(class_name)
        _, node = registry[class_name]
        members = cls._own_members(node)
        for base in node.bases:
            base_name = _name_of(base).split(".")[-1]
            members |= cls._resolved_members(base_name, registry, seen)
        return members


# ---------------------------------------------------------------------- #
# R3: typed-error discipline
# ---------------------------------------------------------------------- #
class TypedErrorsRule(Rule):
    """Service handlers answer only protocol.py error codes; ops are tested."""

    name = "typed-errors"
    description = ("service dispatch classes raise only ServiceError with "
                   "protocol.py ERROR_* codes, and every wire op is "
                   "exercised by tests/test_service_parity.py")

    SERVER = "src/repro/service/server.py"
    PROTOCOL = "src/repro/service/protocol.py"
    ANCHOR = "tests/test_service_parity.py"

    def check(self, project: Project) -> Iterator[Diagnostic]:
        server = project.get(self.SERVER)
        if server is None or server.tree is None or \
                server.relpath not in project.requested:
            return
        allowed = self._allowed_codes(project)
        anchor = project.get(self.ANCHOR)
        mentions = self._mentions(anchor) if anchor is not None else None

        for class_node in ast.walk(server.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            dispatch = next(
                (member for member in class_node.body
                 if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                 and member.name == "_dispatch"), None)
            if dispatch is None:
                continue
            yield from self._check_raises(server, class_node, allowed)
            yield from self._check_ops(server, dispatch, anchor, mentions)

    def _check_raises(self, server: SourceFile, class_node: ast.ClassDef,
                      allowed: Optional[Set[str]]) -> Iterator[Diagnostic]:
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            if not isinstance(node.exc, ast.Call):
                continue  # re-raising a caught instance keeps its code
            callee = node.exc.func
            callee_name = _name_of(callee).split(".")[-1]
            if callee_name != "ServiceError":
                yield self.diagnostic(server, node, (
                    f"handler raises {_name_of(callee)}; service dispatch "
                    f"must raise ServiceError with a protocol.py ERROR_* "
                    f"code so the wire answer stays typed"))
                continue
            if not node.exc.args:
                yield self.diagnostic(server, node,
                                      "ServiceError raised without a code")
                continue
            code = node.exc.args[0]
            if isinstance(code, ast.Constant):
                yield self.diagnostic(server, node, (
                    f"ServiceError raised with literal code "
                    f"{code.value!r}; use the ERROR_* constant from "
                    f"service/protocol.py"))
            elif isinstance(code, ast.Name) and allowed is not None and \
                    code.id not in allowed:
                yield self.diagnostic(server, node, (
                    f"ServiceError code {code.id} is not defined in "
                    f"service/protocol.py"))

    def _check_ops(self, server: SourceFile, dispatch: ast.AST,
                   anchor: Optional[SourceFile],
                   mentions: Optional[Set[str]]) -> Iterator[Diagnostic]:
        ops: Dict[str, ast.AST] = {}
        for node in ast.walk(dispatch):
            if isinstance(node, ast.Compare):
                for comparator in node.comparators:
                    if isinstance(comparator, ast.Constant) and \
                            isinstance(comparator.value, str):
                        ops.setdefault(comparator.value, node)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "get" and len(node.args) == 2:
                key, default = node.args
                if isinstance(key, ast.Constant) and key.value == "op" and \
                        isinstance(default, ast.Constant) and \
                        isinstance(default.value, str):
                    ops.setdefault(default.value, node)
        if anchor is None or mentions is None:
            if ops:
                yield self.diagnostic(server, dispatch, (
                    f"{self.ANCHOR} is missing; wire ops cannot be "
                    f"cross-checked"))
            return
        for op, node in sorted(ops.items()):
            if op not in mentions:
                yield self.diagnostic(server, node, (
                    f"wire op {op!r} has no matching case in {self.ANCHOR}"))

    @staticmethod
    def _mentions(anchor: SourceFile) -> Set[str]:
        """Every string literal and attribute/function name in the tests."""
        mentions: Set[str] = set()
        if anchor.tree is None:
            return mentions
        for node in ast.walk(anchor.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                mentions.add(node.value)
            elif isinstance(node, ast.Attribute):
                mentions.add(node.attr)
            elif isinstance(node, ast.Name):
                mentions.add(node.id)
        return mentions

    def _allowed_codes(self, project: Project) -> Optional[Set[str]]:
        protocol = project.get(self.PROTOCOL)
        if protocol is None or protocol.tree is None:
            return None
        codes: Set[str] = set()
        for node in protocol.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id.startswith("ERROR_") and \
                            isinstance(node.value, ast.Constant):
                        codes.add(target.id)
        return codes or None


# ---------------------------------------------------------------------- #
# R4: sqlite thread-safety discipline
# ---------------------------------------------------------------------- #
class SqliteDisciplineRule(Rule):
    """Connections open per-thread inside storage/ and are never self-held."""

    name = "sqlite-discipline"
    description = ("sqlite3.connect only inside src/repro/storage/, and no "
                   "Connection stored on a self.* attribute (EnginePool "
                   "workers share those objects across threads)")

    ALLOWED_PREFIX = "src/repro/storage/"

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for source_file in _requested_src(project):
            assert source_file.tree is not None
            module_aliases, function_aliases = self._import_aliases(
                source_file.tree)

            def is_connect(node: ast.AST) -> bool:
                if not isinstance(node, ast.Call):
                    return False
                callee = node.func
                if isinstance(callee, ast.Attribute) and \
                        callee.attr == "connect" and \
                        isinstance(callee.value, ast.Name) and \
                        callee.value.id in module_aliases:
                    return True
                return isinstance(callee, ast.Name) and \
                    callee.id in function_aliases

            for node in ast.walk(source_file.tree):
                if is_connect(node) and not source_file.relpath.startswith(
                        self.ALLOWED_PREFIX):
                    yield self.diagnostic(source_file, node, (
                        "sqlite3.connect outside repro/storage/; go through "
                        "a store class so connections stay per-thread"))
                elif isinstance(node, ast.Assign):
                    stores_connection = any(
                        is_connect(child) for child in ast.walk(node.value))
                    if not stores_connection:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == "self":
                            yield self.diagnostic(source_file, node, (
                                f"sqlite Connection stored on "
                                f"self.{target.attr}; shared objects cross "
                                f"EnginePool worker threads — keep "
                                f"connections in threading.local storage"))

    @staticmethod
    def _import_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        module_aliases: Set[str] = set()
        function_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "sqlite3":
                        module_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "sqlite3":
                for alias in node.names:
                    if alias.name == "connect":
                        function_aliases.add(alias.asname or alias.name)
        return module_aliases, function_aliases


# ---------------------------------------------------------------------- #
# R5: bench honesty
# ---------------------------------------------------------------------- #
class BenchHonestyRule(Rule):
    """No BENCH_*.json artefact is written without a verification guard."""

    name = "bench-honesty"
    description = ("functions writing BENCH_*.json artefacts must call a "
                   "result-parity / union-verify guard first")

    GUARDS = frozenset({
        "require_verified_payload",
        "verify_service_reports",
        "_verify_parity",
        "_verify_corpus_union",
        "_verify_ranking_equivalence",
        "run_core_bench",
    })
    WRITER_NAMES = frozenset({"open", "write_json", "write_csv"})
    WRITER_ATTRS = frozenset({"write_text", "write", "dump"})

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for source_file in _requested_src(project):
            assert source_file.tree is not None
            for node in ast.walk(source_file.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if not self._writes_bench_artefact(node):
                    continue
                if not self._calls_guard(node):
                    yield self.diagnostic(source_file, node, (
                        f"function {node.name} writes a BENCH_*.json "
                        f"artefact without calling a verification guard "
                        f"({', '.join(sorted(self.GUARDS))})"))

    @classmethod
    def _writes_bench_artefact(cls, function: ast.AST) -> bool:
        names_artefact = any(
            isinstance(node, ast.Constant) and isinstance(node.value, str)
            and node.value.startswith("BENCH_")
            and node.value.endswith(".json")
            for node in ast.walk(function))
        if not names_artefact:
            return False
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name) and \
                    callee.id in cls.WRITER_NAMES:
                return True
            if isinstance(callee, ast.Attribute) and \
                    callee.attr in cls.WRITER_ATTRS:
                return True
        return False

    @classmethod
    def _calls_guard(cls, function: ast.AST) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                callee_name = _name_of(node.func).split(".")[-1]
                if callee_name in cls.GUARDS:
                    return True
        return False


# ---------------------------------------------------------------------- #
# R6: metrics naming discipline
# ---------------------------------------------------------------------- #
class MetricsDisciplineRule(Rule):
    """Metric names come from the obs/names.py catalogue, never free strings."""

    name = "metrics-discipline"
    description = ("registry.counter/gauge/histogram call sites in src/ must "
                   "name their metric via a constant of "
                   "src/repro/obs/names.py, not a string literal")

    CATALOGUE_FILE = "src/repro/obs/names.py"
    #: The registry's accessor methods whose first argument is a metric name.
    ACCESSORS = frozenset({"counter", "gauge", "histogram"})
    #: The catalogue module itself (and the registry that validates against
    #: it) may hold the raw strings.
    EXEMPT_PREFIX = "src/repro/obs/"

    def check(self, project: Project) -> Iterator[Diagnostic]:
        constants = self._catalogue_constants(project)
        for source_file in _requested_src(project):
            if source_file.relpath.startswith(self.EXEMPT_PREFIX):
                continue
            assert source_file.tree is not None
            for node in ast.walk(source_file.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                if not (isinstance(callee, ast.Attribute)
                        and callee.attr in self.ACCESSORS):
                    continue
                if not node.args:
                    yield self.diagnostic(source_file, node, (
                        f"metric accessor .{callee.attr}() called without a "
                        f"metric name"))
                    continue
                argument = node.args[0]
                if constants is None:
                    yield self.diagnostic(source_file, node, (
                        f"{self.CATALOGUE_FILE} is missing or unparsable; "
                        f"metric names cannot be checked against the "
                        f"catalogue"))
                    return
                yield from self._check_argument(source_file, node, callee,
                                                argument, constants)

    def _check_argument(self, source_file: SourceFile, node: ast.Call,
                        callee: ast.Attribute, argument: ast.expr,
                        constants: Set[str]) -> Iterator[Diagnostic]:
        if isinstance(argument, ast.Constant) and \
                isinstance(argument.value, str):
            yield self.diagnostic(source_file, node, (
                f"free-string metric name {argument.value!r} passed to "
                f".{callee.attr}(); register it in {self.CATALOGUE_FILE} "
                f"and reference the constant"))
        elif not self._resolves_to_constant(argument, constants):
            yield self.diagnostic(source_file, node, (
                f"metric name argument {_name_of(argument)!r} of "
                f".{callee.attr}() does not reference a "
                f"{self.CATALOGUE_FILE} constant"))

    @classmethod
    def _resolves_to_constant(cls, argument: ast.expr,
                              constants: Set[str]) -> bool:
        """Does this expression name a catalogue constant (both arms of a
        conditional must)?"""
        if isinstance(argument, ast.Name):
            return argument.id in constants
        if isinstance(argument, ast.Attribute):
            return argument.attr in constants
        if isinstance(argument, ast.IfExp):
            return cls._resolves_to_constant(argument.body, constants) and \
                cls._resolves_to_constant(argument.orelse, constants)
        return False

    def _catalogue_constants(self, project: Project) -> Optional[Set[str]]:
        catalogue = project.get(self.CATALOGUE_FILE)
        if catalogue is None or catalogue.tree is None:
            return None
        constants: Set[str] = set()
        for node in catalogue.tree.body:
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Constant) and \
                    isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id.isupper():
                        constants.add(target.id)
        return constants or None


# ---------------------------------------------------------------------- #
# R7: exception discipline
# ---------------------------------------------------------------------- #
class ExceptionDisciplineRule(Rule):
    """No bare excepts; broad catches must re-raise or declare themselves."""

    name = "exception-discipline"
    description = ("no bare 'except:' in src/, and 'except Exception' / "
                   "'except BaseException' handlers must re-raise or carry "
                   "'# lint: allow(exception-discipline)' — silent broad "
                   "swallows hide exactly the failures the fault-injection "
                   "harness exists to surface")

    BROAD_NAMES = frozenset({"Exception", "BaseException"})

    def check(self, project: Project) -> Iterator[Diagnostic]:
        for source_file in _requested_src(project):
            assert source_file.tree is not None
            for node in ast.walk(source_file.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield self.diagnostic(source_file, node, (
                        "bare 'except:' catches SystemExit and "
                        "KeyboardInterrupt too; name the exception(s) this "
                        "handler can actually recover from"))
                    continue
                broad = self._broad_name(node.type)
                if broad is None:
                    continue
                if self._reraises(node):
                    continue
                yield self.diagnostic(source_file, node, (
                    f"'except {broad}' swallows every failure (no raise in "
                    f"the handler body); catch the specific exception, "
                    f"re-raise, or declare the swallow with "
                    f"'# lint: allow(exception-discipline)'"))

    @classmethod
    def _broad_name(cls, expression: ast.expr) -> Optional[str]:
        """The broad class name this except clause catches, or ``None``."""
        candidates: Iterable[ast.expr]
        if isinstance(expression, ast.Tuple):
            candidates = expression.elts
        else:
            candidates = (expression,)
        for candidate in candidates:
            name = _name_of(candidate).split(".")[-1]
            if name in cls.BROAD_NAMES:
                return name
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """Does any statement of the handler body raise?"""
        return any(isinstance(node, ast.Raise)
                   for statement in handler.body
                   for node in ast.walk(statement))


RULES: Tuple[Rule, ...] = (
    HotLoopPurityRule(),
    ParityRegistrationRule(),
    TypedErrorsRule(),
    SqliteDisciplineRule(),
    BenchHonestyRule(),
    MetricsDisciplineRule(),
    ExceptionDisciplineRule(),
)

_RULES_BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in RULES}


def rule_names() -> List[str]:
    """Every registered rule name, sorted."""
    return sorted(_RULES_BY_NAME)


def get_rule(name: str) -> Rule:
    """The registered rule called ``name`` (raises on unknown names)."""
    try:
        return _RULES_BY_NAME[name]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {name!r}; known: {', '.join(rule_names())}"
        ) from None
