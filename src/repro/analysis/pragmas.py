"""Suppression pragmas: per-line and per-file rule allowlists.

Syntax (inside a regular ``#`` comment)::

    x = DeweyCode(...)  # lint: allow(hot-loop-purity) result boundary
    # lint: allow(rule-a, rule-b)   <- alone on a line: applies to the NEXT line
    # lint: allow-file(sqlite-discipline)

``allow(*)`` suppresses every rule on that line.  Trailing free text after
the closing parenthesis is encouraged — it is the human justification for
the declared exception.

Comments are found with :mod:`tokenize` so pragma-looking text inside string
literals never suppresses anything; files that fail to tokenize (the engine
only analyzes files that parse, so this is rare) fall back to a conservative
line scan.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

_PRAGMA = re.compile(r"#\s*lint:\s*(allow|allow-file)\(([^)]*)\)")


@dataclass
class PragmaIndex:
    """Which rules are allowed on which lines (plus file-wide allowances)."""

    line_allows: Dict[int, Set[str]] = field(default_factory=dict)
    file_allows: Set[str] = field(default_factory=set)

    def allows(self, line: int, rule: str) -> bool:
        """True when ``rule`` is suppressed at ``line``."""
        if rule in self.file_allows or "*" in self.file_allows:
            return True
        allowed = self.line_allows.get(line)
        if not allowed:
            return False
        return rule in allowed or "*" in allowed

    def _add(self, kind: str, names: Set[str], line: int,
             standalone: bool) -> None:
        if kind == "allow-file":
            self.file_allows |= names
            return
        self.line_allows.setdefault(line, set()).update(names)
        if standalone:
            # A pragma comment alone on its line covers the next line too,
            # so multi-line statements can carry the pragma above them.
            self.line_allows.setdefault(line + 1, set()).update(names)


def _parse_comment(text: str) -> Tuple[str, Set[str]]:
    """``(kind, rule names)`` of one comment, or ``("", set())``."""
    match = _PRAGMA.search(text)
    if not match:
        return "", set()
    names = {name.strip() for name in match.group(2).split(",") if name.strip()}
    return match.group(1), names


def parse_pragmas(source: str) -> PragmaIndex:
    """Extract every pragma of one file's source text."""
    index = PragmaIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError, IndentationError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            kind, names = _parse_comment(line)
            if names:
                index._add(kind, names, lineno,
                           standalone=line.lstrip().startswith("#"))
        return index
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        kind, names = _parse_comment(token.string)
        if not names:
            continue
        standalone = token.line.lstrip().startswith("#")
        index._add(kind, names, token.start[0], standalone)
    return index
