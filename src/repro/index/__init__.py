"""Inverted index substrate: keyword posting lists and corpus statistics."""

from .inverted import InvertedIndex, PostingList, build_index, merge_keyword_nodes
from .source import PostingSource
from .statistics import (
    DocumentProfile,
    KeywordFrequency,
    document_profile,
    frequency_table,
    keyword_frequencies,
    top_keywords,
)

__all__ = [
    "InvertedIndex",
    "PostingList",
    "PostingSource",
    "build_index",
    "merge_keyword_nodes",
    "KeywordFrequency",
    "DocumentProfile",
    "keyword_frequencies",
    "frequency_table",
    "document_profile",
    "top_keywords",
]
