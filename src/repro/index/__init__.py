"""Inverted index substrate: keyword posting lists and corpus statistics."""

from .inverted import InvertedIndex, PostingList, build_index, merge_keyword_nodes
from .packed import (
    EMPTY_PACKED,
    PackedDeweyList,
    REPRESENTATIONS,
    as_packed,
    iter_matches,
    merge_packed,
    pack_component_tuples,
    pack_deweys,
)
from .source import (
    EMPTY_IMPACT,
    KeywordImpact,
    PostingSource,
    impact_from_postings,
    keyword_impact,
)
from .statistics import (
    DocumentProfile,
    KeywordFrequency,
    document_profile,
    frequency_table,
    keyword_frequencies,
    top_keywords,
)

__all__ = [
    "EMPTY_IMPACT",
    "EMPTY_PACKED",
    "InvertedIndex",
    "KeywordImpact",
    "impact_from_postings",
    "keyword_impact",
    "PackedDeweyList",
    "PostingList",
    "PostingSource",
    "REPRESENTATIONS",
    "as_packed",
    "iter_matches",
    "merge_packed",
    "pack_component_tuples",
    "pack_deweys",
    "build_index",
    "merge_keyword_nodes",
    "KeywordFrequency",
    "DocumentProfile",
    "keyword_frequencies",
    "frequency_table",
    "document_profile",
    "top_keywords",
]
