"""The backend-agnostic posting-source seam.

Every retrieval path of the library — the search pipelines, the engine's
batch API, the benchmark drivers — fetches keyword posting lists through the
:class:`PostingSource` protocol instead of talking to a concrete index.  The
in-memory :class:`~repro.index.inverted.InvertedIndex` is the reference
implementation; the disk-backed sources in :mod:`repro.storage.posting_source`
(sqlite-backed and sharded) implement the same surface, which is what lets
one :class:`~repro.core.engine.SearchEngine` run over any of them and what the
backend-parity test suite (``tests/test_backend_parity.py``) enforces: any new
backend must produce posting lists — and therefore search results — identical
to the memory backend.

The protocol has two layers:

* the four retrieval methods (``postings``, ``keyword_nodes``, ``frequency``,
  ``vocabulary``) every stage-1 caller needs, and
* two node-lookup methods (``node_label``, ``node_words``) that let the later
  pipeline stages (record-tree construction, degraded rendering) run without a
  resident :class:`~repro.xmltree.tree.XMLTree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    runtime_checkable,
    Protocol,
)

from ..xmltree import DeweyCode
from .inverted import PostingList
from .packed import PackedDeweyList


@runtime_checkable
class PostingSource(Protocol):
    """What every posting-list backend must provide.

    Implementations promise that posting lists are **strictly sorted in
    document (Dewey) order and duplicate-free**, that keywords are normalized
    with the same tokenizer the query side uses, and that ``frequency(w) ==
    len(postings(w))`` — the invariants the property suite
    (``tests/test_posting_properties.py``) checks across backends.
    """

    @property
    def source_id(self) -> str:
        """Stable identity of the backend (used in query-cache keys)."""
        ...

    def postings(self, keyword: str) -> PostingList:
        """The posting list of one (raw, un-normalized) keyword."""
        ...

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, List[DeweyCode]]:
        """The ``D_i`` lists of a whole query (``getKeywordNodes``).

        Maps each *normalized* keyword to its sorted Dewey list; keywords
        with no match map to an empty list.  Backends are encouraged to batch
        this (one round-trip for the whole query) — the engine's
        ``search_many`` fast path funnels the union of a batch's keywords
        through one call.
        """
        ...

    def frequency(self, keyword: str) -> int:
        """Number of keyword nodes containing ``keyword``."""
        ...

    def vocabulary(self) -> List[str]:
        """Every indexed word, sorted."""
        ...

    def node_label(self, dewey: DeweyCode) -> Optional[str]:
        """The label of one document node, or ``None`` when absent."""
        ...

    def node_words(self, dewey: DeweyCode) -> FrozenSet[str]:
        """The content word set ``C_v`` of one document node."""
        ...


@dataclass(frozen=True)
class KeywordImpact:
    """Per-(document, keyword) ranking metadata.

    ``count`` is the keyword's posting-list length (its document frequency
    within one document) and ``max_depth`` the deepest Dewey **level** (root
    = 0) of any node containing the keyword.  Both are exact integers derived
    from the posting list alone, so every backend — packed blobs written at
    shred time, legacy databases, in-memory indexes — agrees bit for bit,
    which is what lets the corpus ranking derive score bounds from them
    without consulting the posting lists themselves.

    An absent keyword has ``count == 0`` (its ``max_depth`` is meaningless
    and pinned to 0).
    """

    count: int
    max_depth: int

    @property
    def empty(self) -> bool:
        """True when the keyword does not occur at all."""
        return self.count == 0


#: The impact of a keyword with no postings.
EMPTY_IMPACT = KeywordImpact(count=0, max_depth=0)


def impact_from_postings(deweys: Sequence[DeweyCode]) -> KeywordImpact:
    """Compute a :class:`KeywordImpact` directly from a posting list.

    This is the lazy fallback every source without precomputed metadata
    shares, and the definition the precomputed paths must agree with.
    """
    count = len(deweys)
    if not count:
        return EMPTY_IMPACT
    if isinstance(deweys, PackedDeweyList):
        # Component counts straight off the offset table — no DeweyCode
        # objects are materialized (depth = component count = level + 1).
        deepest = max(deweys.depth(index) for index in range(count)) - 1
    else:
        deepest = max(dewey.level for dewey in deweys)
    return KeywordImpact(count=count, max_depth=deepest)


def keyword_impact(source: PostingSource, keyword: str) -> KeywordImpact:
    """The impact metadata of one (raw) keyword on any posting source.

    Sources that precompute (or cheaply derive) the metadata expose an
    optional ``impact(keyword)`` method; everything else falls back to a
    posting-list scan.  ``impact`` is deliberately *not* part of the
    :class:`PostingSource` protocol — backends opt in, and the fallback keeps
    every existing source rankable.
    """
    impact = getattr(source, "impact", None)
    if impact is not None:
        return impact(keyword)
    return impact_from_postings(source.postings(keyword).deweys)
