"""The backend-agnostic posting-source seam.

Every retrieval path of the library — the search pipelines, the engine's
batch API, the benchmark drivers — fetches keyword posting lists through the
:class:`PostingSource` protocol instead of talking to a concrete index.  The
in-memory :class:`~repro.index.inverted.InvertedIndex` is the reference
implementation; the disk-backed sources in :mod:`repro.storage.posting_source`
(sqlite-backed and sharded) implement the same surface, which is what lets
one :class:`~repro.core.engine.SearchEngine` run over any of them and what the
backend-parity test suite (``tests/test_backend_parity.py``) enforces: any new
backend must produce posting lists — and therefore search results — identical
to the memory backend.

The protocol has two layers:

* the four retrieval methods (``postings``, ``keyword_nodes``, ``frequency``,
  ``vocabulary``) every stage-1 caller needs, and
* two node-lookup methods (``node_label``, ``node_words``) that let the later
  pipeline stages (record-tree construction, degraded rendering) run without a
  resident :class:`~repro.xmltree.tree.XMLTree`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    runtime_checkable,
    Protocol,
)

from ..xmltree import DeweyCode
from .inverted import PostingList


@runtime_checkable
class PostingSource(Protocol):
    """What every posting-list backend must provide.

    Implementations promise that posting lists are **strictly sorted in
    document (Dewey) order and duplicate-free**, that keywords are normalized
    with the same tokenizer the query side uses, and that ``frequency(w) ==
    len(postings(w))`` — the invariants the property suite
    (``tests/test_posting_properties.py``) checks across backends.
    """

    @property
    def source_id(self) -> str:
        """Stable identity of the backend (used in query-cache keys)."""
        ...

    def postings(self, keyword: str) -> PostingList:
        """The posting list of one (raw, un-normalized) keyword."""
        ...

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, List[DeweyCode]]:
        """The ``D_i`` lists of a whole query (``getKeywordNodes``).

        Maps each *normalized* keyword to its sorted Dewey list; keywords
        with no match map to an empty list.  Backends are encouraged to batch
        this (one round-trip for the whole query) — the engine's
        ``search_many`` fast path funnels the union of a batch's keywords
        through one call.
        """
        ...

    def frequency(self, keyword: str) -> int:
        """Number of keyword nodes containing ``keyword``."""
        ...

    def vocabulary(self) -> List[str]:
        """Every indexed word, sorted."""
        ...

    def node_label(self, dewey: DeweyCode) -> Optional[str]:
        """The label of one document node, or ``None`` when absent."""
        ...

    def node_words(self, dewey: DeweyCode) -> FrozenSet[str]:
        """The content word set ``C_v`` of one document node."""
        ...
