"""Corpus statistics: keyword frequencies and document profiles.

Section 5.1 of the paper reports, for each dataset, the frequency of every
keyword used to build the query workload (e.g. ``keyword (90)`` in DBLP,
``particle (12, 33, 69)`` across the three XMark scales).  This module
regenerates that table for any document and also provides general document
profiles used in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..xmltree import XMLTree
from .inverted import InvertedIndex


@dataclass(frozen=True)
class KeywordFrequency:
    """Frequency of one keyword in one dataset."""

    keyword: str
    frequency: int


@dataclass(frozen=True)
class DocumentProfile:
    """Structural and lexical profile of one document."""

    name: str
    node_count: int
    max_depth: int
    distinct_labels: int
    vocabulary_size: int
    total_postings: int
    label_histogram: Mapping[str, int] = field(default_factory=dict)

    def as_row(self) -> Tuple:
        return (self.name, self.node_count, self.max_depth, self.distinct_labels,
                self.vocabulary_size, self.total_postings)


def keyword_frequencies(index: InvertedIndex,
                        keywords: Iterable[str]) -> List[KeywordFrequency]:
    """Frequencies of the given keywords in the indexed document."""
    return [KeywordFrequency(keyword, index.frequency(keyword))
            for keyword in keywords]


def frequency_table(indexes: Mapping[str, InvertedIndex],
                    keywords: Sequence[str]) -> List[Dict[str, object]]:
    """The Section 5.1 style table: one row per keyword, one column per dataset."""
    rows: List[Dict[str, object]] = []
    for keyword in keywords:
        row: Dict[str, object] = {"keyword": keyword}
        for dataset_name, index in indexes.items():
            row[dataset_name] = index.frequency(keyword)
        rows.append(row)
    return rows


def document_profile(tree: XMLTree, index: InvertedIndex,
                     name: str = "") -> DocumentProfile:
    """Profile a document: size, depth, labels, vocabulary."""
    histogram = tree.label_histogram()
    return DocumentProfile(
        name=name or tree.name or "document",
        node_count=tree.size(),
        max_depth=tree.max_depth(),
        distinct_labels=len(histogram),
        vocabulary_size=index.vocabulary_size(),
        total_postings=index.total_postings(),
        label_histogram=histogram,
    )


def top_keywords(index: InvertedIndex, limit: int = 20) -> List[KeywordFrequency]:
    """The ``limit`` most frequent indexed words (useful to design workloads)."""
    pairs = [(word, index.frequency(word)) for word in index.vocabulary()]
    pairs.sort(key=lambda pair: (-pair[1], pair[0]))
    return [KeywordFrequency(word, freq) for word, freq in pairs[:limit]]
