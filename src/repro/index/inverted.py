"""Inverted keyword index over an XML tree.

The first stage of both MaxMatch and ValidRTF (``getKeywordNodes``) retrieves,
for each query keyword ``w_i``, the sorted Dewey-code list ``D_i`` of nodes
whose content contains ``w_i``.  This module builds that mapping once per
document so repeated queries only cost a dictionary lookup per keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from ..text import ContentAnalyzer, DEFAULT_TOKENIZER, Tokenizer
from ..xmltree import DeweyCode, XMLTree


@dataclass(frozen=True)
class PostingList:
    """The sorted Dewey codes of the nodes containing one keyword."""

    keyword: str
    deweys: Sequence[DeweyCode]

    def __len__(self) -> int:
        return len(self.deweys)

    def __iter__(self):
        return iter(self.deweys)

    def __bool__(self) -> bool:
        return bool(self.deweys)


class InvertedIndex:
    """word -> sorted list of Dewey codes of keyword nodes.

    This is the in-memory reference implementation of the
    :class:`~repro.index.source.PostingSource` protocol; the disk-backed
    sources in :mod:`repro.storage.posting_source` must agree with it
    keyword by keyword (enforced by ``tests/test_backend_parity.py``).

    Parameters
    ----------
    tree:
        The document to index.
    tokenizer:
        Tokenizer shared with the query side so document words and query
        keywords normalize identically.
    """

    def __init__(self, tree: XMLTree, tokenizer: Tokenizer = DEFAULT_TOKENIZER):
        self.tree = tree
        self.tokenizer = tokenizer
        self.analyzer = ContentAnalyzer(tree, tokenizer)
        self._postings: Dict[str, List[DeweyCode]] = {}
        self._node_words: Dict[DeweyCode, FrozenSet[str]] = {}
        self._build()

    def _build(self) -> None:
        for node in self.tree.iter_preorder():
            words = self.analyzer.node_content(node)
            self._node_words[node.dewey] = words
            for word in words:
                self._postings.setdefault(word, []).append(node.dewey)
        for posting in self._postings.values():
            posting.sort()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def postings(self, keyword: str) -> PostingList:
        """The posting list for a (raw, un-normalized) keyword."""
        normalized = self.tokenizer.normalize_keyword(keyword)
        return PostingList(normalized, tuple(self._postings.get(normalized, ())))

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, List[DeweyCode]]:
        """The ``D_i`` lists for every keyword of a query (getKeywordNodes).

        The result maps each *normalized* keyword to its sorted Dewey list;
        keywords with no match map to an empty list.
        """
        result: Dict[str, List[DeweyCode]] = {}
        for keyword in self.tokenizer.normalize_query(query):
            result[keyword] = list(self._postings.get(keyword, ()))
        return result

    def frequency(self, keyword: str) -> int:
        """Number of keyword nodes containing ``keyword``."""
        return len(self.postings(keyword))

    @property
    def source_id(self) -> str:
        """Backend identity used in query-cache keys."""
        return "memory"

    def node_words(self, dewey: DeweyCode) -> FrozenSet[str]:
        """The indexed content word set of one node."""
        return self._node_words.get(dewey, frozenset())

    def node_label(self, dewey: DeweyCode) -> Optional[str]:
        """The label of one node, or ``None`` when the code is absent."""
        node = self.tree.get(dewey)
        return node.label if node is not None else None

    def vocabulary(self) -> List[str]:
        """Every indexed word, sorted."""
        return sorted(self._postings)

    def vocabulary_size(self) -> int:
        """Number of distinct indexed words."""
        return len(self._postings)

    def total_postings(self) -> int:
        """Total number of (word, node) pairs in the index."""
        return sum(len(posting) for posting in self._postings.values())

    def __contains__(self, keyword: str) -> bool:
        return self.tokenizer.normalize_keyword(keyword) in self._postings

    def __repr__(self) -> str:
        return (f"InvertedIndex(words={self.vocabulary_size()}, "
                f"postings={self.total_postings()})")


def build_index(tree: XMLTree, tokenizer: Optional[Tokenizer] = None) -> InvertedIndex:
    """Convenience factory mirroring the facade naming used in examples."""
    return InvertedIndex(tree, tokenizer or DEFAULT_TOKENIZER)


def merge_keyword_nodes(lists: Mapping[str, Sequence[DeweyCode]]) -> List[DeweyCode]:
    """Union of all ``D_i`` lists, deduplicated, in document order."""
    merged = {dewey for deweys in lists.values() for dewey in deweys}
    return sorted(merged)
