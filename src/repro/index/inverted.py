"""Inverted keyword index over an XML tree.

The first stage of both MaxMatch and ValidRTF (``getKeywordNodes``) retrieves,
for each query keyword ``w_i``, the sorted Dewey-code list ``D_i`` of nodes
whose content contains ``w_i``.  This module builds that mapping once per
document so repeated queries only cost a dictionary lookup per keyword.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from ..text import ContentAnalyzer, DEFAULT_TOKENIZER, Tokenizer
from ..xmltree import DeweyCode, XMLTree
from .packed import (
    EMPTY_PACKED,
    PackedDeweyList,
    REPRESENTATIONS,
    pack_deweys,
    prefix_postings,
)


@dataclass(frozen=True)
class PostingList:
    """The sorted Dewey codes of the nodes containing one keyword.

    ``deweys`` is frozen at construction: mutable sequences are copied into a
    tuple (immutable packed columns pass through untouched), so a posting list
    can never alias — and later observe mutations of — a caller's list, and
    packed↔object conversions are always built from a stable snapshot.
    """

    keyword: str
    deweys: Sequence[DeweyCode]

    def __post_init__(self) -> None:
        if not isinstance(self.deweys, (tuple, PackedDeweyList)):
            object.__setattr__(self, "deweys", tuple(self.deweys))

    def __len__(self) -> int:
        return len(self.deweys)

    def __iter__(self) -> Iterator[DeweyCode]:
        return iter(self.deweys)

    def __bool__(self) -> bool:
        return bool(self.deweys)


class InvertedIndex:
    """word -> sorted list of Dewey codes of keyword nodes.

    This is the in-memory reference implementation of the
    :class:`~repro.index.source.PostingSource` protocol; the disk-backed
    sources in :mod:`repro.storage.posting_source` must agree with it
    keyword by keyword (enforced by ``tests/test_backend_parity.py``).

    Parameters
    ----------
    tree:
        The document to index.
    tokenizer:
        Tokenizer shared with the query side so document words and query
        keywords normalize identically.
    representation:
        ``"packed"`` (the default) stores every posting list as flat
        :class:`~repro.index.packed.PackedDeweyList` columns, which the
        rewritten SLCA/RTF hot loops consume without materializing
        :class:`DeweyCode` objects; ``"object"`` keeps the classic tuples of
        codes.  Both produce byte-identical search results.
    """

    def __init__(self, tree: XMLTree, tokenizer: Tokenizer = DEFAULT_TOKENIZER,
                 representation: str = "packed") -> None:
        if representation not in REPRESENTATIONS:
            raise ValueError(f"unknown representation {representation!r}; "
                             f"expected one of {REPRESENTATIONS}")
        self.tree = tree
        self.tokenizer = tokenizer
        self.representation = representation
        self.analyzer = ContentAnalyzer(tree, tokenizer)
        self._postings: Dict[str, Sequence[DeweyCode]] = {}
        self._node_words: Dict[DeweyCode, FrozenSet[str]] = {}
        self._impacts: Dict[str, "KeywordImpact"] = {}
        self._build()

    def _build(self) -> None:
        postings: Dict[str, List[DeweyCode]] = {}
        for node in self.tree.iter_preorder():
            words = self.analyzer.node_content(node)
            self._node_words[node.dewey] = words
            for word in words:
                postings.setdefault(word, []).append(node.dewey)
        # iter_preorder yields document order, so the per-word lists are
        # already sorted and duplicate-free (node_content is a set per node).
        if self.representation == "packed":
            self._postings = {word: pack_deweys(deweys, presorted=True)
                              for word, deweys in postings.items()}
        else:
            self._postings = {word: tuple(deweys)
                              for word, deweys in postings.items()}

    def _empty(self) -> Sequence[DeweyCode]:
        return EMPTY_PACKED if self.representation == "packed" else ()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def postings(self, keyword: str) -> PostingList:
        """The posting list for a (raw, un-normalized) keyword."""
        normalized = self.tokenizer.normalize_keyword(keyword)
        return PostingList(normalized,
                           self._postings.get(normalized, self._empty()))

    def keyword_nodes(self, query: Iterable[str]) -> Dict[str, Sequence[DeweyCode]]:
        """The ``D_i`` lists for every keyword of a query (getKeywordNodes).

        The result maps each *normalized* keyword to its sorted Dewey list;
        keywords with no match map to an empty list.  Under the packed
        representation the shared immutable columns themselves are returned
        (they are never mutated); the object representation hands out copies.
        """
        result: Dict[str, Sequence[DeweyCode]] = {}
        if self.representation == "packed":
            for keyword in self.tokenizer.normalize_query(query):
                result[keyword] = self._postings.get(keyword, EMPTY_PACKED)
        else:
            for keyword in self.tokenizer.normalize_query(query):
                result[keyword] = list(self._postings.get(keyword, ()))
        return result

    def prefixed_postings(self, keyword: str, ordinal: int) -> Sequence[DeweyCode]:
        """The posting list with a corpus doc ordinal prepended to every code.

        The corpus layer (:mod:`repro.corpus`) keeps one index per document
        and serves corpus-wide posting lists as the concatenation of the
        per-document lists, each prefixed with the document's ordinal
        (:func:`~repro.index.packed.prefix_postings` — a flat column rebuild
        under the packed representation, boxed prefixed codes under the
        object one).
        """
        normalized = self.tokenizer.normalize_keyword(keyword)
        deweys = self._postings.get(normalized)
        if deweys is None:
            return self._empty()
        return prefix_postings(deweys, ordinal)

    def frequency(self, keyword: str) -> int:
        """Number of keyword nodes containing ``keyword``."""
        return len(self.postings(keyword))

    def impact(self, keyword: str) -> "KeywordImpact":
        """Posting count + deepest node level of one keyword (memoized).

        The memory backend has no shred-time metadata to read back, so the
        impact is derived from the resident posting list on first request
        and cached — the lazy-compute arm of the ranking metadata seam
        (:func:`repro.index.source.keyword_impact`).
        """
        from .source import impact_from_postings  # source.py imports us
        normalized = self.tokenizer.normalize_keyword(keyword)
        cached = self._impacts.get(normalized)
        if cached is None:
            cached = impact_from_postings(self._postings.get(normalized, ()))
            self._impacts[normalized] = cached
        return cached

    @property
    def source_id(self) -> str:
        """Backend identity used in query-cache keys."""
        return "memory"

    def node_words(self, dewey: DeweyCode) -> FrozenSet[str]:
        """The indexed content word set of one node."""
        return self._node_words.get(dewey, frozenset())

    def node_label(self, dewey: DeweyCode) -> Optional[str]:
        """The label of one node, or ``None`` when the code is absent."""
        node = self.tree.get(dewey)
        return node.label if node is not None else None

    def vocabulary(self) -> List[str]:
        """Every indexed word, sorted."""
        return sorted(self._postings)

    def vocabulary_size(self) -> int:
        """Number of distinct indexed words."""
        return len(self._postings)

    def total_postings(self) -> int:
        """Total number of (word, node) pairs in the index."""
        return sum(len(posting) for posting in self._postings.values())

    def __contains__(self, keyword: str) -> bool:
        return self.tokenizer.normalize_keyword(keyword) in self._postings

    def __repr__(self) -> str:
        return (f"InvertedIndex(words={self.vocabulary_size()}, "
                f"postings={self.total_postings()})")


def build_index(tree: XMLTree, tokenizer: Optional[Tokenizer] = None,
                representation: str = "packed") -> InvertedIndex:
    """Convenience factory mirroring the facade naming used in examples."""
    return InvertedIndex(tree, tokenizer or DEFAULT_TOKENIZER,
                         representation=representation)


def merge_keyword_nodes(lists: Mapping[str, Sequence[DeweyCode]]) -> List[DeweyCode]:
    """Union of all ``D_i`` lists, deduplicated, in document order."""
    merged = {dewey for deweys in lists.values() for dewey in deweys}
    return sorted(merged)
