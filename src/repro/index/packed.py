"""Packed columnar posting lists: flat-array Dewey storage for the hot loops.

The paper's stage-1/stage-2 cost (``getKeywordNodes`` + SLCA/RTF matching) is
dominated in a pure-Python reproduction by object churn: every posting used to
be a boxed :class:`~repro.xmltree.dewey.DeweyCode` (tuple + cached hash per
node), and the merge/stack loops materialized millions of derived codes per
benchmark run.  This module stores a keyword's sorted Dewey list as two flat
``array('I')`` columns instead:

* ``data`` — the concatenated integer components of every code, and
* ``offsets`` — ``n + 1`` cut points, so code ``i`` occupies
  ``data[offsets[i]:offsets[i+1]]``.

Under this layout the three operations the algorithms hammer become C-speed
primitives on unboxed integers:

* **document-order comparison** is lexicographic comparison of two array
  slices (``array`` implements rich comparison element-wise in C),
* **ancestor tests** are prefix compares: ``a`` is an ancestor-or-self of
  ``b`` iff ``b[:len(a)] == a``,
* **binary search / galloping** bisect the ``offsets`` column directly.

:class:`DeweyCode` objects are materialized only at result boundaries
(fragment roots, kept nodes, public API returns).  The serialized form
(:meth:`PackedDeweyList.to_blob`) adds prefix truncation between consecutive
codes — each code stores only the suffix it does not share with its
predecessor — which is what the sqlite backend persists as one blob per
keyword, so disk loads rebuild the columns without decoding per-row strings.

Everything here is representation-level plumbing: the packed and object paths
must produce byte-identical search results (``tests/test_backend_parity.py``
and the property suites enforce this across backends and seeds).
"""

from __future__ import annotations

import sys
from array import array
from collections.abc import Sequence as _SequenceABC
from heapq import heapify, heappop, heappush
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..xmltree import DeweyCode
from ..xmltree.errors import InvalidDeweyCode

__all__ = [
    "EMPTY_PACKED",
    "PackedDeweyList",
    "REPRESENTATIONS",
    "all_packed",
    "as_packed",
    "common_prefix_len",
    "concat_packed",
    "iter_matches",
    "merge_packed",
    "pack_component_tuples",
    "pack_deweys",
    "prefix_packed",
    "prefix_postings",
]

#: The representations a posting backend can serve.
REPRESENTATIONS = ("packed", "object")

#: Blob header magic (versioned so the on-disk format can evolve).
_BLOB_MAGIC = b"PKD1"

#: Byte-order tags persisted in blobs; foreign-order blobs are byteswapped.
_ORDER_TAGS = {"little": b"<", "big": b">"}

#: Dewey depths must fit the ``array('H')`` prefix/suffix length columns.
_MAX_DEPTH = 0xFFFF


class PackedDeweyList(_SequenceABC):
    """An immutable, strictly-sorted, duplicate-free packed Dewey list.

    The class satisfies ``Sequence[DeweyCode]`` — indexing and iteration
    materialize :class:`DeweyCode` objects — so it is a drop-in posting list
    for every existing caller, while the flat ``data`` / ``offsets`` columns
    let the rewritten hot loops run without touching objects at all.

    Instances are built by the pack/merge helpers below (or :meth:`from_blob`)
    which guarantee the sortedness invariant; the columns are never mutated
    after construction.
    """

    __slots__ = ("data", "offsets", "_hash")

    def __init__(self, data: "array[int]", offsets: "array[int]") -> None:
        if data.typecode != "I" or offsets.typecode != "I":
            raise ValueError("packed columns must be array('I')")
        if not len(offsets) or offsets[0] != 0 or offsets[-1] != len(data):
            raise ValueError("offsets must run from 0 to len(data)")
        self.data = data
        self.offsets = offsets
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Sequence protocol (object materialization at the boundary)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.offsets) - 1

    def __getitem__(self, index: Union[int, slice]
                    ) -> Union[DeweyCode, "PackedDeweyList"]:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                # A non-contiguous or reversed selection cannot stay packed —
                # the class invariant is strict document order — so it
                # degrades to the object form (a tuple of codes).
                return self.materialize()[index]
            if stop <= start:
                return PackedDeweyList(array("I"), array("I", [0]))
            offsets = self.offsets
            lo = offsets[start]
            cuts = array("I", (offsets[i] - lo
                               for i in range(start, stop + 1)))
            return PackedDeweyList(self.data[lo:offsets[stop]], cuts)
        offsets = self.offsets
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("packed posting index out of range")
        # lint: allow(hot-loop-purity) result boundary: one boxed code out
        return DeweyCode._from_tuple(
            tuple(self.data[offsets[index]:offsets[index + 1]]))

    def __iter__(self) -> Iterator[DeweyCode]:
        data, offsets = self.data, self.offsets
        from_tuple = DeweyCode._from_tuple
        for i in range(len(offsets) - 1):
            # lint: allow(hot-loop-purity) boxing IS this method's contract
            yield from_tuple(tuple(data[offsets[i]:offsets[i + 1]]))

    def __bool__(self) -> bool:
        return len(self.offsets) > 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedDeweyList):
            return self.data == other.data and self.offsets == other.offsets
        if isinstance(other, (list, tuple)):
            # Drop-in Sequence[DeweyCode] compatibility: compare by content.
            return len(other) == len(self) and all(
                isinstance(code, DeweyCode)
                # lint: allow(hot-loop-purity) comparing against boxed input
                and comps == code.components
                for comps, code in zip(self._component_tuples(), other))
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        # Instances are immutable; hashing keeps containers of posting lists
        # (e.g. a frozen PostingList dataclass) hashable under both
        # representations.  Hashing the materialized code tuple keeps the
        # eq/hash contract intact with the tuple-of-codes form __eq__ accepts
        # — mixed-representation containers see one entry, not two.  Computed
        # lazily and cached; hashing posting lists is rare and cold.
        if self._hash is None:
            self._hash = hash(self.materialize())
        return self._hash

    def _component_tuples(self) -> Iterator[Tuple[int, ...]]:
        data, offsets = self.data, self.offsets
        for i in range(len(offsets) - 1):
            yield tuple(data[offsets[i]:offsets[i + 1]])

    def __repr__(self) -> str:
        return (f"PackedDeweyList(n={len(self)}, "
                f"components={len(self.data)})")

    # ------------------------------------------------------------------ #
    # Zero-object cursor API
    # ------------------------------------------------------------------ #
    def slice(self, index: int) -> array:
        """The components of code ``index`` as a raw ``array('I')`` slice."""
        offsets = self.offsets
        return self.data[offsets[index]:offsets[index + 1]]

    def depth(self, index: int) -> int:
        """Number of components of code ``index`` (without materializing it)."""
        return self.offsets[index + 1] - self.offsets[index]

    def iter_slices(self) -> Iterator[array]:
        """Iterate the raw component slices in document order."""
        data, offsets = self.data, self.offsets
        for i in range(len(offsets) - 1):
            yield data[offsets[i]:offsets[i + 1]]

    def materialize(self) -> Tuple[DeweyCode, ...]:
        """All codes as a tuple of :class:`DeweyCode` (the result boundary)."""
        return tuple(self)

    def bisect_left(self, comps: Sequence[int]) -> int:
        """First position whose code is ``>= comps`` (flat binary search)."""
        if not isinstance(comps, array):
            comps = array("I", comps)
        data, offsets = self.data, self.offsets
        lo, hi = 0, len(offsets) - 1
        while lo < hi:
            mid = (lo + hi) >> 1
            if data[offsets[mid]:offsets[mid + 1]] < comps:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def gallop_left(self, comps: array, start: int) -> int:
        """First position ``>= start`` whose code is ``>= comps``.

        Exponential probe from ``start`` followed by a bisect of the bracketed
        window — the skip primitive of the k-way posting merge.
        """
        data, offsets = self.data, self.offsets
        n = len(offsets) - 1
        step = 1
        lo = start
        while lo + step < n and data[offsets[lo + step]:offsets[lo + step + 1]] < comps:
            lo += step
            step <<= 1
        hi = min(lo + step, n)
        # ``lo`` is known < comps only after at least one successful probe.
        if lo > start:
            lo += 1
        while lo < hi:
            mid = (lo + hi) >> 1
            if data[offsets[mid]:offsets[mid + 1]] < comps:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------ #
    # Blob codec (prefix truncation between consecutive codes)
    # ------------------------------------------------------------------ #
    def to_blob(self) -> bytes:
        """Serialize to the prefix-truncated binary form.

        Layout (after a 5-byte ``PKD1`` + byte-order header): ``u32 count``,
        ``u32 suffix_component_count``, then three raw array dumps — per-code
        shared-prefix lengths (``u16``), per-code suffix lengths (``u16``) and
        the concatenated suffix components (``u32``).  Consecutive sorted
        Dewey codes share long prefixes, so the suffix column is typically a
        small fraction of the full ``data`` column.
        """
        data, offsets = self.data, self.offsets
        count = len(offsets) - 1
        prefix_lens = array("H")
        suffix_lens = array("H")
        suffixes = array("I")
        prev_start = prev_end = 0
        for i in range(count):
            start, end = offsets[i], offsets[i + 1]
            depth = end - start
            if depth > _MAX_DEPTH:
                raise ValueError(f"Dewey depth {depth} exceeds the blob format")
            shared = 0
            limit = min(depth, prev_end - prev_start)
            while shared < limit and data[start + shared] == data[prev_start + shared]:
                shared += 1
            prefix_lens.append(shared)
            suffix_lens.append(depth - shared)
            suffixes.extend(data[start + shared:end])
            prev_start, prev_end = start, end
        if sys.byteorder == "big":
            for column in (prefix_lens, suffix_lens, suffixes):
                column.byteswap()
        header = _BLOB_MAGIC + _ORDER_TAGS["little"]
        counts = array("I", [count, len(suffixes)])
        if sys.byteorder == "big":
            counts.byteswap()
        return (header + counts.tobytes() + prefix_lens.tobytes()
                + suffix_lens.tobytes() + suffixes.tobytes())

    @classmethod
    def from_blob(cls, blob: bytes) -> "PackedDeweyList":
        """Rebuild the flat columns from :meth:`to_blob` output.

        The column dumps are loaded with ``array.frombytes`` (C speed) and the
        full ``data`` column is reconstructed with one Python step per *code*
        (array-slice extends), never one per component and never a
        :class:`DeweyCode` object.
        """
        if blob[:4] != _BLOB_MAGIC:
            raise ValueError("not a packed posting blob (bad magic)")
        swap = blob[4:5] != _ORDER_TAGS[sys.byteorder]
        counts = array("I")
        counts.frombytes(blob[5:13])
        if swap:
            counts.byteswap()
        count, suffix_total = counts
        pos = 13
        prefix_lens = array("H")
        prefix_lens.frombytes(blob[pos:pos + 2 * count])
        pos += 2 * count
        suffix_lens = array("H")
        suffix_lens.frombytes(blob[pos:pos + 2 * count])
        pos += 2 * count
        suffixes = array("I")
        suffixes.frombytes(blob[pos:pos + 4 * suffix_total])
        if swap:
            for column in (prefix_lens, suffix_lens, suffixes):
                column.byteswap()
        if len(prefix_lens) != count or len(suffix_lens) != count \
                or len(suffixes) != suffix_total:
            raise ValueError("truncated packed posting blob")
        data = array("I")
        offsets = array("I", [0])
        append_offset = offsets.append
        suffix_pos = 0
        prev_start = 0
        for i in range(count):
            shared = prefix_lens[i]
            take = suffix_lens[i]
            start = len(data)
            if shared:
                data.extend(data[prev_start:prev_start + shared])
            if take:
                data.extend(suffixes[suffix_pos:suffix_pos + take])
                suffix_pos += take
            append_offset(len(data))
            prev_start = start
        return cls(data, offsets)


#: The canonical empty packed list (missing keywords map to it).
EMPTY_PACKED = PackedDeweyList(array("I"), array("I", [0]))


# ---------------------------------------------------------------------- #
# Packing constructors
# ---------------------------------------------------------------------- #
def pack_component_tuples(components: Iterable[Sequence[int]],
                          presorted: bool = False) -> PackedDeweyList:
    """Pack an iterable of component sequences into flat columns.

    Deduplicates and sorts unless ``presorted`` promises the input is already
    strictly sorted in document order.
    """
    items: Iterable[Sequence[int]] = components
    if not presorted:
        items = sorted({tuple(parts) for parts in components})
    data = array("I")
    offsets = array("I", [0])
    append_offset = offsets.append
    for parts in items:
        data.extend(parts)
        append_offset(len(data))
    return PackedDeweyList(data, offsets)


def pack_deweys(deweys: Iterable[DeweyCode],
                presorted: bool = False) -> PackedDeweyList:
    """Pack :class:`DeweyCode` objects (the object→packed conversion)."""
    return pack_component_tuples(
        # lint: allow(hot-loop-purity) the object→packed conversion boundary
        (code.components for code in deweys), presorted=presorted)


def as_packed(postings: Sequence) -> PackedDeweyList:
    """Coerce any sorted posting sequence into its packed form."""
    if isinstance(postings, PackedDeweyList):
        return postings
    return pack_deweys(
        # lint: allow(hot-loop-purity) ingest boundary: any input → packed
        (DeweyCode.coerce(code) for code in postings), presorted=False)


def common_prefix_len(left: Sequence[int], right: Sequence[int]) -> int:
    """Length of the longest common prefix of two component sequences."""
    limit = min(len(left), len(right))
    shared = 0
    while shared < limit and left[shared] == right[shared]:
        shared += 1
    return shared


def deepest_neighbor_prefix_len(node: Sequence[int], plist: PackedDeweyList,
                                position: int) -> int:
    """Depth of the deepest LCA of ``node`` with ``plist``'s neighbors.

    The shared predecessor/successor probe of the Indexed Lookup and Scan
    Eager packed paths: only the elements at ``position - 1`` and ``position``
    (the node's document-order neighbors) can give the deepest common prefix.
    Raises :class:`InvalidDeweyCode` when neither neighbor shares a prefix
    (the codes then belong to different roots), mirroring the object path's
    ``DeweyCode.common_prefix``.
    """
    best = 0
    if position < len(plist):
        best = common_prefix_len(node, plist.slice(position))
    if position > 0:
        shared = common_prefix_len(node, plist.slice(position - 1))
        if shared > best:
            best = shared
    if not best:
        raise InvalidDeweyCode(
            # lint: allow(hot-loop-purity) error path, never taken when hot
            f"{DeweyCode._from_tuple(tuple(node))} shares no common "
            f"prefix with the posting list (different roots)")
    return best


# ---------------------------------------------------------------------- #
# K-way merge kernels
# ---------------------------------------------------------------------- #
def iter_matches(lists: Sequence[PackedDeweyList]
                 ) -> Iterator[Tuple[array, int]]:
    """Merge packed lists into one document-order ``(components, mask)`` stream.

    The packed counterpart of :func:`repro.lca.base.merge_matches`: a node
    occurring in several lists is emitted once with all the corresponding bits
    set (list ``i`` sets bit ``1 << i``).  Implementation: a heap-based k-way
    merge whose per-list cursors **gallop** — after emitting the head of list
    ``i``, every following element of ``i`` still below the new heap minimum
    is emitted in one bulk run (found by exponential search), skipping the
    heap entirely.  Skewed frequency distributions, the common case for
    keyword postings, therefore pay roughly one heap operation per *run*
    rather than one per posting.

    Yields raw ``array('I')`` component slices; nothing is materialized.
    """
    active = [(index, plist) for index, plist in enumerate(lists) if len(plist)]
    if not active:
        return
    if len(active) == 1:
        index, plist = active[0]
        bit = 1 << index
        for comps in plist.iter_slices():
            yield comps, bit
        return
    # Heap entries: (components, list index, cursor).  Components compare
    # first (array lexicographic order == document order); the list index
    # breaks ties so cursors are never compared.
    heap = [(plist.slice(0), index, 0) for index, plist in active]
    heapify(heap)
    while heap:
        comps, index, cursor = heappop(heap)
        mask = 1 << index
        while heap and heap[0][0] == comps:
            _, other_index, other_cursor = heappop(heap)
            mask |= 1 << other_index
            other = lists[other_index]
            if other_cursor + 1 < len(other):
                heappush(heap, (other.slice(other_cursor + 1),
                                other_index, other_cursor + 1))
        yield comps, mask
        plist = lists[index]
        count = len(plist)
        cursor += 1
        if cursor >= count:
            continue
        if not heap:
            # Every other list is exhausted: drain the rest as one run.
            bit = 1 << index
            data, offsets = plist.data, plist.offsets
            for i in range(cursor, count):
                yield data[offsets[i]:offsets[i + 1]], bit
            return
        # Gallop: emit the run of elements still below the heap minimum.
        top = heap[0][0]
        boundary = plist.gallop_left(top, cursor)
        if boundary > cursor:
            bit = 1 << index
            data, offsets = plist.data, plist.offsets
            for i in range(cursor, boundary):
                yield data[offsets[i]:offsets[i + 1]], bit
            cursor = boundary
        if cursor < count:
            heappush(heap, (plist.slice(cursor), index, cursor))


def merge_packed(lists: Sequence[PackedDeweyList]) -> PackedDeweyList:
    """Deduplicating k-way merge into one packed list (zero objects).

    Used by the sharded backend to stitch per-shard posting columns back into
    one document-order list without round-tripping through ``DeweyCode``.
    """
    data = array("I")
    offsets = array("I", [0])
    append_offset = offsets.append
    for comps, _ in iter_matches(lists):
        data.extend(comps)
        append_offset(len(data))
    return PackedDeweyList(data, offsets)


def prefix_packed(plist: PackedDeweyList, prefix: int) -> PackedDeweyList:
    """Prepend one component to every code of a packed list.

    This is the doc-id prefixing primitive of the corpus layer
    (:mod:`repro.corpus`): a corpus keeps one packed column set per document
    and exposes corpus-wide posting lists by prefixing each document's codes
    with the document's ordinal.  Prefixing preserves relative document order
    inside the list, so the result is still strictly sorted and
    duplicate-free.
    """
    count = len(plist)
    if not count:
        return EMPTY_PACKED
    old_data, old_offsets = plist.data, plist.offsets
    data = array("I")
    offsets = array("I", [0])
    append_offset = offsets.append
    for i in range(count):
        data.append(prefix)
        data.extend(old_data[old_offsets[i]:old_offsets[i + 1]])
        append_offset(len(data))
    return PackedDeweyList(data, offsets)


def prefix_postings(deweys: Sequence, prefix: int) -> Sequence:
    """Doc-ordinal prefixing for either posting representation.

    Packed lists go through :func:`prefix_packed`; object lists come back as
    a tuple of prefixed :class:`DeweyCode`.  The single implementation shared
    by :meth:`~repro.index.inverted.InvertedIndex.prefixed_postings` and the
    corpus source.
    """
    if isinstance(deweys, PackedDeweyList):
        return prefix_packed(deweys, prefix)
    # lint: allow(hot-loop-purity) object representation's own path
    return tuple(DeweyCode._from_tuple((prefix,) + code.components)
                 for code in deweys)


def concat_packed(lists: Sequence[PackedDeweyList]) -> PackedDeweyList:
    """Concatenate packed lists that are already globally sorted.

    The caller promises that every code of ``lists[i]`` precedes every code of
    ``lists[i + 1]`` in document order — true by construction for per-document
    lists prefixed with strictly increasing doc ordinals
    (:func:`prefix_packed`) — so no merge is needed: the columns are stitched
    together with two array extends per list.
    """
    useful = [plist for plist in lists if len(plist)]
    if not useful:
        return EMPTY_PACKED
    if len(useful) == 1:
        return useful[0]
    data = array("I")
    offsets = array("I", [0])
    for plist in useful:
        base = len(data)
        data.extend(plist.data)
        offsets.extend(array("I", (base + cut for cut in plist.offsets[1:])))
    return PackedDeweyList(data, offsets)


def all_packed(values: Iterable) -> Optional[List[PackedDeweyList]]:
    """The values as a list when every one is packed, else ``None``.

    The dispatch guard the rewritten algorithms use to choose between their
    packed and object hot loops.
    """
    packed: List[PackedDeweyList] = []
    for value in values:
        if not isinstance(value, PackedDeweyList):
            return None
        packed.append(value)
    return packed
