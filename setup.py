"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that fully offline environments (no access to PyPI for the ``wheel`` build
dependency) can still do an editable install with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
