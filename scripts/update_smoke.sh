#!/usr/bin/env bash
# Update smoke: the full segmented-corpus lifecycle through the CLI.
# ingest -> incremental add -> live update (delta segment) -> doc-tagged
# search -> delete (tombstone) -> compact -> search again.  Guards the
# `index --update` / `index --delete` / `compact` surface end to end; must
# stay fast (well under 30 s) — it runs inside `make smoke` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
db="$workdir/corpus.db"

echo "== ingest: base generation =="
python -m repro.cli index --dataset figure-1a --db "$db"
python -m repro.cli index --dataset figure-1b --db "$db" --add

echo "== export + mutate one document =="
python -m repro.cli datasets --name figure-1b --output "$workdir/"
sed -i 's/Conley/Morant/' "$workdir/figure-1b.xml"

echo "== live update: delta segment =="
python -m repro.cli index --update "$workdir/figure-1b.xml" --db "$db"

echo "== search spans base + segment documents =="
out="$(python -m repro.cli search --db "$db" --backend corpus "Morant guard")"
echo "$out"
echo "$out" | grep -q "figure-1b" || { echo "updated text not served"; exit 1; }

echo "== delete: tombstone =="
python -m repro.cli index --delete figure-1a --db "$db"

echo "== compact: fold the segment log away =="
python -m repro.cli compact --db "$db"

echo "== search after compaction =="
out="$(python -m repro.cli search --db "$db" --backend corpus "Morant guard")"
echo "$out"
echo "$out" | grep -q "figure-1b" || { echo "compacted corpus lost the update"; exit 1; }
if python -m repro.cli search --db "$db" --backend corpus "Dewey XML" | grep -q "figure-1a"; then
    echo "tombstoned document still answering"; exit 1
fi

echo "UPDATE SMOKE OK"
