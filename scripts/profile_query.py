#!/usr/bin/env python
"""Profile one benchmark query: cProfile + top-20 cumulative report.

The companion of ``repro.cli bench-export``: where BENCH_core.json tells you
*whether* a path got faster, this tells you *where the time goes*.  Runs one
workload query through a fresh engine for the chosen dataset / backend /
representation and prints the top functions by cumulative time.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/profile_query.py
    PYTHONPATH=src python scripts/profile_query.py --dataset dblp --query QD3 \\
        --algorithm maxmatch --backend sqlite --representation object
    PYTHONPATH=src python scripts/profile_query.py --top 40 --repeat 10

``--query`` accepts a workload label (e.g. ``QD3``), a paper query name
(``Q1``..``Q5``) or free keyword text; the default is the dataset's first
workload query.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import BACKEND_NAMES, default_datasets, engine_for_backend
from repro.datasets import PAPER_QUERIES


def _resolve_query(spec, raw: str | None) -> str:
    if raw is None:
        return spec.workload[0].text
    for query in spec.workload:
        if query.label.upper() == raw.upper():
            return query.text
    return PAPER_QUERIES.get(raw.upper(), raw)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cProfile one benchmark query (top cumulative report)")
    parser.add_argument("--dataset", default="dblp",
                        choices=sorted(default_datasets()))
    parser.add_argument("--query", default=None,
                        help="workload label, paper query name, or keyword "
                             "text (default: the dataset's first query)")
    parser.add_argument("--algorithm", default="validrtf",
                        choices=("validrtf", "maxmatch", "validrtf-slca",
                                 "maxmatch-slca"))
    parser.add_argument("--backend", default="memory", choices=BACKEND_NAMES)
    parser.add_argument("--representation", default="packed",
                        choices=("packed", "object"))
    parser.add_argument("--shards", type=int, default=2,
                        help="shard count for --backend sharded")
    parser.add_argument("--repeat", type=int, default=5,
                        help="profiled repetitions (after one warm-up run)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cumulative report")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"))
    arguments = parser.parse_args(argv)

    spec = default_datasets()[arguments.dataset]
    query = _resolve_query(spec, arguments.query)
    engine = engine_for_backend(spec.tree_factory(), arguments.backend,
                                shards=arguments.shards,
                                document=arguments.dataset,
                                representation=arguments.representation)
    engine.search(query, arguments.algorithm)  # warm-up, excluded

    print(f"dataset={arguments.dataset} backend={arguments.backend} "
          f"representation={arguments.representation} "
          f"algorithm={arguments.algorithm} repeat={arguments.repeat}")
    print(f"query: {query!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(arguments.repeat):
        engine.search(query, arguments.algorithm)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(arguments.sort).print_stats(arguments.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
