#!/usr/bin/env bash
# Observability smoke: the repro.obs surface end to end through the CLI.
# index -> traced query (span tree) -> live server with a slow-query
# threshold -> traffic -> Prometheus scrape off the stats wire op ->
# assert the counters actually moved.  Must stay fast (well under 30 s) —
# it runs inside `make smoke` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT
db="$workdir/obs.db"

echo "== index: disk-backed document =="
python -m repro.cli index --dataset figure-1a --db "$db"

echo "== traced query: per-stage span tree =="
out="$(python -m repro.cli search --db "$db" --backend sqlite \
    "xml keyword search" --trace)"
echo "$out"
for stage in tokenize postings lca fragments; do
    echo "$out" | grep -q "$stage" || { echo "trace missing $stage span"; exit 1; }
done

echo "== serve with a slow-query log threshold =="
python -m repro.cli serve --db "$db" --backend sqlite --workers 2 \
    --port 0 --slow-query-ms 5000 > "$workdir/serve.log" 2>&1 &
server_pid=$!
address=""
for _ in $(seq 1 50); do
    address="$(sed -n 's/.* on \([0-9.]*:[0-9]*\).*/\1/p' "$workdir/serve.log")"
    [ -n "$address" ] && break
    sleep 0.2
done
[ -n "$address" ] || { echo "server never came up"; cat "$workdir/serve.log"; exit 1; }
echo "listening on $address"

echo "== traffic through the wire =="
python -m repro.cli loadtest --address "$address" --requests 20 \
    --concurrency 2 --stats --output - > /dev/null

echo "== metrics scrape (Prometheus text off the stats op) =="
scrape="$(python -m repro.cli metrics --address "$address")"
echo "$scrape" | head -20
for series in repro_server_requests_total repro_query_count_total \
              repro_batcher_requests_total repro_admission_admitted_total; do
    echo "$scrape" | grep -q "^$series\|^# TYPE $series" \
        || { echo "scrape missing $series"; exit 1; }
done
# the counters must be nonzero: every scraped total is > 0 by construction
count="$(echo "$scrape" | sed -n 's/^repro_server_requests_total.* \([0-9]*\)$/\1/p' | head -1)"
[ -n "$count" ] && [ "$count" -gt 0 ] || { echo "server request counter is zero"; exit 1; }

echo "OBS SMOKE OK"
