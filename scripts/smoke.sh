#!/usr/bin/env bash
# Smoke check: tier-1 suite + benchmark collection + one tiny end-to-end
# benchmark query.  Guards against the seed's failure mode where a collection
# error in benchmarks/ silently broke `python -m pytest` from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== static-analysis gate (AST invariant rules) =="
make lint

echo "== tier-1: unit suite =="
python -m pytest -x -q

echo "== benchmarks: collection only (must be error-free) =="
python -m pytest benchmarks --collect-only -q > /dev/null
echo "ok"

echo "== end-to-end: one search query =="
python -m repro.cli search --dataset figure-1a "xml keyword search"

echo "== end-to-end: index + disk-backed sqlite query =="
smoke_db="$(mktemp -d)/smoke.db"
python -m repro.cli index --dataset figure-1a --db "$smoke_db"
python -m repro.cli search --db "$smoke_db" --backend sqlite "xml keyword search"

echo "== end-to-end: multi-document corpus (incremental index + doc-tagged search) =="
python -m repro.cli index --dataset figure-1b --db "$smoke_db" --add
python -m repro.cli search --db "$smoke_db" --backend corpus "xml keyword search"
rm -rf "$(dirname "$smoke_db")"

echo "== end-to-end: ranked top-k retrieval (search --top-k) =="
python -m repro.cli search --dataset figure-1a --top-k 3 "xml keyword search"

echo "== end-to-end: served rank op (threshold top-k over the wire) =="
python - <<'PY'
from repro.datasets import publications_tree, team_tree
from repro.service import EnginePool, ServerThread, ServiceClient

pool = EnginePool.for_backend(
    "corpus",
    trees={"publications": publications_tree(), "team": team_tree()},
    workers=2)
try:
    with ServerThread(pool) as server:
        with ServiceClient(*server.address) as client:
            response = client.rank_response("xml keyword search", top_k=3,
                                            early_terminate=True)
            stats = response["rank_stats"]
            assert response["ranking"], "rank op returned no rows"
            assert stats["early_terminated"] and stats["top_k"] == 3, stats
            assert stats["docs_visited"] <= stats["docs_selected"], stats
            print(f"rank op ok: {len(response['ranking'])} rows, "
                  f"visited {stats['docs_visited']}/{stats['docs_selected']}")
finally:
    pool.shutdown()
PY

echo "== differential corpus fuzz (seeded) =="
make fuzz-smoke

echo "== segmented update lifecycle (ingest/update/delete/compact) =="
make update-smoke

echo "== observability (traced query, serve, metrics scrape) =="
make obs-smoke

echo "== chaos (fault-injected serving, self-healing clients, verify) =="
make chaos-smoke

echo "== end-to-end: tiny cached benchmark run =="
python -m repro.cli bench --dataset dblp --figure 5 --repetitions 1 --cache

echo "== end-to-end: tiny service load run (pool + batcher + TCP) =="
python -m repro.cli loadtest --backend memory --workers 2 --requests 30 \
    --concurrency 3 --output -

echo "SMOKE OK"
