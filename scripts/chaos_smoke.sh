#!/usr/bin/env bash
# Chaos smoke: the self-healing serving stack under a seeded fault plan.
# index -> serve with injected storage faults (errors + latency spikes,
# bounded budget) -> retrying read traffic (zero client-visible failures)
# -> keyed journaled mutations under chaos -> kill the server -> verify
# database integrity (journal, catalog, posting blobs).  Deterministic by
# construction: the plan is seeded and its fault budget is finite, so a
# bounded retry policy always wins.  Must stay fast (well under 30 s) —
# it runs inside `make smoke` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT
db="$workdir/chaos.db"

echo "== index: two-document corpus =="
python -m repro.cli index --dataset figure-1a --db "$db"
python -m repro.cli index --dataset figure-1b --db "$db" --add

echo "== serve under a seeded fault plan (bounded budget) =="
python -m repro.cli serve --db "$db" --backend corpus --workers 2 \
    --port 0 --cache-size 0 --compact-segments 4 --compact-interval-ms 200 \
    --fault-plan "seed=7,error=0.2,latency=0.05,latency-ms=2,delay=40,max-faults=12" \
    > "$workdir/serve.log" 2>&1 &
server_pid=$!
address=""
for _ in $(seq 1 50); do
    address="$(sed -n 's/.* on \([0-9.]*:[0-9]*\).*/\1/p' "$workdir/serve.log")"
    [ -n "$address" ] && break
    sleep 0.2
done
[ -n "$address" ] || { echo "server never came up"; cat "$workdir/serve.log"; exit 1; }
echo "listening on $address (faults armed)"

echo "== read traffic with a retrying client: zero visible failures =="
python -m repro.cli loadtest --address "$address" --requests 40 \
    --concurrency 4 --retries 8 --output "$workdir/load.json" > /dev/null
python - "$workdir/load.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as handle:
    report = json.load(handle)["service_bench"][0]
assert report["completed"] == report["requests"] == 40, report
assert not report["errors"], report["errors"]
print(f"completed {report['completed']}/{report['requests']} requests; "
      f"{report['retries']} retries healed degraded answers")
PYEOF

echo "== keyed journaled mutations under chaos =="
python - "$address" <<'PYEOF'
import sys
from repro.service import RetryPolicy, ServiceClient
host, port = sys.argv[1].rsplit(":", 1)
# The retry budget must outlast the worst-case quarantine window the
# bounded fault budget can produce (a few seconds of rebuild backoff).
retry = RetryPolicy(attempts=12, base_delay_seconds=0.1, seed=3)
with ServiceClient(host, int(port), retry=retry) as client:
    outcome = client.update(
        "chaos-doc", "<notes><note>chaos keyword payload</note></notes>")
    assert "chaos-doc" in outcome["documents"], outcome
    payload = client.search("chaos keyword")
    docs = [entry["doc"] for entry in payload["documents"]]
    assert "chaos-doc" in docs, payload
    outcome = client.delete_doc("chaos-doc")
    assert "chaos-doc" not in outcome["documents"], outcome
    folded = client.compact()
    assert folded["segments"] == 0, folded
    print(f"update/delete/compact healed; {client.retries} client retries")
PYEOF

echo "== metrics: the chaos actually engaged and was absorbed =="
python -m repro.cli metrics --address "$address" > "$workdir/metrics.prom"
grep "faults_injected\|journal_\|pool_rebuild\|degraded" "$workdir/metrics.prom" || true
python - "$workdir/metrics.prom" <<'PYEOF'
import sys
with open(sys.argv[1]) as handle:
    lines = handle.read().splitlines()
def total(prefix):
    return sum(int(float(line.rsplit(None, 1)[1]))
               for line in lines if line.startswith(prefix))
injected = total("repro_faults_injected_total{")
assert injected >= 1, "the fault plan injected nothing; chaos never engaged"
mutations = total("repro_journal_mutations_total{")
assert mutations >= 3, f"expected journaled update/delete/compact, saw {mutations}"
print(f"{injected} injected fault(s) absorbed; {mutations} journaled mutation(s)")
PYEOF

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== verify: journal, catalog and posting-blob integrity =="
python -m repro.cli verify --db "$db"

echo "CHAOS SMOKE OK"
