"""Service parity: answers through the TCP front end are byte-identical.

The serving-layer counterpart of ``tests/test_backend_parity.py`` and the
convention new service endpoints must follow (see ROADMAP, Serving layer):
for every posting backend and every algorithm, the canonical payload a
client receives over the wire must be **byte-identical** (canonical JSON
encoding) to serializing a direct :meth:`SearchEngine.search` on the same
backend — batching, pooling and admission must be completely transparent.

The concurrent-hammer test drives one server from many threads with
distinct per-thread queries and asserts every response matches its own
query's expected payload — i.e. the batcher never bleeds one request's
answer into another's.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import ALGORITHM_NAMES, SearchEngine
from repro.corpus import CorpusSearchEngine
from repro.datasets import PAPER_QUERIES, publications_tree, team_tree
from repro.service import (
    EnginePool,
    SearchService,
    ServerThread,
    ServiceClient,
    ServiceError,
    comparison_payload,
    encode_message,
    result_payload,
)
from repro.storage import ShardedPostingSource, SQLitePostingSource, SQLiteStore

BACKENDS = ("memory", "sqlite", "sharded")

#: (dataset fixture name, golden paper queries) the parity matrix runs over.
DATASETS = (
    ("publications", ("Q1", "Q2", "Q3")),
    ("team", ("Q4", "Q5")),
)


def build_reference_engine(tree, backend: str, name: str) -> SearchEngine:
    """A direct (unserved) engine for one backend, as in the backend-parity
    suite — the truth the served payloads are diffed against."""
    if backend == "memory":
        return SearchEngine(tree)
    if backend == "sqlite":
        store = SQLiteStore()
        store.store_tree(tree, name)
        return SearchEngine(source=SQLitePostingSource(store, name))
    if backend == "sharded":
        return SearchEngine(
            source=ShardedPostingSource.from_tree(tree, shard_count=3,
                                                  name=name))
    raise ValueError(backend)


@pytest.fixture(scope="module")
def served(publications, team):
    """One running server (and reference engine) per (dataset, backend)."""
    trees = {"publications": publications, "team": team}
    servers = {}
    pools = []
    for dataset, tree in trees.items():
        for backend in BACKENDS:
            pool = EnginePool.for_backend(backend, tree=tree, workers=2,
                                          shards=3, document=dataset)
            pools.append(pool)
            server = ServerThread(pool).start()
            reference = build_reference_engine(tree, backend, dataset)
            servers[(dataset, backend)] = (server, reference)
    yield servers
    for server, _ in servers.values():
        server.stop()
    for pool in pools:
        pool.shutdown()


# ---------------------------------------------------------------------- #
# The parity matrix: datasets x algorithms x backends, byte-identical
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
@pytest.mark.parametrize("dataset,query_names", DATASETS)
def test_served_search_is_byte_identical(served, dataset, query_names,
                                         algorithm, backend):
    server, reference = served[(dataset, backend)]
    with ServiceClient(*server.address) as client:
        for query_name in query_names:
            query = PAPER_QUERIES[query_name]
            over_the_wire = client.search(query, algorithm)
            direct = result_payload(reference.search(query, algorithm))
            assert encode_message(over_the_wire) == encode_message(direct), (
                dataset, query_name, algorithm, backend)


@pytest.mark.parametrize("backend", BACKENDS)
def test_served_compare_is_byte_identical(served, backend):
    server, reference = served[("publications", backend)]
    with ServiceClient(*server.address) as client:
        query = PAPER_QUERIES["Q2"]
        over_the_wire = client.compare(query)
        direct = comparison_payload(reference.compare(query))
        assert encode_message(over_the_wire) == encode_message(direct)


def test_served_cid_mode_is_byte_identical(served, publications):
    server, _ = served[("publications", "memory")]
    exact_engine = SearchEngine(publications, cid_mode="exact")
    with ServiceClient(*server.address) as client:
        query = PAPER_QUERIES["Q2"]
        over_the_wire = client.search(query, cid_mode="exact")
        direct = result_payload(exact_engine.search(query))
        assert encode_message(over_the_wire) == encode_message(direct)


# ---------------------------------------------------------------------- #
# Typed errors over the wire
# ---------------------------------------------------------------------- #
def test_unknown_algorithm_is_typed(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.search("xml", algorithm="bogus")
        assert excinfo.value.code == "unknown_algorithm"


def test_bad_query_is_typed(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        response = client.request({"op": "search"})  # no query at all
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        response = client.request({"op": "search", "query": "   "})
        assert response["error"]["code"] == "bad_request"
        response = client.request({"op": "nonsense", "id": 9})
        assert response["error"]["code"] == "bad_request"
        assert response["id"] == 9  # request ids echo on errors too


# ---------------------------------------------------------------------- #
# Introspection ops over the wire: ping, stats, algorithms
# ---------------------------------------------------------------------- #
def test_ping_answers_pong(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        assert client.ping() is True
        response = client.request({"op": "ping", "id": 3})
        assert response == {"ok": True, "pong": True, "id": 3}


def test_stats_reports_every_layer(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        client.search(PAPER_QUERIES["Q1"])
        stats = client.stats()
    assert set(stats) == {"pool", "batcher", "admission", "server"}
    assert stats["pool"]["workers"] == 2
    assert stats["pool"]["backend"].startswith("memory")
    assert stats["server"]["requests"].get("search", 0) >= 1


def test_stats_wire_response_is_byte_identical(served):
    """The stats op answers exactly what a direct service call computes.

    Introspection ops record no metrics of their own, so the wire response
    and the locally recomputed payload must agree byte for byte.
    """
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        client.search(PAPER_QUERIES["Q1"])
        over_the_wire = client.request({"op": "stats"})
    direct = {"ok": True, "stats": server.service.stats(),
              "metrics": server.service.metrics_snapshot()}
    assert encode_message(over_the_wire) == encode_message(direct)


def test_stats_metrics_snapshot_reaches_the_wire(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        client.search(PAPER_QUERIES["Q1"])
        metrics = client.metrics()
    assert set(metrics) == {"counters", "gauges", "histograms"}
    counters = metrics["counters"]
    assert counters.get("batcher.requests", 0) >= 1
    assert counters.get("admission.admitted", 0) >= 1
    assert counters.get('server.requests{op="search"}', 0) >= 1
    # Engine-level series cross the pool-worker merge into the snapshot.
    assert any(key.startswith("query.count") for key in counters)


def test_stats_section_filter_and_typed_error(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        section = client.stats(section="admission")
        assert set(section) == {"admission"}
        response = client.request({"op": "stats", "section": "nonsense"})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        with pytest.raises(ServiceError) as excinfo:
            client.stats(section="nope")
        assert excinfo.value.code == "bad_request"


def test_stats_and_metrics_can_never_disagree(served):
    """Satellite guard: stats() is *derived* from the registries, so the two
    views of the same counters must match exactly."""
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        client.search(PAPER_QUERIES["Q2"])
        stats = client.stats()
        counters = client.metrics()["counters"]
    batcher = stats["batcher"]
    assert batcher["requests"] == counters.get("batcher.requests", 0)
    assert batcher["batches"] == counters.get("batcher.batches", 0)
    admission = stats["admission"]
    assert admission["admitted"] == counters.get("admission.admitted", 0)
    assert admission["rejected"] == counters.get("admission.rejected", 0)
    assert admission["timed_out"] == counters.get("admission.timed_out", 0)


def test_algorithms_lists_the_engine_registry(served):
    from repro.core.node_record import CID_MODES

    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        payload = client.algorithms()
        raw = client.request({"op": "algorithms"})
    assert payload["algorithms"] == list(ALGORITHM_NAMES)
    assert payload["cid_modes"] == list(CID_MODES)
    assert raw == {"ok": True, "algorithms": list(ALGORITHM_NAMES),
                   "cid_modes": list(CID_MODES)}


# ---------------------------------------------------------------------- #
# Corpus backend over the wire: byte-identical, doc-tagged, filterable
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def served_corpus():
    """One corpus server over the two figure documents + its reference."""
    trees = {"publications": publications_tree(), "team": team_tree()}
    pool = EnginePool.for_backend("corpus", trees=trees, workers=2)
    reference = CorpusSearchEngine.from_trees(trees, backend="memory")
    with ServerThread(pool) as server:
        yield server, reference
    pool.shutdown()


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_served_corpus_search_is_byte_identical(served_corpus, algorithm):
    server, reference = served_corpus
    with ServiceClient(*server.address) as client:
        for query_name in ("Q1", "Q2", "Q4", "Q5"):
            query = PAPER_QUERIES[query_name]
            over_the_wire = client.search(query, algorithm)
            direct = result_payload(reference.search(query, algorithm))
            assert encode_message(over_the_wire) == encode_message(direct), (
                query_name, algorithm)
            assert "documents" in over_the_wire  # doc-id-tagged payload


def test_served_corpus_doc_filter_is_byte_identical(served_corpus):
    server, reference = served_corpus
    with ServiceClient(*server.address) as client:
        query = PAPER_QUERIES["Q2"]
        for doc_filter in (["publications"], ["team"],
                           ["publications", "team"]):
            over_the_wire = client.search(query, doc_filter=doc_filter)
            direct = result_payload(
                reference.search(query, doc_filter=doc_filter))
            assert encode_message(over_the_wire) == encode_message(direct), \
                doc_filter


def test_served_corpus_compare_is_byte_identical(served_corpus):
    server, reference = served_corpus
    with ServiceClient(*server.address) as client:
        query = PAPER_QUERIES["Q2"]
        over_the_wire = client.compare(query)
        direct = comparison_payload(reference.compare(query))
        assert encode_message(over_the_wire) == encode_message(direct)
        # doc_filter is honoured on compare too (never silently ignored).
        filtered = client.compare(query, doc_filter=["team"])
        direct = comparison_payload(reference.compare(query,
                                                      doc_filter=["team"]))
        assert encode_message(filtered) == encode_message(direct)


def test_served_corpus_rank_honours_doc_filter(served_corpus):
    server, reference = served_corpus
    with ServiceClient(*server.address) as client:
        query = PAPER_QUERIES["Q2"]
        ranking = client.rank(query, doc_filter=["publications"])
        assert ranking and all(entry["doc"] == "publications"
                               for entry in ranking)
        direct = reference.search_ranked(query,
                                         doc_filter=["publications"])
        assert [entry["root"] for entry in ranking] == \
            [str(entry.fragment.root) for entry in direct]


def test_corpus_doc_filter_errors_are_typed(served_corpus):
    server, _ = served_corpus
    with ServiceClient(*server.address) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.search("xml", doc_filter=["no-such-doc"])
        assert excinfo.value.code == "bad_request"
        response = client.request({"op": "search", "query": "xml",
                                   "doc_filter": "publications"})
        assert response["error"]["code"] == "bad_request"  # must be a list
        response = client.request({"op": "search", "query": "xml",
                                   "doc_filter": []})
        assert response["error"]["code"] == "bad_request"


def test_doc_filter_on_single_document_backend_is_unsupported(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.search("xml", doc_filter=["publications"])
        assert excinfo.value.code == "unsupported"


def test_rank_on_tree_free_backend_is_unsupported(served):
    server, _ = served[("publications", "sqlite")]
    with ServiceClient(*server.address) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.rank(PAPER_QUERIES["Q1"])
        assert excinfo.value.code == "unsupported"


def test_rank_on_memory_backend_works(served, publications):
    server, reference = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        ranking = client.rank(PAPER_QUERIES["Q2"])
        assert ranking, "expected at least one ranked fragment"
        direct = reference.rank(reference.search(PAPER_QUERIES["Q2"]))
        assert [entry["root"] for entry in ranking] == \
            [str(fragment.fragment.root) for fragment in direct]


def test_rank_on_tree_free_corpus_is_unsupported(tmp_path):
    """A corpus served from a database runs tree-free: the rank op must
    answer the typed ``unsupported`` error, not ``internal``."""
    from repro.storage import SegmentedStore

    db = str(tmp_path / "treefree.db")
    store = SegmentedStore(db)
    store.store_tree(publications_tree(), "publications")
    store.store_tree(team_tree(), "team")
    store.close()
    pool = EnginePool.for_backend("corpus", db_path=db, workers=2)
    try:
        with ServerThread(pool) as server:
            with ServiceClient(*server.address) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.rank(PAPER_QUERIES["Q1"])
                assert excinfo.value.code == "unsupported"
                # The doc-filtered path dispatches differently; it must
                # answer the same typed error.
                with pytest.raises(ServiceError) as excinfo:
                    client.rank(PAPER_QUERIES["Q1"],
                                doc_filter=["publications"])
                assert excinfo.value.code == "unsupported"
    finally:
        pool.shutdown()


def test_served_corpus_rank_top_k_is_byte_identical(served_corpus):
    from repro.service import rank_stats_payload, ranking_payload

    server, reference = served_corpus
    query = PAPER_QUERIES["Q2"]
    with ServiceClient(*server.address) as client:
        for early in (False, True):
            response = client.rank_response(query, top_k=2,
                                            early_terminate=early)
            direct = reference.rank_search(query, top_k=2,
                                           early_terminate=early)
            assert encode_message({"ranking": response["ranking"]}) == \
                encode_message({"ranking": ranking_payload(direct.ranked)})
            assert response["rank_stats"] == rank_stats_payload(direct)


def test_served_rank_explain_components_sum_to_score(served_corpus):
    server, _ = served_corpus
    with ServiceClient(*server.address) as client:
        ranking = client.rank(PAPER_QUERIES["Q2"], top_k=3, explain=True)
        assert ranking
        for row in ranking:
            explanation = row["explanation"]
            assert explanation["score"] == row["score"]
            assert sum(c["contribution"]
                       for c in explanation["components"]) == \
                pytest.approx(row["score"])


def test_rank_option_errors_are_typed(served_corpus):
    server, _ = served_corpus
    with ServiceClient(*server.address) as client:
        for request in (
                {"op": "rank", "query": "xml", "top_k": -1},
                {"op": "rank", "query": "xml", "top_k": True},
                {"op": "rank", "query": "xml", "top_k": "five"},
                {"op": "rank", "query": "xml", "early_terminate": True},
                {"op": "rank", "query": "xml", "top_k": 3,
                 "early_terminate": "yes"},
                {"op": "rank", "query": "xml", "explain": 1}):
            response = client.request(request)
            assert response["error"]["code"] == "bad_request", request


# ---------------------------------------------------------------------- #
# Live mutations over the wire: update / delete_doc
# ---------------------------------------------------------------------- #
@pytest.fixture
def served_mutable(tmp_path):
    """A corpus server over a segmented database that accepts live writes.

    Function-scoped on purpose: mutation tests change the served corpus, so
    each gets its own fresh database and server.
    """
    from repro.storage import SegmentedStore

    db = str(tmp_path / "live.db")
    store = SegmentedStore(db)
    store.store_tree(publications_tree(), "publications")
    store.store_tree(team_tree(), "team")
    store.close()
    pool = EnginePool.for_backend("corpus", db_path=db, workers=2)
    with ServerThread(pool) as server:
        yield server
    pool.shutdown()


def test_served_update_is_byte_identical(served_mutable):
    """An absorbed update serves answers byte-identical to a direct engine
    over the post-update corpus — no restart, no stale snapshot."""
    from repro.xmltree import parse_string, to_xml_string

    server = served_mutable
    xml = to_xml_string(team_tree()).replace("Conley", "Morant")
    reference = CorpusSearchEngine.from_trees(
        {"publications": publications_tree(),
         "team": parse_string(xml, "team")}, backend="memory")
    with ServiceClient(*server.address) as client:
        outcome = client.update("team", xml)
        assert outcome["updated"] == "team" and outcome["segment"] == 1
        assert outcome["documents"] == ["publications", "team"]
        for query in (PAPER_QUERIES["Q4"], PAPER_QUERIES["Q1"],
                      "Morant guard"):
            for algorithm in ALGORITHM_NAMES:
                over_the_wire = client.search(query, algorithm)
                direct = result_payload(reference.search(query, algorithm))
                assert encode_message(over_the_wire) == \
                    encode_message(direct), (query, algorithm)


def test_served_update_adds_a_new_document(served_mutable):
    server = served_mutable
    with ServiceClient(*server.address) as client:
        outcome = client.update(
            "notes", "<notes><note>segmented live ingest</note></notes>")
        assert outcome["documents"] == ["notes", "publications", "team"]
        payload = client.search("segmented ingest")
        assert [entry["doc"] for entry in payload["documents"]] == ["notes"]


def test_served_delete_doc_is_byte_identical(served_mutable):
    server = served_mutable
    reference = CorpusSearchEngine.from_trees(
        {"publications": publications_tree()}, backend="memory")
    with ServiceClient(*server.address) as client:
        outcome = client.delete_doc("team")
        assert outcome["deleted"] == "team"
        assert outcome["documents"] == ["publications"]
        for query_name in ("Q1", "Q4"):
            query = PAPER_QUERIES[query_name]
            for algorithm in ALGORITHM_NAMES:
                over_the_wire = client.search(query, algorithm)
                direct = result_payload(reference.search(query, algorithm))
                assert encode_message(over_the_wire) == \
                    encode_message(direct), (query_name, algorithm)


def test_mutation_errors_are_typed(served_mutable):
    server = served_mutable
    with ServiceClient(*server.address) as client:
        # Unknown doc id, missing/blank fields, unparsable xml: bad_request.
        with pytest.raises(ServiceError) as excinfo:
            client.delete_doc("no-such-doc")
        assert excinfo.value.code == "bad_request"
        for message in ({"op": "update", "doc": "team"},
                        {"op": "update", "doc": "  ", "xml": "<a/>"},
                        {"op": "update", "doc": "team", "xml": "<broken"},
                        {"op": "delete_doc"}):
            response = client.request(message)
            assert response["ok"] is False, message
            assert response["error"]["code"] == "bad_request", message
        # Deleting down to an empty corpus is refused.
        client.delete_doc("team")
        with pytest.raises(ServiceError) as excinfo:
            client.delete_doc("publications")
        assert excinfo.value.code == "bad_request"
        assert "last live" in excinfo.value.message


def test_mutations_on_single_document_backends_are_unsupported(served):
    """update / delete_doc need a database-served corpus; every other
    backend answers the typed ``unsupported`` error."""
    for backend in BACKENDS:
        server, _ = served[("publications", backend)]
        with ServiceClient(*server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.update("publications", "<a/>")
            assert excinfo.value.code == "unsupported", backend
            with pytest.raises(ServiceError) as excinfo:
                client.delete_doc("publications")
            assert excinfo.value.code == "unsupported", backend


def test_mutations_on_pinned_subset_corpus_are_unsupported(tmp_path):
    """A corpus pool pinned to a document subset cannot absorb writes."""
    from repro.storage import SegmentedStore

    db = str(tmp_path / "subset.db")
    store = SegmentedStore(db)
    store.store_tree(publications_tree(), "publications")
    store.store_tree(team_tree(), "team")
    store.close()
    pool = EnginePool.for_backend("corpus", db_path=db, workers=1,
                                  documents=("team",))
    assert pool.mutable_store is None
    with ServerThread(pool) as server:
        with ServiceClient(*server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.update("team", "<a/>")
            assert excinfo.value.code == "unsupported"
    pool.shutdown()


def test_served_compact_wire_op(served_mutable):
    """The ``compact`` op folds segments live; served answers stay
    byte-identical to a direct engine over the compacted corpus."""
    from repro.xmltree import parse_string, to_xml_string

    server = served_mutable
    xml = to_xml_string(team_tree()).replace("Conley", "Morant")
    reference = CorpusSearchEngine.from_trees(
        {"publications": publications_tree(),
         "team": parse_string(xml, "team")}, backend="memory")
    with ServiceClient(*server.address) as client:
        client.update("team", xml)
        outcome = client.compact()
        assert outcome["compacted"]["segments"] == 1
        assert outcome["compacted"]["folded"] == 1
        assert outcome["segments"] == 0
        assert outcome["documents"] == ["publications", "team"]
        for query_name in ("Q1", "Q4"):
            query = PAPER_QUERIES[query_name]
            for algorithm in ALGORITHM_NAMES:
                over_the_wire = client.search(query, algorithm)
                direct = result_payload(reference.search(query, algorithm))
                assert encode_message(over_the_wire) == \
                    encode_message(direct), (query_name, algorithm)


def test_compact_on_single_document_backend_is_unsupported(served):
    server, _ = served[("publications", "memory")]
    with ServiceClient(*server.address) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.compact()
        assert excinfo.value.code == "unsupported"


def test_keyed_update_replay_is_idempotent(served_mutable):
    """Replaying an update with the same idempotency key answers the
    original segment without applying the mutation twice."""
    server = served_mutable
    xml = "<notes><note>replayed keyword</note></notes>"
    with ServiceClient(*server.address) as client:
        first = client.update("notes", xml, idempotency_key="put-1")
        replay = client.update("notes", xml, idempotency_key="put-1")
        assert replay["segment"] == first["segment"]
        assert replay["documents"] == first["documents"]
        stats = client.stats("pool")
        assert stats  # the replay never rebuilt engines or wrote a segment
        payload = client.search("replayed keyword")
        assert [entry["doc"] for entry in payload["documents"]] == ["notes"]


def test_keyed_delete_replay_is_idempotent(served_mutable):
    """A replayed keyed delete answers the recorded segment even though
    the document is already gone — not ``bad_request``."""
    server = served_mutable
    with ServiceClient(*server.address) as client:
        first = client.delete_doc("team", idempotency_key="del-1")
        replay = client.delete_doc("team", idempotency_key="del-1")
        assert replay["segment"] == first["segment"]
        assert replay["deleted"] == "team"
        assert replay["documents"] == ["publications"]


def test_mutation_key_validation_is_typed(served_mutable):
    server = served_mutable
    with ServiceClient(*server.address) as client:
        for message in ({"op": "update", "doc": "team", "xml": "<a/>",
                         "key": ""},
                        {"op": "delete_doc", "doc": "team", "key": 7}):
            response = client.request(message)
            assert response["ok"] is False, message
            assert response["error"]["code"] == "bad_request", message


# ---------------------------------------------------------------------- #
# Self-healing: degraded answers, quarantine, retrying clients
# ---------------------------------------------------------------------- #
def _flaky_pool(failures: int, backoff: float = 0.05) -> EnginePool:
    """A pool whose engine factory fails the first ``failures`` times."""
    state = {"left": failures}

    def factory() -> SearchEngine:
        if state["left"] > 0:
            state["left"] -= 1
            raise RuntimeError("simulated engine-build failure")
        return SearchEngine(publications_tree())

    return EnginePool(factory, workers=1,
                      rebuild_backoff_seconds=backoff,
                      max_rebuild_backoff_seconds=1.0)


def test_engine_rebuild_failure_answers_degraded():
    """A failing engine factory quarantines the worker and answers the
    typed ``degraded`` error — then heals once the backoff elapses."""
    import time

    pool = _flaky_pool(failures=1, backoff=0.3)
    with ServerThread(pool) as server:
        with ServiceClient(*server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.search(PAPER_QUERIES["Q1"])
            assert excinfo.value.code == "degraded"
            assert "quarantined" in excinfo.value.message
            # While quarantined, requests are refused (still degraded)...
            with pytest.raises(ServiceError) as excinfo:
                client.search(PAPER_QUERIES["Q1"])
            assert excinfo.value.code == "degraded"
            # ...and once the backoff elapses the worker rebuilds.
            time.sleep(0.4)
            payload = client.search(PAPER_QUERIES["Q1"])
            assert payload["count"] >= 1
            stats = client.stats("pool")["pool"]
            assert stats["rebuilds"] >= 1
            assert stats["rebuild_failures"] == 1
            assert stats["quarantine_refusals"] >= 1
    pool.shutdown()


def test_retrying_client_heals_degraded_transparently():
    """A client under a RetryPolicy never sees the transient failure."""
    from repro.service import RetryPolicy

    pool = _flaky_pool(failures=1, backoff=0.02)
    with ServerThread(pool) as server:
        retry = RetryPolicy(attempts=5, base_delay_seconds=0.05, seed=11)
        with ServiceClient(*server.address, retry=retry) as client:
            payload = client.search(PAPER_QUERIES["Q1"])
            assert payload["count"] >= 1
            assert client.retries >= 1
    pool.shutdown()


# ---------------------------------------------------------------------- #
# The concurrent hammer: no cross-request bleed under load
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_hammer_no_cross_request_bleed(served, backend):
    """Many client threads, distinct interleaved queries and algorithms:
    every response must match its own request's expected bytes, while the
    batcher actively coalesces across connections."""
    server, reference = served[("publications", backend)]
    workload = [
        (PAPER_QUERIES[name], algorithm)
        for name in ("Q1", "Q2", "Q3")
        for algorithm in ("validrtf", "maxmatch")
    ]
    expected = {
        (query, algorithm): encode_message(
            result_payload(reference.search(query, algorithm)))
        for query, algorithm in workload
    }
    threads, iterations = 6, 15
    errors = []
    barrier = threading.Barrier(threads)

    def hammer(seed: int) -> None:
        try:
            with ServiceClient(*server.address) as client:
                barrier.wait(30)
                for step in range(iterations):
                    query, algorithm = workload[(seed + step) % len(workload)]
                    payload = client.search(query, algorithm)
                    if encode_message(payload) != expected[(query, algorithm)]:
                        raise AssertionError(
                            f"response bleed for {query!r}/{algorithm}")
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    workers = [threading.Thread(target=hammer, args=(index,))
               for index in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert not errors, errors
    stats = server.service.stats()
    assert stats["admission"]["admitted"] >= threads * iterations
    assert stats["batcher"]["requests"] >= threads * iterations


def test_concurrent_burst_actually_batches(publications, publications_engine):
    """Sanity check on the hammer's premise: a synchronized burst of
    identical requests from many connections coalesces into at least one
    multi-request engine batch (and still answers correctly)."""
    pool = EnginePool.for_backend("memory", tree=publications, workers=2)
    service = SearchService(pool)
    service.batcher.max_wait_seconds = 0.05  # generous window for CI boxes
    expected = encode_message(
        result_payload(publications_engine.search(PAPER_QUERIES["Q2"])))
    threads = 8
    barrier = threading.Barrier(threads)
    errors = []
    with ServerThread(service) as server:
        def burst() -> None:
            try:
                with ServiceClient(*server.address) as client:
                    barrier.wait(30)
                    payload = client.search(PAPER_QUERIES["Q2"])
                    assert encode_message(payload) == expected
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [threading.Thread(target=burst) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stats = service.stats()["batcher"]
    pool.shutdown()
    assert not errors, errors
    assert stats["largest_batch"] >= 2, stats
    assert stats["batches"] < stats["requests"], stats
