"""Property-based tests for the XML tree substrate (builder, specs, mutation)."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.xmltree import (
    DeweyCode,
    SubtreeSpec,
    parse_string,
    to_xml_string,
    tree_from_spec,
)

LABELS = st.sampled_from(["a", "b", "c", "item", "entry"])
WORDS = st.sampled_from(["alpha", "beta", "gamma", "delta"])


@st.composite
def subtree_specs(draw, max_depth: int = 3) -> SubtreeSpec:
    label = draw(LABELS)
    text = draw(st.one_of(st.none(), st.lists(WORDS, min_size=1, max_size=3)
                          .map(" ".join)))
    node = SubtreeSpec(label, text)
    if max_depth > 0:
        children = draw(st.lists(subtree_specs(max_depth=max_depth - 1),
                                 min_size=0, max_size=3))
        for child in children:
            node.add(child)
    return node


SETTINGS = settings(max_examples=80, deadline=None)


@SETTINGS
@given(subtree_specs())
def test_tree_from_spec_node_count(spec):
    tree = tree_from_spec(spec)
    assert tree.size() == spec.node_count()


@SETTINGS
@given(subtree_specs())
def test_dewey_codes_unique_and_document_ordered(spec):
    tree = tree_from_spec(spec)
    codes: List[DeweyCode] = [node.dewey for node in tree.iter_preorder()]
    assert len(codes) == len(set(codes))
    assert codes == sorted(codes)


@SETTINGS
@given(subtree_specs())
def test_parent_child_consistency(spec):
    tree = tree_from_spec(spec)
    for node in tree.iter_preorder():
        for child in node.children:
            assert child.parent is node
            assert child.dewey.parent() == node.dewey
            assert node.dewey.is_ancestor_of(child.dewey)


@SETTINGS
@given(subtree_specs())
def test_label_histogram_totals(spec):
    tree = tree_from_spec(spec)
    histogram = tree.label_histogram()
    assert sum(histogram.values()) == tree.size()
    assert set(histogram) == set(tree.labels())


@SETTINGS
@given(subtree_specs())
def test_xml_round_trip_preserves_structure(spec):
    tree = tree_from_spec(spec)
    reparsed = parse_string(to_xml_string(tree))
    assert reparsed.size() == tree.size()
    assert [node.label for node in reparsed.iter_preorder()] == \
        [node.label for node in tree.iter_preorder()]


@SETTINGS
@given(subtree_specs(), subtree_specs())
def test_insertion_grows_tree_and_keeps_original_nodes(spec, insertion):
    tree = tree_from_spec(spec)
    target = max((node.dewey for node in tree.iter_preorder()
                  if node.depth <= 1), default=tree.root.dewey)
    grown = tree.with_inserted_subtree(target, insertion)
    assert grown.size() == tree.size() + insertion.node_count()
    # Every original node is still present with the same label.
    for node in tree.iter_preorder():
        assert grown.node(node.dewey).label == node.label
    # The original tree itself is untouched.
    assert tree.size() == spec.node_count()


@SETTINGS
@given(subtree_specs())
def test_copy_is_independent(spec):
    tree = tree_from_spec(spec)
    clone = tree.copy()
    assert clone.size() == tree.size()
    clone_node = clone.root
    clone_node.text = "mutated"
    if tree.root.text is not None:
        assert tree.root.text != "mutated" or spec.text == "mutated"
