"""Algorithm-level tests for MaxMatch / ValidRTF and the shared pipeline."""

from __future__ import annotations

import pytest

from repro.core import (
    MaxMatch,
    MaxMatchSLCA,
    Query,
    ValidRTF,
    ValidRTFSLCA,
    run_maxmatch,
    run_validrtf,
)
from repro.datasets import PAPER_QUERIES
from repro.index import InvertedIndex
from repro.lca import indexed_lookup_eager_slca, indexed_stack_elca
from repro.xmltree import DeweyCode

D = DeweyCode.parse


class TestPipelineInvariants:
    ALGORITHMS = (ValidRTF, MaxMatch, ValidRTFSLCA, MaxMatchSLCA)

    @pytest.mark.parametrize("algorithm_class", ALGORITHMS)
    def test_roots_match_lca_semantics(self, publications, algorithm_class):
        algorithm = algorithm_class(publications)
        result = algorithm.search(PAPER_QUERIES["Q2"])
        lists = InvertedIndex(publications).keyword_nodes(
            Query.parse(PAPER_QUERIES["Q2"]).keywords)
        if algorithm_class in (ValidRTFSLCA, MaxMatchSLCA):
            expected = indexed_lookup_eager_slca(lists)
        else:
            expected = indexed_stack_elca(lists)
        assert list(result.roots()) == expected

    @pytest.mark.parametrize("algorithm_class", ALGORITHMS)
    def test_kept_nodes_are_subset_of_raw_fragment(self, publications,
                                                   algorithm_class):
        algorithm = algorithm_class(publications)
        result = algorithm.search(PAPER_QUERIES["Q3"])
        for pruned in result:
            assert pruned.kept_set() <= pruned.fragment.node_set()
            assert pruned.root in pruned.kept_set()

    @pytest.mark.parametrize("algorithm_class", ALGORITHMS)
    def test_kept_nodes_form_connected_subtree(self, publications, algorithm_class):
        algorithm = algorithm_class(publications)
        for query in (PAPER_QUERIES["Q1"], PAPER_QUERIES["Q2"], PAPER_QUERIES["Q3"]):
            for pruned in algorithm.search(query):
                kept = pruned.kept_set()
                for code in kept:
                    if code == pruned.root:
                        continue
                    parent = code.parent()
                    while parent is not None and parent not in pruned.fragment.node_set():
                        parent = parent.parent()
                    assert parent in kept

    @pytest.mark.parametrize("algorithm_class", ALGORITHMS)
    def test_pruned_result_still_covers_query(self, publications, algorithm_class):
        """Pruning never removes the last occurrence of a keyword."""
        algorithm = algorithm_class(publications)
        index = InvertedIndex(publications)
        for query_name in ("Q1", "Q2", "Q3"):
            query = Query.parse(PAPER_QUERIES[query_name])
            for pruned in algorithm.search(query):
                covered = set()
                for dewey in pruned.kept_keyword_nodes():
                    covered |= {keyword for keyword in query.keywords
                                if keyword in index.node_words(dewey)}
                assert covered == set(query.keywords)

    def test_unmatched_keyword_gives_empty_result(self, publications):
        result = ValidRTF(publications).search("xml nonexistentword")
        assert result.count == 0
        assert result.lca_nodes == ()

    def test_elapsed_time_recorded(self, publications):
        result = ValidRTF(publications).search(PAPER_QUERIES["Q2"])
        assert result.elapsed_seconds > 0.0

    def test_shared_index_reused(self, publications):
        index = InvertedIndex(publications)
        validrtf = ValidRTF(publications, index)
        maxmatch = MaxMatch(publications, index)
        assert validrtf.index is maxmatch.index is index


class TestValidRTFKeepsMoreOrEqualKeywordNodes:
    """ValidRTF never discards a keyword node that is the only one with its
    label among its siblings (the false-positive fix), so on the figure
    instances its fragments are supersets of MaxMatch's within articles."""

    def test_q1_validrtf_superset(self, publications):
        validrtf = ValidRTF(publications).search(PAPER_QUERIES["Q1"])
        maxmatch = MaxMatch(publications).search(PAPER_QUERIES["Q1"])
        v_nodes = validrtf.by_root()[D("0.2.1")].kept_set()
        m_nodes = maxmatch.by_root()[D("0.2.1")].kept_set()
        assert m_nodes < v_nodes


class TestConvenienceWrappers:
    def test_run_validrtf(self, publications):
        result = run_validrtf(publications, PAPER_QUERIES["Q2"])
        assert result.algorithm == "validrtf"
        assert result.count == 2

    def test_run_validrtf_slca_only(self, publications):
        result = run_validrtf(publications, PAPER_QUERIES["Q2"], slca_only=True)
        assert result.algorithm == "validrtf-slca"
        assert result.count == 1

    def test_run_maxmatch(self, team):
        result = run_maxmatch(team, PAPER_QUERIES["Q4"])
        assert result.algorithm == "maxmatch"
        assert result.count == 1

    def test_run_maxmatch_slca_only(self, team):
        result = run_maxmatch(team, PAPER_QUERIES["Q4"], slca_only=True)
        assert result.algorithm == "maxmatch-slca"


class TestOnSyntheticData:
    @pytest.mark.parametrize("query", ["xml keyword", "data retrieval",
                                       "algorithm efficient tree"])
    def test_dblp_results_consistent(self, small_dblp, query):
        validrtf = ValidRTF(small_dblp).search(query)
        maxmatch = MaxMatch(small_dblp).search(query)
        # Same roots, and per-root ValidRTF results are well-formed.
        assert validrtf.roots() == maxmatch.roots()
        for pruned in validrtf:
            assert pruned.root in pruned.kept_set()

    def test_xmark_results_consistent(self, small_xmark):
        validrtf = ValidRTF(small_xmark).search("preventions order")
        maxmatch = MaxMatch(small_xmark).search("preventions order")
        assert validrtf.roots() == maxmatch.roots()
